#include "obs/trace.h"

#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/json.h"
#include "util/logging.h"

namespace rootstress::obs {

const char* to_string(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::kSiteWithdraw: return "site-withdraw";
    case TraceEventType::kSiteRestore: return "site-restore";
    case TraceEventType::kBgpSessionFailure: return "bgp-session-failure";
    case TraceEventType::kBgpSessionRestore: return "bgp-session-restore";
    case TraceEventType::kCatchmentFlip: return "catchment-flip";
    case TraceEventType::kQueueOverloadOnset: return "queue-overload-onset";
    case TraceEventType::kQueueOverloadEnd: return "queue-overload-end";
    case TraceEventType::kDefenseActivation: return "defense-activation";
    case TraceEventType::kRrlSuppression: return "rrl-suppression";
    case TraceEventType::kPlaybookDetection: return "playbook-detection";
    case TraceEventType::kPlaybookAction: return "playbook-action";
    case TraceEventType::kWithdrawVeto: return "policy-withdraw-veto";
    case TraceEventType::kFaultInjection: return "fault-injection";
    case TraceEventType::kLog: return "log";
  }
  return "?";
}

std::optional<TraceEventType> trace_event_type_from(
    std::string_view name) noexcept {
  for (int i = 0; i <= static_cast<int>(TraceEventType::kLog); ++i) {
    const auto type = static_cast<TraceEventType>(i);
    if (name == to_string(type)) return type;
  }
  return std::nullopt;
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

TraceSink::~TraceSink() { detach_logger(); }

void TraceSink::emit(TraceEvent event) {
  event.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count();
  std::lock_guard<std::mutex> lock(mutex_);
  ++emitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

TraceStats TraceSink::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TraceStats s;
  s.emitted = emitted_;
  s.dropped = dropped_;
  s.capacity = capacity_;
  s.buffered = ring_.size();
  return s;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once wrapped, next_ points at the oldest event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::string trace_event_json(const TraceEvent& event) {
  JsonValue line = JsonValue::object();
  line.set("type", to_string(event.type));
  line.set("t_ms", static_cast<std::int64_t>(event.sim_time.ms));
  line.set("t", event.sim_time.to_string());
  line.set("wall_us", event.wall_us);
  if (event.letter != 0) line.set("letter", std::string(1, event.letter));
  if (!event.site.empty()) line.set("site", event.site);
  if (!event.detail.empty()) line.set("detail", event.detail);
  if (event.value != 0.0) line.set("value", event.value);
  return line.dump();
}

void TraceSink::write_jsonl(std::ostream& os) const {
  for (const auto& event : events()) {
    os << trace_event_json(event) << '\n';
  }
}

bool TraceSink::flush_to_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_jsonl(out);
  return out.good();
}

void TraceSink::attach_logger() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    logger_attached_ = true;
  }
  util::set_log_sink([this](util::LogLevel level, const std::string& message) {
    TraceEvent event;
    event.type = TraceEventType::kLog;
    event.detail = message;
    event.value = static_cast<double>(level);
    emit(std::move(event));
  });
}

void TraceSink::detach_logger() {
  bool attached = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    attached = logger_attached_;
    logger_attached_ = false;
  }
  if (attached) util::set_log_sink(nullptr);
}

std::size_t TraceSink::capacity_from_env(std::size_t fallback) {
  const char* env = std::getenv("ROOTSTRESS_TRACE_CAP");
  if (env == nullptr) return fallback;
  const long value = std::atol(env);
  return value > 0 ? static_cast<std::size_t>(value) : fallback;
}

}  // namespace rootstress::obs
