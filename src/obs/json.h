// Minimal JSON value, writer, and parser for the telemetry subsystem.
//
// Telemetry leaves the process as JSON (trace JSON-lines, the telemetry
// snapshot written by core::write_telemetry, bench result files). This is
// a deliberately small, dependency-free implementation: enough to write
// every telemetry artifact and to parse them back in tests and tooling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rootstress::obs {

/// One JSON value. Objects keep insertion order (telemetry files diff
/// cleanly across runs); numbers are doubles, as in JSON itself.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  JsonValue(std::int64_t n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(std::uint64_t n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(int n) : kind_(Kind::kNumber), number_(n) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }

  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return number_; }
  const std::string& as_string() const noexcept { return string_; }

  /// Array access.
  void push_back(JsonValue v) { array_.push_back(std::move(v)); }
  std::size_t size() const noexcept { return array_.size(); }
  const JsonValue& operator[](std::size_t i) const { return array_[i]; }

  /// Object access. `set` replaces an existing key in place.
  void set(std::string key, JsonValue v);
  /// Member by key; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const noexcept;
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return object_;
  }

  /// Compact single-line serialization.
  std::string dump() const;
  void dump_to(std::string& out) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Appends `text` JSON-escaped (without surrounding quotes) to `out`.
void json_escape(std::string_view text, std::string& out);

/// Parses one JSON document; nullopt on any syntax error or trailing
/// garbage. Accepts the subset dump() produces plus standard whitespace
/// and escape sequences (\uXXXX escapes decode to UTF-8).
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace rootstress::obs
