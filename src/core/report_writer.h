// Incident-report writer: renders an EvaluationReport as Markdown.
//
// Turns one evaluated scenario into the kind of post-incident writeup
// the root operators published after the events ([49] in the paper):
// summary, per-letter damage table, case-study callouts, collateral
// findings.
#pragma once

#include <iosfwd>
#include <string>

#include "core/evaluation.h"
#include "obs/runtime.h"

namespace rootstress::core {

/// Options for the writer.
struct ReportOptions {
  std::string title = "Root DNS event replay";
  bool include_dnsmon_board = true;
  bool include_collateral = true;
  bool include_letter_flips = true;
};

/// Writes the Markdown report to `os`.
void write_markdown_report(const EvaluationReport& report,
                           const ReportOptions& options, std::ostream& os);

/// Convenience: returns the report as a string.
std::string markdown_report(const EvaluationReport& report,
                            const ReportOptions& options = {});

/// Writes a run's telemetry snapshot as a single JSON document:
/// {"sim_time_ms", "metrics": [...], "phases": [...], "trace": {...}}.
/// Round-trips through obs::json_parse (the test suite checks this).
void write_telemetry(const obs::Snapshot& snapshot, std::ostream& os);

/// Convenience: the telemetry document as a string.
std::string telemetry_json(const obs::Snapshot& snapshot);

}  // namespace rootstress::core
