#include "core/whatif.h"

#include "analysis/route_changes.h"
#include "attack/events2015.h"
#include "sim/engine.h"

namespace rootstress::core {

std::string to_string(PolicyRegime regime) {
  switch (regime) {
    case PolicyRegime::kAsDeployed: return "as-deployed";
    case PolicyRegime::kAllAbsorb: return "all-absorb";
    case PolicyRegime::kAllWithdraw: return "all-withdraw";
    case PolicyRegime::kOracle: return "oracle-advisor";
  }
  return "?";
}

double mean_qps_over(const util::BinnedSeries& series,
                     net::SimInterval window) {
  double total = 0.0;
  int bins = 0;
  for (std::size_t b = 0; b < series.bin_count(); ++b) {
    const net::SimTime begin(series.bin_start(b));
    const net::SimTime end(begin.ms + series.bin_ms());
    if (window.begin < end && begin < window.end) {
      total += series.mean(b);
      ++bins;
    }
  }
  return bins == 0 ? 0.0 : total / bins;
}

void apply_policy_regime(sim::ScenarioConfig& config, PolicyRegime regime) {
  switch (regime) {
    case PolicyRegime::kAsDeployed:
      break;
    case PolicyRegime::kAllAbsorb:
      config.deployment.force_policy = anycast::StressPolicy::absorber();
      break;
    case PolicyRegime::kAllWithdraw: {
      anycast::StressPolicy policy = anycast::StressPolicy::withdrawer();
      policy.withdraw_overload = 1.5;
      policy.session_failure_per_minute = 0.10;
      config.deployment.force_policy = policy;
      break;
    }
    case PolicyRegime::kOracle:
      config.adaptive_defense = true;
      break;
  }
}

namespace {

RegimeOutcome run_regime(sim::ScenarioConfig config, PolicyRegime regime) {
  apply_policy_regime(config, regime);
  config.collect_records = false;  // fluid comparison only
  config.enable_collector = false;
  config.collect_rssac = false;

  sim::SimulationEngine engine(std::move(config));
  const sim::SimulationResult result = engine.run();

  RegimeOutcome outcome;
  outcome.regime = regime;
  const auto& letters = engine.deployment().letters();
  double sum1 = 0.0, sum2 = 0.0;
  int attacked = 0;
  for (const auto& cfg : letters) {
    const int s = result.service_index(cfg.letter);
    if (s < 0) continue;
    const auto& served =
        result.service_served_legit_qps[static_cast<std::size_t>(s)];
    const auto& failed =
        result.service_failed_legit_qps[static_cast<std::size_t>(s)];
    RegimeLetterOutcome lo;
    lo.letter = cfg.letter;
    const double s1 = mean_qps_over(served, attack::kEvent1);
    const double f1 = mean_qps_over(failed, attack::kEvent1);
    const double s2 = mean_qps_over(served, attack::kEvent2);
    const double f2 = mean_qps_over(failed, attack::kEvent2);
    lo.served_fraction_event1 = s1 + f1 > 0.0 ? s1 / (s1 + f1) : 1.0;
    lo.served_fraction_event2 = s2 + f2 > 0.0 ? s2 / (s2 + f2) : 1.0;
    lo.route_changes =
        static_cast<int>(analysis::route_change_count(result, s));
    if (cfg.attacked) {
      sum1 += lo.served_fraction_event1;
      sum2 += lo.served_fraction_event2;
      ++attacked;
    }
    outcome.letters.push_back(lo);
  }
  if (attacked > 0) {
    outcome.mean_served_event1 = sum1 / attacked;
    outcome.mean_served_event2 = sum2 / attacked;
  }
  outcome.total_route_changes = result.route_changes.size();
  return outcome;
}

}  // namespace

std::vector<RegimeOutcome> compare_policy_regimes(
    const sim::ScenarioConfig& config) {
  return {run_regime(config, PolicyRegime::kAsDeployed),
          run_regime(config, PolicyRegime::kAllAbsorb),
          run_regime(config, PolicyRegime::kAllWithdraw),
          run_regime(config, PolicyRegime::kOracle)};
}

}  // namespace rootstress::core
