#include "core/policy_model.h"

namespace rootstress::core {

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kNoChange: return "no-change (absorb)";
    case Strategy::kWithdrawIsp1: return "withdraw ISP1 -> s2";
    case Strategy::kWithdrawS1: return "withdraw s1 -> s2";
    case Strategy::kWithdrawS1AndS2: return "withdraw s1+s2 -> S3";
    case Strategy::kRerouteIsp1ToS3: return "reroute ISP1 -> S3";
  }
  return "?";
}

std::array<Strategy, 5> all_strategies() {
  return {Strategy::kNoChange, Strategy::kWithdrawIsp1, Strategy::kWithdrawS1,
          Strategy::kWithdrawS1AndS2, Strategy::kRerouteIsp1ToS3};
}

PolicyOutcome evaluate(const PolicyScenario& sc, Strategy strategy) {
  // Client -> site and attack -> site assignments per strategy.
  // Sites: 0 = s1, 1 = s2, 2 = S3. Clients: c0 (ISP0), c1 (ISP1), c2, c3.
  std::array<int, 4> client_site{0, 0, 1, 2};
  std::array<double, 3> load{};
  auto send = [&load](int site, double volume) { load[static_cast<std::size_t>(site)] += volume; };

  switch (strategy) {
    case Strategy::kNoChange:
      send(0, sc.A0 + sc.A1);
      break;
    case Strategy::kWithdrawIsp1:
      send(0, sc.A0);
      send(1, sc.A1);
      client_site[1] = 1;  // c1 follows ISP1 to s2
      break;
    case Strategy::kWithdrawS1:
      send(1, sc.A0 + sc.A1);
      client_site[0] = 1;
      client_site[1] = 1;
      break;
    case Strategy::kWithdrawS1AndS2:
      send(2, sc.A0 + sc.A1);
      client_site[0] = 2;
      client_site[1] = 2;
      client_site[2] = 2;
      break;
    case Strategy::kRerouteIsp1ToS3:
      send(0, sc.A0);
      send(2, sc.A1);
      client_site[1] = 2;
      break;
  }

  const std::array<double, 3> capacity{sc.s1, sc.s2, sc.S3};
  PolicyOutcome out;
  out.site_load = load;
  for (int c = 0; c < 4; ++c) {
    const int site = client_site[static_cast<std::size_t>(c)];
    out.client_served[static_cast<std::size_t>(c)] =
        load[static_cast<std::size_t>(site)] <=
        capacity[static_cast<std::size_t>(site)];
    if (out.client_served[static_cast<std::size_t>(c)]) ++out.happiness;
  }
  return out;
}

Strategy best_strategy(const PolicyScenario& scenario) {
  Strategy best = Strategy::kNoChange;
  int best_h = -1;
  for (const Strategy strategy : all_strategies()) {
    const int h = evaluate(scenario, strategy).happiness;
    if (h > best_h) {
      best_h = h;
      best = strategy;
    }
  }
  return best;
}

int classify_case(const PolicyScenario& sc) {
  if (sc.A0 + sc.A1 <= sc.s1) return 1;
  if (sc.A0 <= sc.s1 && sc.A1 <= sc.s2) return 2;
  if (sc.A0 > sc.S3) return 5;
  if (sc.A0 + sc.A1 <= sc.S3) return 3;
  if (sc.A1 <= sc.S3) return 4;
  return 5;
}

}  // namespace rootstress::core
