// One-call evaluation API.
//
// evaluate_scenario() runs a scenario and returns both the raw
// SimulationResult and the per-letter headline summary (the outer loop of
// the paper's §3): observed sites, worst reachability, RTT shift, flips.
#pragma once

#include <vector>

#include "analysis/reachability.h"
#include "atlas/binning.h"
#include "sim/engine.h"

namespace rootstress::core {

/// Headline numbers for one letter across the run.
struct LetterSummary {
  char letter = '?';
  int reported_sites = 0;
  int observed_sites = 0;
  int baseline_vps = 0;   ///< typical successful VPs per bin (median)
  int min_vps = 0;        ///< worst bin
  double worst_loss = 0.0;  ///< 1 - min/baseline
  double median_rtt_quiet_ms = 0.0;
  double median_rtt_event_ms = 0.0;
  int site_flips = 0;
};

/// The full evaluation product.
struct EvaluationReport {
  sim::SimulationResult result;
  std::vector<atlas::LetterBins> grids;  ///< one per service
  std::vector<LetterSummary> letters;
};

/// Runs the scenario, bins the cleaned records, and summarizes each root
/// letter.
EvaluationReport evaluate_scenario(sim::ScenarioConfig config);

}  // namespace rootstress::core
