// Defense advisor (forwarding header).
//
// The advisor implementation lives in anycast/defense.h so the simulation
// engine (which sits below core) can drive it for adaptive-defense runs;
// it remains part of the contribution-layer API under rootstress::core.
#pragma once

#include "anycast/defense.h"

namespace rootstress::core {

using AdvisedAction = anycast::AdvisedAction;
using SiteAdvice = anycast::SiteAdvice;
using anycast::advise;
using anycast::to_string;

}  // namespace rootstress::core
