// What-if policy experiments (§5 / §2.2 future work).
//
// The paper closes by calling for "alternative policies that may improve
// resilience". This module re-runs a scenario under forced site policies
// and compares outcomes, quantifying the withdraw-vs-absorb trade-off on
// the full deployment instead of the 3-site thought experiment:
//   - kAsDeployed: the letters' historical policy mix
//   - kAllAbsorb:  every site is a committed absorber (never withdraws)
//   - kAllWithdraw: every overloaded site withdraws aggressively
//   - kOracle:     per-step omniscient advice from core::advise
#pragma once

#include <string>
#include <vector>

#include "sim/scenario.h"
#include "util/time_series.h"

namespace rootstress::core {

/// The policy regimes a what-if run can force.
enum class PolicyRegime {
  kAsDeployed,
  kAllAbsorb,
  kAllWithdraw,
  kOracle,  ///< live core::advise controller (adaptive defense)
};

std::string to_string(PolicyRegime regime);

/// Rewrites `config` so the engine simulates `regime`: forces the
/// matching per-site stress policy, or switches on the adaptive-defense
/// controller for kOracle. kAsDeployed leaves the config untouched. This
/// is the single place regimes map onto engine knobs — the what-if
/// comparison and the sweep campaign policy axis both go through it.
void apply_policy_regime(sim::ScenarioConfig& config, PolicyRegime regime);

/// Mean of a binned q/s series over `window` (mean of the bin means that
/// overlap it); 0 when no bin overlaps.
double mean_qps_over(const util::BinnedSeries& series, net::SimInterval window);

/// Outcome of one regime on one letter.
struct RegimeLetterOutcome {
  char letter = '?';
  double served_fraction_event1 = 0.0;  ///< served/offered legit, event 1
  double served_fraction_event2 = 0.0;
  int route_changes = 0;                ///< routing churn cost
};

/// Outcome of one regime over the whole deployment.
struct RegimeOutcome {
  PolicyRegime regime = PolicyRegime::kAsDeployed;
  std::vector<RegimeLetterOutcome> letters;
  double mean_served_event1 = 0.0;  ///< mean over attacked letters
  double mean_served_event2 = 0.0;
  std::size_t total_route_changes = 0;
};

/// Runs `config` once per regime (probing disabled — this is a fluid
/// study) and reports per-letter legitimate-traffic survival. The
/// scenario's schedule must be the 2015 two-event timeline.
std::vector<RegimeOutcome> compare_policy_regimes(
    const sim::ScenarioConfig& config);

}  // namespace rootstress::core
