// The §2.2 withdraw-vs-absorb policy model ("Policies in Action").
//
// The paper grounds its empirical observations in a thought experiment:
// three anycast sites (s1, s2 small; S3 = 10x s1), four clients (c0, c1
// in s1's catchment via ISP0/ISP1, c2 at s2, c3 at S3), and two attack
// flows A0 (ISP0 -> s1) and A1 (ISP1 -> s1). The defender can withdraw
// routes to shift ISPs between sites; "happiness" H counts served
// clients. This module implements that model exactly, enumerates the
// strategies, and classifies the paper's five regimes.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace rootstress::core {

/// Capacities and attack volumes (arbitrary common units; legitimate
/// traffic is negligible, as the paper assumes).
struct PolicyScenario {
  double s1 = 1.0;
  double s2 = 1.0;
  double S3 = 10.0;
  double A0 = 0.0;  ///< attack arriving via ISP0 (c0's ISP)
  double A1 = 0.0;  ///< attack arriving via ISP1 (c1's ISP)
};

/// The defender's options in the model.
enum class Strategy {
  kNoChange,          ///< everyone stays put (absorb)
  kWithdrawIsp1,      ///< s1 withdraws toward ISP1; A1 + c1 move to s2
  kWithdrawS1,        ///< s1 withdraws fully; A0, A1, c0, c1 move to s2
  kWithdrawS1AndS2,   ///< s1 and s2 withdraw; everything moves to S3
  kRerouteIsp1ToS3,   ///< ISP1 (A1 + c1) is steered to S3
};

std::string to_string(Strategy strategy);

/// All strategies, in the order the paper discusses them.
std::array<Strategy, 5> all_strategies();

/// Result of applying one strategy.
struct PolicyOutcome {
  int happiness = 0;                     ///< served clients, 0..4
  std::array<bool, 4> client_served{};   ///< c0..c3
  std::array<double, 3> site_load{};     ///< attack load at s1, s2, S3
};

/// Evaluates one strategy. A site serves its clients iff its total
/// arriving attack volume does not exceed its capacity.
PolicyOutcome evaluate(const PolicyScenario& scenario, Strategy strategy);

/// The best strategy (max happiness; ties broken toward less routing
/// disruption, i.e. the earlier enumerator).
Strategy best_strategy(const PolicyScenario& scenario);

/// Which of the paper's five cases the scenario falls into (1-5), for
/// the canonical A0 == A1 sweep:
///   1: A0+A1 <= s1                      (attack absorbed, H=4)
///   2: A0+A1 > s1, A0 <= s1, A1 <= s2   (shed ISP1 to s2, H=4)
///   3: A0 > s1, A0+A1 <= S3             (everyone to S3, H=4)
///   4: A0 > s1, A0+A1 > S3, A1 <= S3    (reroute ISP1 to S3, H=3)
///   5: A0 > S3                          (degraded absorber, H=2)
int classify_case(const PolicyScenario& scenario);

}  // namespace rootstress::core
