#include "core/evaluation.h"

#include <algorithm>
#include <cstdlib>

#include "analysis/flips.h"
#include "analysis/rtt.h"
#include "attack/events2015.h"
#include "resolver/dataset.h"
#include "util/logging.h"
#include "util/stats.h"

namespace rootstress::core {

EvaluationReport evaluate_scenario(sim::ScenarioConfig config) {
  sim::SimulationEngine engine(config);
  EvaluationReport report;
  report.result = engine.run();
  const sim::SimulationResult& result = report.result;

  // Labeled-dataset export (attack / flash_crowd / legit per bin, JSON
  // lines): same env-hook convention as the engine's trace exporters.
  // Atomic write, so campaign cells sharing one path never tear it.
  if (const char* path = std::getenv("ROOTSTRESS_DATASET");
      path != nullptr && *path != '\0') {
    if (resolver::write_labeled_dataset(path, config, result)) {
      RS_LOG_INFO << "labeled dataset written to " << path;
    } else {
      RS_LOG_ERROR << "could not write labeled dataset to " << path;
    }
  }

  // Bin over the probing window (baseline days carry no probes).
  const std::size_t bins = static_cast<std::size_t>(
      (result.probe_window.end - result.probe_window.begin).ms /
      result.bin_width.ms);
  report.grids = atlas::bin_records(
      result.records, static_cast<int>(result.letter_chars.size()),
      static_cast<int>(result.vps.size()), result.probe_window.begin,
      result.bin_width, bins);

  const auto& letters = engine.deployment().letters();
  for (std::size_t li = 0; li < letters.size(); ++li) {
    const auto& cfg = letters[li];
    const int s = result.service_index(cfg.letter);
    if (s < 0) continue;
    const auto& grid = report.grids[static_cast<std::size_t>(s)];

    LetterSummary summary;
    summary.letter = cfg.letter;
    summary.reported_sites = cfg.reported_sites;
    summary.observed_sites =
        analysis::observed_site_count(result.records, s);

    const auto reach = analysis::reachability_series(
        grid, cfg.letter, cfg.probe_interval_s, /*scale_for_cadence=*/true);
    std::vector<double> series;
    series.reserve(reach.successful_per_bin.size());
    for (int v : reach.successful_per_bin) {
      series.push_back(static_cast<double>(v));
    }
    summary.baseline_vps = static_cast<int>(util::median(series));
    summary.min_vps = reach.min_vps;
    if (summary.baseline_vps > 0) {
      summary.worst_loss =
          1.0 - static_cast<double>(summary.min_vps) / summary.baseline_vps;
    }

    analysis::RttFilter filter;
    filter.service_index = s;
    summary.median_rtt_quiet_ms = analysis::median_rtt_in(
        result.records, filter, net::SimTime(0), attack::kEvent1.begin);
    summary.median_rtt_event_ms = analysis::median_rtt_in(
        result.records, filter, attack::kEvent1.begin, attack::kEvent1.end);
    summary.site_flips = analysis::total_site_flips(grid);
    report.letters.push_back(summary);
  }
  return report;
}

}  // namespace rootstress::core
