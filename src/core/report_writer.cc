#include "core/report_writer.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "analysis/collateral.h"
#include "analysis/letter_flips.h"
#include "atlas/dnsmon.h"
#include "obs/json.h"

namespace rootstress::core {

namespace {

void write_header(const EvaluationReport& report, const ReportOptions& options,
                  std::ostream& os) {
  const auto& result = report.result;
  os << "# " << options.title << "\n\n";
  os << "Simulated span: " << result.start.to_string() << " .. "
     << result.end.to_string() << " (epoch = 2015-11-30T00:00Z); "
     << result.vps.size() << " vantage points, " << result.sites.size()
     << " anycast sites.\n\n";
  os << "Data cleaning kept " << result.cleaning.kept_vps << "/"
     << result.cleaning.total_vps << " VPs ("
     << result.cleaning.dropped_old_firmware << " old firmware, "
     << result.cleaning.dropped_hijacked << " hijacked); "
     << result.records.size() << " measurements, "
     << result.route_changes.size() << " route changes.\n\n";
}

void write_letter_table(const EvaluationReport& report, std::ostream& os) {
  os << "## Per-letter damage\n\n";
  os << "| letter | sites (rep/obs) | typical VPs | min VPs | worst loss | "
        "RTT quiet->event (ms) | site flips |\n";
  os << "|---|---|---|---|---|---|---|\n";
  for (const auto& s : report.letters) {
    std::ostringstream row;
    row << "| " << s.letter << " | " << s.reported_sites << " / "
        << s.observed_sites << " | " << s.baseline_vps << " | " << s.min_vps
        << " | " << static_cast<int>(100.0 * s.worst_loss + 0.5) << "% | "
        << static_cast<int>(s.median_rtt_quiet_ms + 0.5) << " -> "
        << static_cast<int>(s.median_rtt_event_ms + 0.5) << " | "
        << s.site_flips << " |\n";
    os << row.str();
  }
  os << '\n';
}

void write_highlights(const EvaluationReport& report, std::ostream& os) {
  // The report calls out the letters at the extremes.
  const LetterSummary* worst = nullptr;
  const LetterSummary* most_flips = nullptr;
  for (const auto& s : report.letters) {
    if (worst == nullptr || s.worst_loss > worst->worst_loss) worst = &s;
    if (most_flips == nullptr || s.site_flips > most_flips->site_flips) {
      most_flips = &s;
    }
  }
  os << "## Highlights\n\n";
  if (worst != nullptr) {
    os << "- Hardest hit: **" << worst->letter << "-Root** ("
       << static_cast<int>(100.0 * worst->worst_loss + 0.5)
       << "% of its vantage points lost service at the worst moment).\n";
  }
  if (most_flips != nullptr && most_flips->site_flips > 0) {
    os << "- Most routing churn: **" << most_flips->letter << "-Root** ("
       << most_flips->site_flips << " site flips).\n";
  }
  os << '\n';
}

void write_dnsmon(const EvaluationReport& report, std::ostream& os) {
  os << "## DNSMON board\n\n```\n";
  const auto rows =
      atlas::render_dnsmon(report.grids, /*bins_per_char=*/6);
  for (const auto& row : rows) {
    if (row.letter > 'M') break;  // .nl is not part of the board
    os << row.letter << " |" << row.strip << "|  uptime "
       << static_cast<int>(100.0 * std::min(1.0, row.uptime) + 0.5) << "%\n";
  }
  os << "```\n\n";
}

void write_collateral(const EvaluationReport& report, std::ostream& os) {
  const auto nl = analysis::nl_query_rates(report.result);
  if (nl.empty()) return;
  os << "## Collateral damage\n\n";
  for (const auto& site : nl) {
    double worst = 1e9;
    for (const double v : site.normalized_qps) worst = std::min(worst, v);
    os << "- .nl " << site.anonymized_label
       << " dropped to " << static_cast<int>(100.0 * worst + 0.5)
       << "% of its median query rate during the events.\n";
  }
  os << '\n';
}

void write_letter_flips(const EvaluationReport& report, std::ostream& os) {
  const auto evidence =
      analysis::letter_flip_evidence(report.result, 'L');
  if (evidence.quiet_qps <= 0.0) return;
  os << "## Letter flips\n\n";
  std::ostringstream line;
  line.precision(2);
  line << std::fixed << "L-Root (not attacked) served " << evidence.event2_ratio
       << "x its quiet rate during the second event as resolvers failed "
          "over from attacked letters.\n";
  os << line.str() << '\n';
}

}  // namespace

void write_markdown_report(const EvaluationReport& report,
                           const ReportOptions& options, std::ostream& os) {
  write_header(report, options, os);
  write_highlights(report, os);
  write_letter_table(report, os);
  if (options.include_dnsmon_board) write_dnsmon(report, os);
  if (options.include_collateral) write_collateral(report, os);
  if (options.include_letter_flips) write_letter_flips(report, os);
}

std::string markdown_report(const EvaluationReport& report,
                            const ReportOptions& options) {
  std::ostringstream os;
  write_markdown_report(report, options, os);
  return os.str();
}

namespace {

const char* metric_kind_name(obs::MetricKind kind) {
  switch (kind) {
    case obs::MetricKind::kCounter: return "counter";
    case obs::MetricKind::kGauge: return "gauge";
    case obs::MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

obs::JsonValue metric_to_json(const obs::MetricSample& sample) {
  auto m = obs::JsonValue::object();
  m.set("name", sample.name);
  auto labels = obs::JsonValue::object();
  for (const auto& [key, value] : sample.labels) labels.set(key, value);
  m.set("labels", std::move(labels));
  m.set("kind", metric_kind_name(sample.kind));
  m.set("value", sample.value);
  if (sample.kind == obs::MetricKind::kHistogram) {
    m.set("bin_width", sample.bin_width);
    auto bins = obs::JsonValue::array();
    for (const std::uint64_t count : sample.bins) bins.push_back(count);
    m.set("bins", std::move(bins));
  }
  return m;
}

obs::JsonValue phase_to_json(const obs::PhaseStats& phase) {
  auto p = obs::JsonValue::object();
  p.set("name", phase.name);
  p.set("calls", phase.calls);
  p.set("total_ms", static_cast<double>(phase.total_ns) / 1e6);
  p.set("self_ms", static_cast<double>(phase.self_ns) / 1e6);
  p.set("alloc_bytes", phase.alloc_bytes);
  p.set("allocs", phase.allocs);
  p.set("depth", phase.depth);
  return p;
}

}  // namespace

void write_telemetry(const obs::Snapshot& snapshot, std::ostream& os) {
  auto doc = obs::JsonValue::object();
  doc.set("sim_time_ms", snapshot.sim_time.ms);
  doc.set("sim_time", snapshot.sim_time.to_string());

  auto metrics = obs::JsonValue::array();
  for (const auto& sample : snapshot.metrics) {
    metrics.push_back(metric_to_json(sample));
  }
  doc.set("metrics", std::move(metrics));

  auto phases = obs::JsonValue::array();
  for (const auto& phase : snapshot.phases) {
    phases.push_back(phase_to_json(phase));
  }
  doc.set("phases", std::move(phases));

  auto trace = obs::JsonValue::object();
  trace.set("emitted", snapshot.trace.emitted);
  trace.set("dropped", snapshot.trace.dropped);
  trace.set("capacity", snapshot.trace.capacity);
  trace.set("buffered", snapshot.trace.buffered);
  doc.set("trace", std::move(trace));

  doc.set("profiler_slices_dropped",
          static_cast<std::uint64_t>(snapshot.slices_dropped));

  // Flight-recorder timeline; an empty object's bins == 0 marks "no
  // recorder attached" (e.g. telemetry off or a pre-timeline snapshot).
  doc.set("timeline", snapshot.timeline.to_json());

  os << doc.dump() << '\n';
}

std::string telemetry_json(const obs::Snapshot& snapshot) {
  std::ostringstream os;
  write_telemetry(snapshot, os);
  return os.str();
}

}  // namespace rootstress::core
