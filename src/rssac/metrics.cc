#include "rssac/metrics.h"

#include <algorithm>
#include <cmath>

namespace rootstress::rssac {

double LetterDayMetrics::unique_sources(double resolver_pool) const noexcept {
  // Spoofed sources draw from the routable fraction of the IPv4 space,
  // not all 2^32 addresses.
  constexpr double kSpoofableSpace = 2.0e9;
  const double random_uniques =
      kSpoofableSpace *
      (1.0 - std::exp(-random_source_queries / kSpoofableSpace));
  const double resolver_uniques =
      resolver_pool > 0.0
          ? resolver_pool * (1.0 - std::exp(-resolver_queries / resolver_pool))
          : 0.0;
  const double total = random_uniques + resolver_uniques +
                       static_cast<double>(heavy_hitter_sources);
  return std::min(total, unique_counter_cap);
}

DailyAccumulator::DailyAccumulator(int letter_count)
    : letter_count_(letter_count) {}

int DailyAccumulator::day_of(net::SimTime t) noexcept {
  const double days = t.seconds() / 86400.0;
  return static_cast<int>(std::floor(days));
}

void DailyAccumulator::add_step(int letter_index, net::SimTime t,
                                const StepTraffic& traffic) {
  auto& m = days_[{letter_index, day_of(t)}];
  const double f = traffic.metering_factor;
  m.queries += traffic.queries_received * f;
  m.responses += traffic.responses_sent * f;
  m.random_source_queries += traffic.random_source_queries * f;
  m.resolver_queries += traffic.resolver_queries * f;
  if (traffic.queries_received * f >= 0.5) {
    m.query_sizes.add(traffic.query_payload_bytes,
                      static_cast<std::uint64_t>(traffic.queries_received * f));
  }
  if (traffic.responses_sent * f >= 0.5) {
    m.response_sizes.add(
        traffic.response_payload_bytes,
        static_cast<std::uint64_t>(traffic.responses_sent * f));
  }
  if (traffic.heavy_hitter_sources > m.heavy_hitter_sources) {
    m.heavy_hitter_sources = traffic.heavy_hitter_sources;
  }
  m.unique_counter_cap =
      std::min(m.unique_counter_cap, traffic.unique_counter_cap);
}

const LetterDayMetrics& DailyAccumulator::metrics(int letter_index,
                                                  int day) const {
  const auto it = days_.find({letter_index, day});
  return it == days_.end() ? empty_ : it->second;
}

bool DailyAccumulator::has(int letter_index, int day) const {
  return days_.contains({letter_index, day});
}

}  // namespace rootstress::rssac
