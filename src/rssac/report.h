// Published RSSAC-002 daily reports.
//
// Only letters that had committed to RSSAC-002 by the event (A, H, J, K,
// L) publish; the rest of the accumulator stays internal — exactly the
// visibility the paper had to work with in §3.1.
#pragma once

#include <string>
#include <vector>

#include "rssac/metrics.h"

namespace rootstress::rssac {

/// One published (letter, day) report.
struct DailyReport {
  char letter = '?';
  int day = 0;            ///< day index from scenario epoch (0 = Nov 30)
  double queries = 0.0;   ///< daily total (metered)
  double responses = 0.0;
  double unique_sources = 0.0;
  /// Most populated payload-size bins (16-byte bins), for the paper's
  /// attack-size identification method.
  std::size_t query_mode_bin = 0;
  std::size_t response_mode_bin = 0;
};

/// Which letters publish, and their letter indices.
struct Publisher {
  char letter = '?';
  int letter_index = -1;
};

/// Extracts published reports for `days` (inclusive day indices) from the
/// accumulator. `resolver_pool` feeds the unique-source estimate.
std::vector<DailyReport> publish(const DailyAccumulator& accumulator,
                                 const std::vector<Publisher>& publishers,
                                 int first_day, int last_day,
                                 double resolver_pool);

/// Metered queries for one (letter, day); 0 when the day is absent.
double day_queries(const DailyAccumulator& accumulator, int letter_index,
                   int day);

/// Mean daily queries over [first_day, last_day] for one letter — the
/// baseline the paper subtracts (mean of the 7 days before the event).
double baseline_queries(const DailyAccumulator& accumulator, int letter_index,
                        int first_day, int last_day);

}  // namespace rootstress::rssac
