// RSSAC-002 style per-letter daily metrics (§2.4.2).
//
// Collects, per letter per day: query/response counts, DNS payload size
// histograms in 16-byte bins, and unique-source estimates. Metering is
// best-effort: overloaded letters under-report by a configurable factor,
// reproducing the measurement artifact the paper corrects for in Table 3.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "net/clock.h"
#include "util/histogram.h"
#include "util/hll.h"

namespace rootstress::rssac {

/// Traffic observed during one fluid step at one letter.
struct StepTraffic {
  double queries_received = 0.0;   ///< queries that reached servers
  double responses_sent = 0.0;     ///< after RRL and filtering
  /// Of the received queries, how many carried uniformly spoofed 32-bit
  /// sources (drives the unique-IP explosion).
  double random_source_queries = 0.0;
  /// Queries from the legit resolver pool.
  double resolver_queries = 0.0;
  double query_payload_bytes = 40.0;
  double response_payload_bytes = 350.0;
  /// Fraction of this step's traffic the letter's metering actually
  /// recorded (1 = everything; overloaded letters record less).
  double metering_factor = 1.0;
  /// Heavy-hitter sources contributing this step (0 when no attack).
  int heavy_hitter_sources = 0;
  /// Capacity of the letter's distinct-source counting structure; the
  /// suspiciously similar ~36-40M unique-IP figures H, K, and L published
  /// (Table 3) point at fixed-size collector tables saturating.
  double unique_counter_cap = 1e18;
};

/// Accumulated metrics for one (letter, day).
struct LetterDayMetrics {
  double queries = 0.0;
  double responses = 0.0;
  util::FixedBinHistogram query_sizes{16.0, 64};
  util::FixedBinHistogram response_sizes{16.0, 64};
  double random_source_queries = 0.0;  ///< metered count
  double resolver_queries = 0.0;       ///< metered count
  int heavy_hitter_sources = 0;
  double unique_counter_cap = 1e18;

  /// Analytic distinct-source estimate: random 32-bit sources follow the
  /// coupon-collector expectation over the IPv4 space; resolver sources
  /// draw from a pool of `resolver_pool` addresses; heavy hitters add a
  /// constant.
  double unique_sources(double resolver_pool) const noexcept;
};

/// Per-letter, per-day accumulator. Days index from the scenario epoch:
/// day 0 covers [0, 24h), day -1 the day before, etc.
class DailyAccumulator {
 public:
  explicit DailyAccumulator(int letter_count);

  /// Day index containing `t`.
  static int day_of(net::SimTime t) noexcept;

  /// Adds one step of traffic for `letter_index` at time `t` spanning
  /// `step` (counts in StepTraffic are totals for the step, not rates).
  void add_step(int letter_index, net::SimTime t, const StepTraffic& traffic);

  /// Metrics for (letter, day); creates empty metrics if absent.
  const LetterDayMetrics& metrics(int letter_index, int day) const;

  /// True if any traffic was recorded for (letter, day).
  bool has(int letter_index, int day) const;

  int letter_count() const noexcept { return letter_count_; }

 private:
  int letter_count_;
  std::map<std::pair<int, int>, LetterDayMetrics> days_;
  LetterDayMetrics empty_;
};

}  // namespace rootstress::rssac
