#include "rssac/report.h"

namespace rootstress::rssac {

std::vector<DailyReport> publish(const DailyAccumulator& accumulator,
                                 const std::vector<Publisher>& publishers,
                                 int first_day, int last_day,
                                 double resolver_pool) {
  std::vector<DailyReport> reports;
  for (const auto& pub : publishers) {
    for (int day = first_day; day <= last_day; ++day) {
      if (!accumulator.has(pub.letter_index, day)) continue;
      const LetterDayMetrics& m = accumulator.metrics(pub.letter_index, day);
      DailyReport r;
      r.letter = pub.letter;
      r.day = day;
      r.queries = m.queries;
      r.responses = m.responses;
      r.unique_sources = m.unique_sources(resolver_pool);
      r.query_mode_bin = m.query_sizes.mode_bin();
      r.response_mode_bin = m.response_sizes.mode_bin();
      reports.push_back(r);
    }
  }
  return reports;
}

double day_queries(const DailyAccumulator& accumulator, int letter_index,
                   int day) {
  if (!accumulator.has(letter_index, day)) return 0.0;
  return accumulator.metrics(letter_index, day).queries;
}

double baseline_queries(const DailyAccumulator& accumulator, int letter_index,
                        int first_day, int last_day) {
  double total = 0.0;
  int days = 0;
  for (int day = first_day; day <= last_day; ++day) {
    if (!accumulator.has(letter_index, day)) continue;
    total += accumulator.metrics(letter_index, day).queries;
    ++days;
  }
  return days == 0 ? 0.0 : total / days;
}

}  // namespace rootstress::rssac
