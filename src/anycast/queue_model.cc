#include "anycast/queue_model.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace rootstress::anycast {

QueueOutcome evaluate_queue(double offered_qps,
                            const QueueConfig& config) noexcept {
  QueueOutcome out;
  if (offered_qps <= 0.0) {
    out.served_qps = 0.0;
    return out;
  }
  if (config.capacity_qps <= 0.0) {
    out.loss_fraction = 1.0;
    out.utilization = 1.0;
    return out;
  }
  const double rho = offered_qps / config.capacity_qps;
  out.utilization = rho;
  const double full_queue_ms =
      config.buffer_packets / config.capacity_qps * 1000.0;

  if (rho < config.knee_utilization) {
    // Light load: M/M/1 waiting time, bounded to keep the model tame.
    const double service_ms = 1000.0 / config.capacity_qps;
    out.queue_delay_ms =
        std::min(5.0, service_ms * rho / std::max(1e-9, 1.0 - rho));
    out.loss_fraction = 0.0;
    out.served_qps = offered_qps;
    return out;
  }
  if (rho < 1.0) {
    // Knee region: the standing queue builds from the M/M/1 delay at the
    // knee toward the full buffer (continuous at both ends).
    const double service_ms = 1000.0 / config.capacity_qps;
    const double knee = config.knee_utilization;
    const double at_knee =
        std::min(5.0, service_ms * knee / std::max(1e-9, 1.0 - knee));
    const double ramp = (rho - knee) / (1.0 - knee);
    out.queue_delay_ms = at_knee + ramp * (full_queue_ms - at_knee);
    out.loss_fraction = 0.0;
    out.served_qps = offered_qps;
    return out;
  }
  // Saturated: buffer full, tail drops.
  out.queue_delay_ms = full_queue_ms;
  out.loss_fraction = 1.0 - 1.0 / rho;
  out.served_qps = config.capacity_qps;
  return out;
}

QueueInstruments make_queue_instruments(obs::MetricsRegistry& metrics,
                                        char letter) {
  const obs::Labels labels{{"letter", std::string(1, letter)}};
  QueueInstruments out;
  // rho can exceed 1 under attack; 16 bins of 0.25 cover up to 4x capacity
  // with the overflow bin absorbing the rest.
  out.utilization =
      &metrics.histogram("queue.utilization", labels, 0.25, 16);
  out.loss = &metrics.histogram("queue.loss", labels, 0.05, 21);
  out.saturated_steps = &metrics.counter("queue.saturated_steps", labels);
  return out;
}

QueueOutcome evaluate_queue_observed(double offered_qps,
                                     const QueueConfig& config,
                                     const QueueInstruments& instruments) {
  const QueueOutcome out = evaluate_queue(offered_qps, config);
  if (instruments.utilization != nullptr) {
    instruments.utilization->observe(out.utilization);
  }
  if (instruments.loss != nullptr) instruments.loss->observe(out.loss_fraction);
  if (instruments.saturated_steps != nullptr && out.utilization >= 1.0) {
    instruments.saturated_steps->add();
  }
  return out;
}

double uplink_loss(double offered_gbps, double uplink_gbps) noexcept {
  if (uplink_gbps <= 0.0) return offered_gbps > 0.0 ? 1.0 : 0.0;
  if (offered_gbps <= uplink_gbps) return 0.0;
  return 1.0 - uplink_gbps / offered_gbps;
}

}  // namespace rootstress::anycast
