#include "anycast/queue_model.h"

#include <algorithm>

namespace rootstress::anycast {

QueueOutcome evaluate_queue(double offered_qps,
                            const QueueConfig& config) noexcept {
  QueueOutcome out;
  if (offered_qps <= 0.0) {
    out.served_qps = 0.0;
    return out;
  }
  if (config.capacity_qps <= 0.0) {
    out.loss_fraction = 1.0;
    out.utilization = 1.0;
    return out;
  }
  const double rho = offered_qps / config.capacity_qps;
  out.utilization = rho;
  const double full_queue_ms =
      config.buffer_packets / config.capacity_qps * 1000.0;

  if (rho < config.knee_utilization) {
    // Light load: M/M/1 waiting time, bounded to keep the model tame.
    const double service_ms = 1000.0 / config.capacity_qps;
    out.queue_delay_ms =
        std::min(5.0, service_ms * rho / std::max(1e-9, 1.0 - rho));
    out.loss_fraction = 0.0;
    out.served_qps = offered_qps;
    return out;
  }
  if (rho < 1.0) {
    // Knee region: the standing queue builds from the M/M/1 delay at the
    // knee toward the full buffer (continuous at both ends).
    const double service_ms = 1000.0 / config.capacity_qps;
    const double knee = config.knee_utilization;
    const double at_knee =
        std::min(5.0, service_ms * knee / std::max(1e-9, 1.0 - knee));
    const double ramp = (rho - knee) / (1.0 - knee);
    out.queue_delay_ms = at_knee + ramp * (full_queue_ms - at_knee);
    out.loss_fraction = 0.0;
    out.served_qps = offered_qps;
    return out;
  }
  // Saturated: buffer full, tail drops.
  out.queue_delay_ms = full_queue_ms;
  out.loss_fraction = 1.0 - 1.0 / rho;
  out.served_qps = config.capacity_qps;
  return out;
}

double uplink_loss(double offered_gbps, double uplink_gbps) noexcept {
  if (uplink_gbps <= 0.0) return offered_gbps > 0.0 ? 1.0 : 0.0;
  if (offered_gbps <= uplink_gbps) return 0.0;
  return 1.0 - uplink_gbps / offered_gbps;
}

}  // namespace rootstress::anycast
