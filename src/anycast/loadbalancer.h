// Site load balancer: maps query sources to servers.
//
// Normal operation is source-hash ECMP across all servers. Under stress
// the mapping degrades per the site's ServerStressMode (§3.5): either the
// balancer concentrates visible service onto one surviving server, or all
// servers share the congestion.
#pragma once

#include <cstdint>

#include "net/ipv4.h"

namespace rootstress::anycast {

/// Stateless ECMP pick: which of `server_count` servers handles `source`.
/// Returns a 0-based index; `server_count` must be >= 1. `salt`
/// differentiates sites so the same source spreads differently per site.
int ecmp_pick(net::Ipv4Addr source, int server_count,
              std::uint64_t salt) noexcept;

}  // namespace rootstress::anycast
