// Co-location facilities: the shared-risk substrate behind collateral
// damage (§3.6).
//
// Sites that share a facility share its uplink. When event traffic into
// co-located sites saturates the uplink, *all* tenants lose packets —
// including services that were never attacked (D-Root sites, the .nl
// TLD). The paper infers this end-to-end; here it is the actual
// mechanism.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace rootstress::anycast {

/// A shared data-center uplink.
struct Facility {
  std::string key;          ///< e.g. "FRA-EU-DC"
  double uplink_gbps = 10.0;
};

/// Tracks per-step load on each facility and exposes the shared loss each
/// tenant experiences.
class FacilityTable {
 public:
  /// Registers a facility; returns its index. Re-registering a key
  /// returns the existing index (uplink unchanged).
  int add(const std::string& key, double uplink_gbps);

  /// Index for a key; nullopt if unknown.
  std::optional<int> find(const std::string& key) const;

  std::size_t size() const noexcept { return facilities_.size(); }
  const Facility& facility(int index) const {
    return facilities_[static_cast<std::size_t>(index)];
  }

  /// Resets per-step accumulated load.
  void begin_step();

  /// Adds one tenant's traffic for the step (ingress + egress Gb/s).
  void add_load(int index, double gbps);

  /// Loss fraction tenants of `index` suffer this step (0 within
  /// capacity).
  double shared_loss(int index) const;

 private:
  std::vector<Facility> facilities_;
  std::vector<double> step_load_gbps_;
};

/// The default facilities used by the 2015 deployment: Frankfurt (seven
/// letters co-located per §3.6), Amsterdam, and Sydney.
void add_default_facilities(FacilityTable& table);

}  // namespace rootstress::anycast
