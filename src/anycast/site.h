// An anycast site: servers behind a load balancer behind an ingress
// queue, with a stress policy and (optionally) a shared facility.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "anycast/letter.h"
#include "anycast/loadbalancer.h"
#include "anycast/policy.h"
#include "anycast/queue_model.h"
#include "anycast/server.h"
#include "net/clock.h"
#include "net/geo.h"
#include "util/rng.h"

namespace rootstress::obs {
class Counter;
class Runtime;
}  // namespace rootstress::obs

namespace rootstress::anycast {

/// Routing scope of a site's announcement.
enum class SiteScope : std::uint8_t {
  kGlobal,     ///< announced normally
  kLocalOnly,  ///< transit withdrawn; direct peers still routed (partial)
  kDown,       ///< fully withdrawn
};

/// Announce state as a plot level (timeline "site.announce_state"
/// series): 1.0 global, 0.5 local-only, 0.0 down.
constexpr double scope_level(SiteScope scope) noexcept {
  switch (scope) {
    case SiteScope::kGlobal: return 1.0;
    case SiteScope::kLocalOnly: return 0.5;
    case SiteScope::kDown: return 0.0;
  }
  return 0.0;
}

/// Result of delivering one probe to the site.
struct ProbeReply {
  bool answered = false;
  int server = 0;               ///< 1-based index of the answering server
  double extra_delay_ms = 0.0;  ///< queueing delay beyond propagation
  std::vector<std::uint8_t> wire;  ///< encoded DNS response (if answered)
};

/// Telemetry wiring for one site: a nullable runtime plus cached
/// instrument pointers (shared per letter — see make_queue_instruments).
/// Default-constructed = telemetry off.
struct SiteTelemetry {
  obs::Runtime* runtime = nullptr;
  obs::Counter* withdrawals = nullptr;      ///< per-letter
  obs::Counter* restores = nullptr;         ///< per-letter
  obs::Counter* overload_onsets = nullptr;  ///< per-letter
  QueueInstruments queue;
};

/// One site of one letter.
class AnycastSite {
 public:
  /// `site_id` is the deployment-global id; `host_as` the dense topology
  /// index of the site's host AS; `facility` an index into the
  /// deployment's facility table or -1.
  AnycastSite(int site_id, char letter, SiteSpec spec, net::GeoPoint location,
              int host_as, int facility, const StressPolicy& policy,
              util::Rng& rng);

  int site_id() const noexcept { return site_id_; }
  char letter() const noexcept { return letter_; }
  const SiteSpec& spec() const noexcept { return spec_; }
  net::GeoPoint location() const noexcept { return location_; }
  int host_as() const noexcept { return host_as_; }
  int facility() const noexcept { return facility_; }
  const std::string& code() const noexcept { return spec_.code; }

  /// "X-APT" label as used throughout the paper.
  std::string label() const;

  /// Current announcement scope (engine keeps routing in sync).
  SiteScope scope() const noexcept { return scope_; }
  void set_scope(SiteScope scope) noexcept { scope_ = scope; }

  /// set_scope plus logging, trace events, and counters; returns whether
  /// the scope actually changed. The engine's apply path uses this so
  /// every withdrawal/restore is observable (they used to be silent).
  bool transition_scope(SiteScope scope, net::SimTime now);

  /// Attaches telemetry; also wires each server's RRL instance.
  void attach_obs(const SiteTelemetry& telemetry);

  /// Whether response rate limiting is active at this site. Reactive
  /// defenses toggle it mid-run; the fluid layer consults this when
  /// modelling uplink egress and RSSAC response counts.
  bool rrl_enabled() const noexcept { return rrl_enabled_; }
  /// Flips RRL on every server of the site.
  void set_rrl_enabled(bool on) noexcept;

  /// Multiplies the site's capacity by `factor` (> 0): the "surge
  /// capacity" actuation. Takes effect from the next begin_step().
  void scale_capacity(double factor) noexcept;

  /// Policy state machine (engine drives it each step).
  SitePolicyState& policy_state() noexcept { return policy_state_; }

  /// Starts a simulation step with the given offered load; `shared_loss`
  /// is extra loss imposed by the site's facility uplink.
  void begin_step(double attack_qps, double legit_qps, double shared_loss,
                  net::SimTime now);

  /// The queue outcome of the current step.
  const QueueOutcome& outcome() const noexcept { return outcome_; }
  double offered_attack_qps() const noexcept { return attack_qps_; }
  double offered_legit_qps() const noexcept { return legit_qps_; }
  /// Loss a query experiences arriving at this step (queue + facility).
  double arrival_loss() const noexcept { return arrival_loss_; }

  /// Delivers one probe query (wire bytes) from `source` at `now`.
  ProbeReply probe(net::Ipv4Addr source,
                   const std::vector<std::uint8_t>& query_wire,
                   net::SimTime now, util::Rng& rng);

  /// Same, with the query already decoded — the engine caches the CHAOS
  /// query per service and skips the per-probe wire decode. Safe to call
  /// concurrently between begin_step()s: it reads the step's queue state
  /// and touches only atomic server counters.
  ProbeReply probe(net::Ipv4Addr source, const dns::Message& query,
                   net::SimTime now, util::Rng& rng);

  int server_count() const noexcept { return static_cast<int>(servers_.size()); }
  SiteServer& server(int index_0based) { return servers_[static_cast<std::size_t>(index_0based)]; }

 private:
  int pick_server(net::Ipv4Addr source) const noexcept;

  int site_id_;
  char letter_;
  SiteSpec spec_;
  net::GeoPoint location_;
  int host_as_;
  int facility_;
  SiteScope scope_ = SiteScope::kGlobal;
  SitePolicyState policy_state_;
  std::vector<SiteServer> servers_;
  bool rrl_enabled_ = true;

  // Per-step state.
  double attack_qps_ = 0.0;
  double legit_qps_ = 0.0;
  double arrival_loss_ = 0.0;
  QueueOutcome outcome_{};
  bool overloaded_ = false;
  int concentrate_server_ = 0;  ///< 0-based survivor when concentrating
  util::Rng jitter_rng_;
  SiteTelemetry telemetry_;
};

}  // namespace rootstress::anycast
