// Site ingress queue model: loss and delay as a function of offered load.
//
// The paper attributes the 1-2 second RTTs at surviving K-Root sites to
// "an overloaded link combined with large buffering at routers
// (industrial-scale bufferbloat)" (§3.3.2). We model a site ingress as a
// FIFO served at the site capacity with a deep buffer:
//   - below ~90% utilization: negligible loss, small M/M/1-style delay;
//   - at saturation: the buffer fills, adding buffer/capacity seconds of
//     standing queue, and arrivals beyond capacity are dropped
//     (loss = 1 - capacity/offered).
#pragma once

namespace rootstress::obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace rootstress::obs

namespace rootstress::anycast {

/// Result of pushing `offered` q/s through a site.
struct QueueOutcome {
  double loss_fraction = 0.0;   ///< probability an arriving query is dropped
  double queue_delay_ms = 0.0;  ///< standing-queue delay added to the RTT
  double served_qps = 0.0;      ///< goodput leaving the queue
  double utilization = 0.0;     ///< offered / capacity
};

/// Queue parameters.
struct QueueConfig {
  double capacity_qps = 1e6;    ///< service rate
  double buffer_packets = 1e6;  ///< deep buffer -> seconds of bufferbloat
  /// Utilization where the standing queue starts to build; the delay ramps
  /// linearly from here to full bufferbloat at utilization 1.0.
  double knee_utilization = 0.9;
};

/// Evaluates the queue at a given offered load. `offered_qps` >= 0;
/// a non-positive capacity means the site serves nothing (loss = 1).
QueueOutcome evaluate_queue(double offered_qps, const QueueConfig& config) noexcept;

/// Cached instrument pointers for one letter's queue telemetry. All null
/// by default, in which case recording is a no-op. Instruments are shared
/// across a letter's sites (per-letter cardinality keeps snapshots small).
struct QueueInstruments {
  obs::Histogram* utilization = nullptr;  ///< per-step rho, 0.25-wide bins
  obs::Histogram* loss = nullptr;         ///< per-step loss, 0.05-wide bins
  obs::Counter* saturated_steps = nullptr;
};

/// Registers (or reuses) the per-letter queue instruments.
QueueInstruments make_queue_instruments(obs::MetricsRegistry& metrics,
                                        char letter);

/// evaluate_queue plus recording into `instruments` (null members skipped).
QueueOutcome evaluate_queue_observed(double offered_qps,
                                     const QueueConfig& config,
                                     const QueueInstruments& instruments);

/// Additional loss imposed by a shared facility uplink carrying
/// `offered_gbps` over a link of `uplink_gbps`. Zero when within capacity.
double uplink_loss(double offered_gbps, double uplink_gbps) noexcept;

}  // namespace rootstress::anycast
