#include "anycast/deployment.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "obs/runtime.h"
#include "util/logging.h"
#include "util/rng.h"

namespace rootstress::anycast {

namespace {

/// Resolves the location/region of a spec, from the geo registry when the
/// spec does not carry explicit coordinates.
void resolve_location(SiteSpec& spec) {
  if (spec.location.has_value() && !spec.region.empty()) return;
  const auto loc = net::find_location(spec.code);
  if (!loc) {
    throw std::invalid_argument("unknown site code: " + spec.code);
  }
  if (!spec.location) spec.location = loc->point;
  if (spec.region.empty()) spec.region = loc->region;
}

/// The .nl TLD anycast service: two sites co-located with root letters
/// (the collateral-damage victims of Fig 15) plus two standalone sites.
std::vector<SiteSpec> nl_sites() {
  auto mk = [](const char* code, const char* facility) {
    SiteSpec s;
    s.code = code;
    s.servers = 2;
    s.capacity_qps = 200e3;
    s.buffer_packets = 220e3;
    s.facility = facility;
    s.peer_stubs = 2;
    return s;
  };
  // The two co-located sites sit beside tenants that absorb the whole
  // event (B-Root's unicast site; H-Root's backup), so the uplink stays
  // saturated for the full event windows as in Fig 15.
  return {mk("LAX", "LAX-US-DC"), mk("SAN", "SAN-US-DC"), mk("IAD", ""),
          mk("GRU", "")};
}

/// Deterministic CDN-style letter table for the scale family: pseudo-coded
/// sites with explicit coordinates sampled from the geo registry, so
/// resolve_location never consults the registry for them and codes stay
/// short enough for packed site keys. The leading global_fraction of each
/// service's sites announce globally; the rest are BGP-scoped.
std::vector<LetterConfig> synthetic_letter_table(const SyntheticDeployment& syn,
                                                 std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5ca1ab1e);
  const auto locations = net::all_locations();
  std::vector<LetterConfig> table;
  for (int s = 0; s < syn.services; ++s) {
    LetterConfig cfg;
    cfg.letter = static_cast<char>('A' + s);
    cfg.operator_name = "synthetic";
    cfg.attacked = true;
    cfg.rssac_reporting = false;
    cfg.default_policy = StressPolicy::absorber();
    cfg.reported_sites = syn.sites_per_service;
    cfg.reported_global = std::min(
        syn.sites_per_service,
        std::max(1, static_cast<int>(syn.global_fraction *
                                         syn.sites_per_service + 0.5)));
    cfg.reported_local = syn.sites_per_service - cfg.reported_global;
    for (int i = 0; i < syn.sites_per_service; ++i) {
      const net::Location& loc = locations[rng.below(locations.size())];
      SiteSpec spec;
      char code[8];
      std::snprintf(code, sizeof(code), "Z%c%04d", cfg.letter, i);
      spec.code = code;
      spec.global = i < cfg.reported_global;
      spec.capacity_qps = syn.site_capacity_qps;
      spec.buffer_packets = syn.site_capacity_qps * 1.2;
      spec.peer_stubs = syn.peer_stubs_per_site;
      spec.location = loc.point;
      spec.region = loc.region;
      cfg.sites.push_back(std::move(spec));
    }
    table.push_back(std::move(cfg));
  }
  return table;
}

}  // namespace

RootDeployment::RootDeployment(const Config& config) {
  util::Rng rng(config.seed);
  bgp::TopologyConfig topo_cfg = config.topology;
  topo_cfg.seed = config.seed ^ 0x70706f;
  topology_ = bgp::AsTopology::synthesize(topo_cfg);
  letters_ = config.synthetic.has_value()
                 ? synthetic_letter_table(*config.synthetic,
                                          config.seed ^ 0x1e77e5)
                 : root_letter_table(config.seed ^ 0x1e77e5);
  add_default_facilities(facilities_);

  const auto stubs = topology_.stub_indices();
  std::uint32_t next_asn = 64000;

  // Instantiate the sites of one service and wire them into the topology.
  auto build_service = [&](char letter, int letter_index,
                           std::vector<SiteSpec> specs,
                           const StressPolicy& policy,
                           bool primary_backup) -> ServiceInfo {
    ServiceInfo svc;
    svc.letter = letter;
    svc.letter_index = letter_index;
    std::vector<bgp::AnycastOrigin> origins;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      SiteSpec spec = std::move(specs[i]);
      resolve_location(spec);
      spec.capacity_qps *= config.capacity_scale;
      const int facility =
          spec.facility.empty()
              ? -1
              : facilities_.add(spec.facility,
                                config.default_facility_uplink_gbps);
      const net::Asn asn(next_asn++);
      const int host_as = topology_.add_edge_as(
          asn, spec.region, *spec.location,
          spec.hub ? 4 : (spec.global ? 3 : 1), rng);
      if (spec.hub) {
        // Hub metros buy transit from tier-1s directly and peer broadly
        // at the local IXP (AMS-IX-style): regional transit networks get
        // one-hop peer routes here, so displaced catchments gravitate to
        // the hub, as the paper observes for K-AMS (Fig 10).
        const auto tier1 = topology_.tier1_indices();
        for (int t = 0; t < 2 && !tier1.empty(); ++t) {
          topology_.add_transit(tier1[rng.below(tier1.size())], host_as);
        }
        for (const int t2 : topology_.tier2_in_region(spec.region)) {
          topology_.add_peering(host_as, t2);
        }
      }
      // IXP-style direct peerings with same-region stubs: these networks
      // keep routing to the site across partial withdrawals.
      int peered = 0;
      for (int attempt = 0; attempt < spec.peer_stubs * 8 && peered < spec.peer_stubs;
           ++attempt) {
        const int stub = stubs[rng.below(stubs.size())];
        if (topology_.info(stub).region == spec.region) {
          topology_.add_peering(host_as, stub);
          ++peered;
        }
      }
      const int site_id = static_cast<int>(sites_.size());
      const net::GeoPoint location = *spec.location;
      const bool global = spec.global;
      const StressPolicy site_policy = config.force_policy.has_value()
                                           ? *config.force_policy
                                           : spec.policy_override.value_or(policy);
      sites_.emplace_back(site_id, letter, std::move(spec), location, host_as,
                          facility, site_policy, rng);
      sites_.back().set_rrl_enabled(config.rrl_enabled);
      svc.site_ids.push_back(site_id);

      bgp::AnycastOrigin origin;
      origin.site_id = site_id;
      origin.host_as = asn;
      origin.local_only = !global;
      // H-Root's backup is announced only when the primary fails.
      origin.announced = !(primary_backup && i == 1);
      if (!origin.announced) {
        sites_.back().set_scope(SiteScope::kDown);
      } else if (origin.local_only) {
        sites_.back().set_scope(SiteScope::kLocalOnly);
      }
      origins.push_back(origin);
    }
    // Prefixes are registered after all services are built (routing_ is
    // created once the topology stops changing); stash origins for now.
    pending_origins_.push_back(std::move(origins));
    return svc;
  };

  for (std::size_t li = 0; li < letters_.size(); ++li) {
    LetterConfig& cfg = letters_[li];
    services_.push_back(build_service(cfg.letter, static_cast<int>(li),
                                      cfg.sites, cfg.default_policy,
                                      cfg.primary_backup));
  }
  if (config.include_nl && !config.synthetic.has_value()) {
    services_.push_back(build_service('N', -1, nl_sites(),
                                      StressPolicy::absorber(), false));
  }

  routing_ = std::make_unique<bgp::AnycastRouting>(topology_);
  for (std::size_t s = 0; s < services_.size(); ++s) {
    services_[s].prefix = routing_->register_prefix(
        std::string(1, services_[s].letter), std::move(pending_origins_[s]));
  }
  pending_origins_.clear();
  // Point the site_of() SoA mirror's unreachable entries at the sink lane
  // right past the last site: the fluid kernels aggregate branch-free.
  routing_->set_unrouted_slot(static_cast<std::int32_t>(sites_.size()));
  RS_LOG_INFO << "deployment: " << topology_.as_count() << " ASes, "
              << sites_.size() << " sites, " << services_.size()
              << " services";
}

const ServiceInfo& RootDeployment::service(char letter) const {
  for (const auto& svc : services_) {
    if (svc.letter == letter) return svc;
  }
  throw std::out_of_range(std::string("no such service: ") + letter);
}

std::optional<int> RootDeployment::find_site(char letter,
                                             std::string_view code) const {
  for (const auto& site : sites_) {
    if (site.letter() == letter && site.code() == code) return site.site_id();
  }
  return std::nullopt;
}

std::vector<bgp::RouteChange> RootDeployment::apply_scope(int site_id,
                                                          SiteScope scope,
                                                          net::SimTime now) {
  AnycastSite& s = site(site_id);
  if (!s.transition_scope(scope, now)) return {};
  const ServiceInfo& svc = service(s.letter());
  const bool announced = scope != SiteScope::kDown;
  const bool local_only = scope == SiteScope::kLocalOnly;
  obs::PhaseProfiler::Scope profile(
      obs_ != nullptr ? &obs_->profiler() : nullptr, "bgp-convergence");
  return routing_->set_origin_state(svc.prefix, site_id, announced,
                                    local_only, now);
}

std::vector<bgp::RouteChange> RootDeployment::apply_prepend(int site_id,
                                                            int prepend,
                                                            net::SimTime now) {
  const AnycastSite& s = site(site_id);
  const ServiceInfo& svc = service(s.letter());
  obs::PhaseProfiler::Scope profile(
      obs_ != nullptr ? &obs_->profiler() : nullptr, "bgp-convergence");
  return routing_->set_prepend(svc.prefix, site_id, prepend, now);
}

void RootDeployment::attach_obs(obs::Runtime* obs) {
  obs_ = obs;
  routing_->attach_obs(obs);
  for (auto& site : sites_) {
    SiteTelemetry telemetry;
    if (obs != nullptr) {
      telemetry.runtime = obs;
      const obs::Labels labels{{"letter", std::string(1, site.letter())}};
      auto& metrics = obs->metrics();
      telemetry.withdrawals = &metrics.counter("site.withdrawals", labels);
      telemetry.restores = &metrics.counter("site.restores", labels);
      telemetry.overload_onsets =
          &metrics.counter("site.overload_onsets", labels);
      telemetry.queue = make_queue_instruments(metrics, site.letter());
    }
    site.attach_obs(telemetry);
  }
}

}  // namespace rootstress::anycast
