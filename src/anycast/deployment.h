// The full 2015 Root DNS deployment: 13 letters, hundreds of sites, their
// host ASes in a synthesized topology, shared facilities, and (optionally)
// the .nl TLD anycast service used in the collateral-damage analysis.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "anycast/facility.h"
#include "anycast/letter.h"
#include "anycast/site.h"
#include "bgp/simulator.h"
#include "bgp/topology.h"

namespace rootstress::anycast {

/// One anycast service (a root letter, or .nl) mapped onto the shared
/// substrate.
struct ServiceInfo {
  char letter = '?';      ///< 'A'..'M'; 'N' for .nl
  int letter_index = -1;  ///< index into letters(), -1 for .nl
  int prefix = -1;        ///< routing prefix id
  std::vector<int> site_ids;  ///< deployment-global site ids
};

/// CDN-scale synthetic deployment family (scale benches and tests).
/// When `RootDeployment::Config::synthetic` is set, the 13-letter root
/// table is replaced by `services` synthetic anycast services whose sites
/// are generated deterministically from the deployment seed: pseudo-codes
/// ("ZA0017"-style, <= 7 chars so packed site keys stay on the fast path)
/// with explicit coordinates sampled from the geo registry, spread across
/// the same regions the topology synthesizer uses. RSSAC reporting is off
/// and `include_nl` is ignored for synthetic deployments.
struct SyntheticDeployment {
  int services = 1;            ///< service count; letters 'A', 'B', ...
  int sites_per_service = 32;
  /// Tiering: fraction of each service's sites announced globally; the
  /// rest are BGP-scoped local sites (NO_EXPORT analog).
  double global_fraction = 0.75;
  double site_capacity_qps = 500e3;
  /// IXP-style direct stub peerings per site (catchment stickiness).
  int peer_stubs_per_site = 2;
};

/// Builds and owns the simulated world: topology, letters, sites,
/// facilities, and per-service routing.
class RootDeployment {
 public:
  struct Config {
    std::uint64_t seed = 42;
    bgp::TopologyConfig topology{};
    bool include_nl = true;
    /// When set, build the CDN-style synthetic deployment instead of the
    /// root letter table (see SyntheticDeployment above).
    std::optional<SyntheticDeployment> synthetic;
    /// Default uplink for facilities referenced by sites but not in the
    /// default facility table.
    double default_facility_uplink_gbps = 50.0;
    /// Uniform multiplier on every site's capacity_qps — the "what if
    /// sites were provisioned Nx" axis of §5-style capacity sweeps.
    double capacity_scale = 1.0;
    /// When set, every site uses this stress policy (what-if studies),
    /// overriding letter defaults and per-site overrides.
    std::optional<StressPolicy> force_policy;
    /// Whether sites start with response rate limiting active. Reactive
    /// playbooks can flip it per site mid-run (enable_rrl / disable_rrl).
    bool rrl_enabled = true;
  };

  explicit RootDeployment(const Config& config);
  RootDeployment(const RootDeployment&) = delete;
  RootDeployment& operator=(const RootDeployment&) = delete;

  const bgp::AsTopology& topology() const noexcept { return topology_; }
  bgp::AnycastRouting& routing() noexcept { return *routing_; }
  const bgp::AnycastRouting& routing() const noexcept { return *routing_; }

  const std::vector<LetterConfig>& letters() const noexcept { return letters_; }
  const std::vector<ServiceInfo>& services() const noexcept { return services_; }
  /// Service by letter ('A'..'M', 'N' = .nl); throws std::out_of_range.
  const ServiceInfo& service(char letter) const;

  FacilityTable& facilities() noexcept { return facilities_; }
  const FacilityTable& facilities() const noexcept { return facilities_; }

  int site_count() const noexcept { return static_cast<int>(sites_.size()); }
  AnycastSite& site(int id) { return sites_[static_cast<std::size_t>(id)]; }
  const AnycastSite& site(int id) const {
    return sites_[static_cast<std::size_t>(id)];
  }

  /// Global site id for letter+code; nullopt if absent.
  std::optional<int> find_site(char letter, std::string_view code) const;

  /// Changes a site's announcement scope, keeping routing in sync.
  /// Returns the per-AS route changes the transition caused.
  std::vector<bgp::RouteChange> apply_scope(int site_id, SiteScope scope,
                                            net::SimTime now);

  /// Sets the AS-path prepend on a site's announcement (keeps routing in
  /// sync). Returns the per-AS route changes; empty when nothing moved.
  std::vector<bgp::RouteChange> apply_prepend(int site_id, int prepend,
                                              net::SimTime now);

  /// Attaches a telemetry runtime (nullable) to routing and every site
  /// (per-letter withdrawal/restore counters, shared queue instruments,
  /// RRL counters). apply_scope additionally profiles BGP reconvergence
  /// under the "bgp-convergence" phase.
  void attach_obs(obs::Runtime* obs);

 private:
  bgp::AsTopology topology_;
  std::vector<LetterConfig> letters_;
  FacilityTable facilities_;
  std::vector<AnycastSite> sites_;
  std::vector<ServiceInfo> services_;
  std::unique_ptr<bgp::AnycastRouting> routing_;
  obs::Runtime* obs_ = nullptr;
  /// Origin sets staged during construction, registered once the topology
  /// is final (cleared afterwards).
  std::vector<std::vector<bgp::AnycastOrigin>> pending_origins_;
};

}  // namespace rootstress::anycast
