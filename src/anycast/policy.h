// Withdraw-vs-absorb policy engine (§2.2).
//
// A site under stress either *withdraws* routes (shrinking its catchment,
// shifting traffic elsewhere — the "waterbed") or keeps serving as a
// *degraded absorber* (the "mattress"). The paper stresses these outcomes
// are often emergent: explicit operator choices mixed with implementation
// effects like BGP sessions failing when keepalives are lost on a
// congested ingress. SitePolicy models both paths.
#pragma once

#include <cstdint>
#include <limits>

#include "net/clock.h"
#include "util/rng.h"

namespace rootstress::anycast {

/// Per-site stress policy parameters.
struct StressPolicy {
  /// Overload ratio (offered/capacity) at which the operator explicitly
  /// withdraws the site. infinity = pure absorber (never withdraws).
  double withdraw_overload = std::numeric_limits<double>::infinity();

  /// Per-minute probability that the BGP session fails when ingress loss
  /// is total (scaled by the actual loss fraction): the *emergent*
  /// withdrawal path. 0 = keepalives always survive.
  double session_failure_per_minute = 0.0;

  /// After load falls below `recover_utilization`, how long until the
  /// route is re-announced (operator reaction / BGP backoff).
  net::SimTime recover_after = net::SimTime::from_minutes(20);
  double recover_utilization = 0.8;

  /// When true, "withdrawing" drops only the transit announcements and
  /// keeps the site reachable by its direct peers (BGP-scoped). This is
  /// what leaves clients "stuck" to an overloaded site (§3.4.2, Fig 11
  /// group 1) while the bulk of the catchment shifts elsewhere.
  bool partial_withdraw = false;

  /// Named presets used by the deployment builder.
  static StressPolicy absorber();        ///< never withdraws (K-style)
  static StressPolicy withdrawer();      ///< withdraws under overload (E-style)
  static StressPolicy fragile();         ///< absorber whose sessions fail
};

/// What the policy decided this step.
enum class PolicyAction : std::uint8_t {
  kNone,        ///< keep current state
  kWithdraw,    ///< take the route down
  kReannounce,  ///< bring the route back
};

/// Tracks one site's policy state across simulation steps.
class SitePolicyState {
 public:
  explicit SitePolicyState(StressPolicy policy) : policy_(policy) {}

  /// Advances one step. `utilization` is offered/capacity over the step,
  /// `loss` the ingress loss fraction, `step` the step length.
  PolicyAction step(double utilization, double loss, net::SimTime now,
                    net::SimTime step, util::Rng& rng);

  bool withdrawn() const noexcept { return withdrawn_; }
  const StressPolicy& policy() const noexcept { return policy_; }

  /// Cancels a withdrawal the engine refuses to apply (e.g. the letter's
  /// last announced global site must stay up as a degraded absorber —
  /// the paper's case 5). The site remains logically announced.
  void veto_withdrawal() noexcept {
    withdrawn_ = false;
    calm_since_ = net::SimTime(-1);
  }

 private:
  StressPolicy policy_;
  bool withdrawn_ = false;
  net::SimTime calm_since_{-1};  ///< when utilization last dropped; -1 unset
};

}  // namespace rootstress::anycast
