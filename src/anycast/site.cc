#include "anycast/site.h"

#include <algorithm>

#include "dns/wire.h"
#include "obs/runtime.h"
#include "util/logging.h"

namespace rootstress::anycast {

namespace {
const char* scope_name(SiteScope scope) noexcept {
  switch (scope) {
    case SiteScope::kGlobal: return "global";
    case SiteScope::kLocalOnly: return "local-only";
    case SiteScope::kDown: return "down";
  }
  return "?";
}
}  // namespace

AnycastSite::AnycastSite(int site_id, char letter, SiteSpec spec,
                         net::GeoPoint location, int host_as, int facility,
                         const StressPolicy& policy, util::Rng& rng)
    : site_id_(site_id),
      letter_(letter),
      spec_(std::move(spec)),
      location_(location),
      host_as_(host_as),
      facility_(facility),
      policy_state_(policy),
      jitter_rng_(rng.fork(static_cast<std::uint64_t>(site_id) + 0x51731)) {
  servers_.reserve(static_cast<std::size_t>(spec_.servers));
  for (int i = 1; i <= spec_.servers; ++i) {
    // Uneven load weights: one server in three ends up noticeably hotter,
    // matching the per-server asymmetry the paper observes (§3.5).
    const double weight = (i % 3 == 2) ? 1.4 : jitter_rng_.uniform(0.85, 1.1);
    servers_.emplace_back(letter_, spec_.code, i, weight);
  }
}

std::string AnycastSite::label() const {
  return std::string(1, letter_) + "-" + spec_.code;
}

void AnycastSite::begin_step(double attack_qps, double legit_qps,
                             double shared_loss, net::SimTime now) {
  attack_qps_ = attack_qps;
  legit_qps_ = legit_qps;
  QueueConfig qc;
  qc.capacity_qps = spec_.capacity_qps;
  qc.buffer_packets = spec_.buffer_packets;
  outcome_ = evaluate_queue_observed(attack_qps + legit_qps, qc,
                                     telemetry_.queue);
  arrival_loss_ =
      1.0 - (1.0 - outcome_.loss_fraction) * (1.0 - std::clamp(shared_loss, 0.0, 1.0));

  const bool now_overloaded = outcome_.utilization >= 1.0 || shared_loss > 0.0;
  if (now_overloaded && !overloaded_) {
    // Entering overload: in concentrate mode the balancer collapses
    // visible service onto one surviving server, picked per episode.
    concentrate_server_ =
        static_cast<int>(jitter_rng_.below(servers_.size()));
    if (telemetry_.overload_onsets != nullptr) {
      telemetry_.overload_onsets->add();
    }
    obs::emit_event(telemetry_.runtime, obs::TraceEventType::kQueueOverloadOnset,
                    now, letter_, label(), "ingress queue saturated",
                    outcome_.utilization);
  } else if (!now_overloaded && overloaded_) {
    obs::emit_event(telemetry_.runtime, obs::TraceEventType::kQueueOverloadEnd,
                    now, letter_, label(), "ingress queue drained",
                    outcome_.utilization);
  }
  overloaded_ = now_overloaded;
}

bool AnycastSite::transition_scope(SiteScope scope, net::SimTime now) {
  if (scope == scope_) return false;
  const SiteScope previous = scope_;
  scope_ = scope;
  // Ranks by service reach: any move toward kDown is a withdrawal, any
  // move away from it (or from local-only back to global) is a restore.
  const bool withdrawing =
      static_cast<int>(scope) > static_cast<int>(previous);
  const std::string detail = std::string(scope_name(previous)) + " -> " +
                             scope_name(scope);
  if (withdrawing) {
    RS_LOG_WARN << label() << " withdrawing (" << detail << ") at "
                << now.to_string();
    if (telemetry_.withdrawals != nullptr) telemetry_.withdrawals->add();
    obs::emit_event(telemetry_.runtime, obs::TraceEventType::kSiteWithdraw,
                    now, letter_, label(), detail,
                    static_cast<double>(site_id_));
  } else {
    RS_LOG_INFO << label() << " restoring (" << detail << ") at "
                << now.to_string();
    if (telemetry_.restores != nullptr) telemetry_.restores->add();
    obs::emit_event(telemetry_.runtime, obs::TraceEventType::kSiteRestore,
                    now, letter_, label(), detail,
                    static_cast<double>(site_id_));
  }
  return true;
}

void AnycastSite::attach_obs(const SiteTelemetry& telemetry) {
  telemetry_ = telemetry;
  for (auto& server : servers_) {
    server.dns().rrl().attach_obs(telemetry.runtime, letter_, label());
  }
}

void AnycastSite::set_rrl_enabled(bool on) noexcept {
  rrl_enabled_ = on;
  for (auto& server : servers_) {
    server.dns().rrl().set_enabled(on);
  }
}

void AnycastSite::scale_capacity(double factor) noexcept {
  if (factor <= 0.0) return;
  spec_.capacity_qps *= factor;
}

int AnycastSite::pick_server(net::Ipv4Addr source) const noexcept {
  return ecmp_pick(source, static_cast<int>(servers_.size()),
                   static_cast<std::uint64_t>(site_id_));
}

ProbeReply AnycastSite::probe(net::Ipv4Addr source,
                              const std::vector<std::uint8_t>& query_wire,
                              net::SimTime now, util::Rng& rng) {
  const auto query = dns::decode(query_wire);
  if (!query) return ProbeReply{};
  return probe(source, *query, now, rng);
}

ProbeReply AnycastSite::probe(net::Ipv4Addr source, const dns::Message& query,
                              net::SimTime now, util::Rng& rng) {
  ProbeReply reply;
  if (scope_ == SiteScope::kDown) return reply;

  int server_index = pick_server(source);
  double loss = arrival_loss_;
  double delay_ms = outcome_.queue_delay_ms;

  if (overloaded_) {
    if (spec_.stress_mode == ServerStressMode::kConcentrate) {
      // Only the surviving server answers; probes hashed elsewhere see
      // pure loss. The survivor keeps moderate latency: the balancer
      // steers its queue around the worst congestion.
      if (server_index != concentrate_server_) {
        return reply;
      }
      delay_ms = std::min(delay_ms, 120.0);
      loss = std::min(loss, 0.6);
    } else {
      // Shared congestion: per-server weights skew loss and delay.
      const double w =
          servers_[static_cast<std::size_t>(server_index)].load_weight();
      loss = std::clamp(loss * w, 0.0, 0.98);
      delay_ms *= w;
    }
  }

  if (rng.chance(loss)) return reply;

  auto response = servers_[static_cast<std::size_t>(server_index)].dns().answer(
      query, source, now);
  if (!response) return reply;

  reply.answered = true;
  reply.server = server_index + 1;
  reply.extra_delay_ms = delay_ms * rng.uniform(0.85, 1.1);
  reply.wire = dns::encode(*response);
  return reply;
}

}  // namespace rootstress::anycast
