#include "anycast/letter.h"

#include <stdexcept>
#include <unordered_set>

#include "net/geo.h"
#include "util/rng.h"

namespace rootstress::anycast {

namespace {

// Region mix for synthesized site placement: root letters concentrate in
// Europe and North America with a global tail.
struct RegionShare {
  const char* region;
  double weight;
};
constexpr RegionShare kSiteRegions[] = {
    {"EU", 0.35}, {"NA", 0.30}, {"AS", 0.14}, {"OC", 0.06},
    {"SA", 0.06}, {"ME", 0.04}, {"AF", 0.05},
};

/// Synthesizes `count` sites for a letter: unique airport codes first,
/// deterministic pseudo-codes afterwards (large letters exceed the
/// registry). `global_count` sites are global; the rest local.
std::vector<SiteSpec> synthesize_sites(int count, int global_count,
                                       double capacity, double buffer,
                                       util::Rng& rng) {
  std::vector<double> weights;
  for (const auto& rs : kSiteRegions) weights.push_back(rs.weight);

  std::vector<SiteSpec> sites;
  std::unordered_set<std::string> used;
  int synthetic = 0;
  while (static_cast<int>(sites.size()) < count) {
    const auto& region = kSiteRegions[rng.weighted(weights)];
    // Pick a random registry location in the region.
    const net::Location* pick = nullptr;
    std::size_t seen = 0;
    for (const auto& loc : net::all_locations()) {
      if (loc.region != region.region) continue;
      ++seen;
      if (rng.below(seen) == 0) pick = &loc;
    }
    if (pick == nullptr) continue;
    std::string code = pick->code;
    if (used.contains(code)) {
      // Exhausted metros get deterministic pseudo-codes ("Q" + 2 letters)
      // colocated near a real metro; the paper similarly observes more
      // sites than it can name for large letters.
      code = "Q";
      code += static_cast<char>('A' + (synthetic / 26) % 26);
      code += static_cast<char>('A' + synthetic % 26);
      ++synthetic;
      if (used.contains(code)) continue;
    }
    used.insert(code);
    SiteSpec spec;
    spec.code = code;
    spec.location = net::GeoPoint{pick->point.lat + rng.uniform(-1.0, 1.0),
                                  pick->point.lon + rng.uniform(-1.0, 1.0)};
    spec.region = region.region;
    spec.global = static_cast<int>(sites.size()) < global_count;
    spec.servers = 2 + static_cast<int>(rng.below(4));
    spec.capacity_qps = capacity * rng.uniform(0.7, 1.5);
    spec.buffer_packets = buffer * rng.uniform(0.7, 1.5);
    spec.peer_stubs = spec.global ? static_cast<int>(rng.below(4)) : 2;
    spec.stress_mode = rng.chance(0.5) ? ServerStressMode::kConcentrate
                                       : ServerStressMode::kShareCongestion;
    sites.push_back(std::move(spec));
  }
  return sites;
}

/// Builds a site from an explicit case-study entry.
SiteSpec site(std::string code, bool global, int servers, double capacity,
              double buffer, int peer_stubs, ServerStressMode mode,
              std::string facility = "", bool hub = false) {
  SiteSpec s;
  s.hub = hub;
  s.code = std::move(code);
  s.global = global;
  s.servers = servers;
  s.capacity_qps = capacity;
  s.buffer_packets = buffer;
  s.peer_stubs = peer_stubs;
  s.stress_mode = mode;
  s.facility = std::move(facility);
  return s;
}

constexpr auto kConc = ServerStressMode::kConcentrate;
constexpr auto kShare = ServerStressMode::kShareCongestion;

/// E-Root site list (Fig 6a codes). E is the paper's example of the
/// *withdraw* ("waterbed") response: hubs are under-provisioned relative
/// to their catchments and the letter's policy withdraws under overload.
std::vector<SiteSpec> e_root_sites() {
  std::vector<SiteSpec> s;
  // Hubs (global).
  s.push_back(site("AMS", true, 4, 320e3, 350e3, 8, kConc, "AMS-EU-DC", true));
  // FRA: absorber pinned in the shared Frankfurt facility; its event
  // load keeps the uplink saturated, which is what bleeds into D-FRA and
  // the co-located .nl-style tenants (§3.6).
  s.push_back(site("FRA", true, 4, 340e3, 350e3, 8, kShare, "FRA-EU-DC", true));
  s.back().policy_override = StressPolicy::absorber();
  s.push_back(site("LHR", true, 4, 300e3, 320e3, 6, kConc));
  s.push_back(site("ARC", true, 3, 280e3, 300e3, 2, kShare));
  s.push_back(site("CDG", true, 3, 260e3, 280e3, 4, kConc, "CDG-EU-DC"));
  s.push_back(site("VIE", true, 3, 250e3, 260e3, 3, kShare));
  s.push_back(site("QPG", true, 3, 240e3, 250e3, 2, kConc));
  s.push_back(site("ORD", true, 3, 260e3, 260e3, 3, kShare));
  s.push_back(site("KBP", true, 2, 200e3, 220e3, 2, kConc));
  s.push_back(site("ZRH", true, 2, 200e3, 210e3, 2, kShare));
  s.push_back(site("IAD", true, 3, 260e3, 260e3, 3, kConc));
  s.push_back(site("PAO", true, 3, 240e3, 250e3, 2, kShare));
  s.push_back(site("WAW", true, 2, 180e3, 200e3, 2, kConc));
  s.push_back(site("ATL", true, 2, 220e3, 230e3, 2, kShare));
  s.push_back(site("BER", true, 2, 180e3, 200e3, 2, kConc));
  s.push_back(site("SYD", true, 2, 180e3, 200e3, 2, kShare, "SYD-OC-DC"));
  s.back().policy_override = StressPolicy::absorber();
  s.push_back(site("SEA", true, 2, 200e3, 210e3, 2, kConc));
  // Tail (local / lightly observed).
  for (const char* code : {"NLV", "MIA", "NRT", "TRN", "AKL", "MAN", "BUR",
                           "LGA", "PER", "SNA", "LBA", "SIN", "DXB", "KGL",
                           "LAD"}) {
    s.push_back(site(code, false, 2, 150e3, 160e3, 2, kShare));
  }
  return s;
}

/// K-Root site list (Fig 6b codes). K is the paper's example of the
/// *absorb* ("mattress") response: AMS keeps serving with second-scale
/// bufferbloat, LHR/FRA shed transit but keep stuck peers.
std::vector<SiteSpec> k_root_sites() {
  std::vector<SiteSpec> s;
  // AMS: the committed degraded absorber -- stays announced through the
  // events, serving with second-scale bufferbloat (Fig 7).
  s.push_back(site("AMS", true, 6, 1500e3, 2500e3, 12, kShare, "", true));
  s.back().policy_override = StressPolicy::absorber();
  // LHR/FRA: well-connected (big catchments) but under-provisioned; they
  // shed transit under pressure and keep only stuck peers (Fig 11).
  s.push_back(site("LHR", true, 3, 150e3, 200e3, 10, kConc, "", true));
  s.push_back(site("FRA", true, 3, 260e3, 300e3, 8, kConc, "FRA-EU-DC", true));
  s.push_back(site("MIA", true, 3, 500e3, 520e3, 4, kShare));
  // Mid-tier European sites are BGP-scoped (K reported 18 local sites):
  // pinned catchments that neither wobble nor soak up displaced traffic.
  s.push_back(site("VIE", false, 3, 480e3, 500e3, 5, kShare));
  s.push_back(site("LED", false, 3, 450e3, 470e3, 5, kShare));
  // NRT: absorber whose servers share a congested ingress (Fig 12/13).
  s.push_back(site("NRT", true, 3, 320e3, 480e3, 4, kShare));
  s.back().policy_override = StressPolicy::absorber();
  s.push_back(site("MIL", false, 2, 380e3, 400e3, 5, kConc));
  s.push_back(site("ZRH", false, 2, 380e3, 400e3, 5, kShare));
  s.push_back(site("WAW", false, 2, 300e3, 330e3, 4, kConc));
  s.push_back(site("BNE", true, 2, 360e3, 380e3, 2, kShare));
  s.push_back(site("PRG", false, 2, 360e3, 380e3, 4, kConc));
  s.push_back(site("GVA", false, 2, 360e3, 380e3, 4, kShare));
  s.push_back(site("ATH", false, 2, 330e3, 350e3, 3, kConc));
  s.push_back(site("MKC", true, 2, 340e3, 350e3, 2, kShare));
  // Local tail (RIPE hosted sites are mostly BGP-scoped).
  for (const char* code : {"RIX", "THR", "BUD", "KAE", "BEG", "HEL", "PLX",
                           "OVB", "POZ", "ABO", "AVN", "BCN", "REY", "DOH",
                           "DEL", "RNO"}) {
    s.push_back(site(code, false, 2, 280e3, 300e3, 2, kShare));
  }
  return s;
}

/// D-Root sites. D was not attacked; FRA and SYD sit in facilities shared
/// with attacked letters and take collateral damage (§3.6, Fig 14).
std::vector<SiteSpec> d_root_sites(util::Rng& rng) {
  std::vector<SiteSpec> s;
  s.push_back(site("FRA", true, 3, 500e3, 520e3, 4, kShare, "FRA-EU-DC"));
  s.push_back(site("SYD", true, 3, 500e3, 520e3, 3, kShare, "SYD-OC-DC"));
  for (const char* code : {"AMS", "LHR", "IAD", "ORD", "NRT", "SIN", "GRU",
                           "JNB", "CDG", "WAW", "SEA", "YYZ", "HKG", "VIE",
                           "MAD", "DXB", "SCL", "MEX"}) {
    s.push_back(site(code, true, 3, 520e3 * rng.uniform(0.9, 1.3),
                     540e3, 2, kShare));
  }
  return s;
}

}  // namespace

std::vector<LetterConfig> root_letter_table(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<LetterConfig> table;

  auto add = [&table](LetterConfig cfg) { table.push_back(std::move(cfg)); };

  {  // A: Verisign, 5 global sites, high capacity, absorbed everything.
    LetterConfig a;
    a.letter = 'A';
    a.operator_name = "Verisign";
    a.reported_sites = 5;
    a.reported_global = 5;
    a.rssac_reporting = true;
    a.rssac_metering_loss = 0.0;
    a.probe_interval_s = 1800.0;  // Atlas probed A every 30 min at the time
    a.default_policy = StressPolicy::absorber();
    util::Rng r = rng.fork('A');
    a.sites = synthesize_sites(5, 5, 2500e3, 1000e3, r);
    add(std::move(a));
  }
  {  // B: USC/ISI, unicast single site (Los Angeles).
    LetterConfig b;
    b.letter = 'B';
    b.operator_name = "USC/ISI";
    b.unicast = true;
    b.reported_sites = 1;
    b.default_policy = StressPolicy::absorber();
    // Little RTT change under stress (paper §3.2): shallow buffers.
    b.sites = {site("LAX", true, 4, 140e3, 25e3, 2, kShare, "LAX-US-DC")};
    add(std::move(b));
  }
  {  // C: Cogent, 8 global sites.
    LetterConfig c;
    c.letter = 'C';
    c.operator_name = "Cogent";
    c.reported_sites = 8;
    c.reported_global = 8;
    // Sessions fail occasionally but recover slowly: C sees fewer flips
    // than E/H/K in Fig 8.
    StressPolicy policy = StressPolicy::fragile();
    policy.session_failure_per_minute = 0.02;
    policy.recover_after = net::SimTime::from_minutes(50);
    c.default_policy = policy;
    util::Rng r = rng.fork('C');
    c.sites = synthesize_sites(8, 8, 700e3, 750e3, r);
    add(std::move(c));
  }
  {  // D: U. Maryland; not attacked, collateral only.
    LetterConfig d;
    d.letter = 'D';
    d.operator_name = "U. Maryland";
    d.reported_sites = 87;
    d.reported_global = 18;
    d.reported_local = 69;
    d.attacked = false;
    d.default_policy = StressPolicy::absorber();
    util::Rng r = rng.fork('D');
    d.sites = d_root_sites(r);
    add(std::move(d));
  }
  {  // E: NASA; the withdraw/waterbed case study.
    LetterConfig e;
    e.letter = 'E';
    e.operator_name = "NASA";
    e.reported_sites = 12;
    e.reported_global = 1;
    e.reported_local = 11;
    e.default_policy = StressPolicy::withdrawer();
    e.sites = e_root_sites();
    add(std::move(e));
  }
  {  // F: ISC, many sites, mild impact.
    LetterConfig f;
    f.letter = 'F';
    f.operator_name = "ISC";
    f.reported_sites = 59;
    f.reported_global = 5;
    f.reported_local = 54;
    StressPolicy policy = StressPolicy::fragile();
    policy.session_failure_per_minute = 0.02;
    f.default_policy = policy;
    util::Rng r = rng.fork('F');
    f.sites = synthesize_sites(52, 5, 1100e3, 1150e3, r);
    add(std::move(f));
  }
  {  // G: U.S. DoD, 6 sites; visible RTT shifts under stress.
    LetterConfig g;
    g.letter = 'G';
    g.operator_name = "U.S. DoD";
    g.reported_sites = 6;
    g.reported_global = 6;
    StressPolicy policy = StressPolicy::withdrawer();
    policy.withdraw_overload = 3.5;
    g.default_policy = policy;
    util::Rng r = rng.fork('G');
    g.sites = synthesize_sites(6, 6, 500e3, 540e3, r);
    add(std::move(g));
  }
  {  // H: ARL, primary/backup (east coast primary, San Diego backup).
    LetterConfig h;
    h.letter = 'H';
    h.operator_name = "ARL";
    h.primary_backup = true;
    h.reported_sites = 2;
    h.rssac_reporting = true;
    h.rssac_metering_loss = 0.5;
    h.unique_counter_cap = 40e6;
    h.default_policy = StressPolicy::fragile();
    h.sites = {site("BWI", true, 3, 420e3, 460e3, 3, kShare),
               site("SAN", true, 3, 420e3, 460e3, 2, kShare, "SAN-US-DC")};
    add(std::move(h));
  }
  {  // I: Netnod, 49 global sites.
    LetterConfig i;
    i.letter = 'I';
    i.operator_name = "Netnod";
    i.reported_sites = 49;
    i.reported_global = 48;
    StressPolicy policy = StressPolicy::fragile();
    policy.session_failure_per_minute = 0.02;
    i.default_policy = policy;
    util::Rng r = rng.fork('I');
    i.sites = synthesize_sites(48, 48, 420e3, 450e3, r);
    add(std::move(i));
  }
  {  // J: Verisign, 98 reported sites; small loss.
    LetterConfig j;
    j.letter = 'J';
    j.operator_name = "Verisign";
    j.reported_sites = 98;
    j.reported_global = 66;
    j.reported_local = 32;
    j.rssac_reporting = true;
    j.rssac_metering_loss = 0.45;
    j.unique_counter_cap = 800e6;
    j.default_policy = StressPolicy::absorber();
    util::Rng r = rng.fork('J');
    j.sites = synthesize_sites(69, 50, 480e3, 500e3, r);
    add(std::move(j));
  }
  {  // K: RIPE; the absorb/mattress case study.
    LetterConfig k;
    k.letter = 'K';
    k.operator_name = "RIPE";
    k.reported_sites = 33;
    k.reported_global = 15;
    k.reported_local = 18;
    k.rssac_reporting = true;
    k.rssac_metering_loss = 0.5;
    k.unique_counter_cap = 45e6;
    StressPolicy policy = StressPolicy::fragile();
    policy.session_failure_per_minute = 0.10;
    policy.partial_withdraw = true;  // stuck peers remain (Fig 11)
    policy.recover_after = net::SimTime::from_minutes(30);
    k.default_policy = policy;
    k.sites = k_root_sites();
    add(std::move(k));
  }
  {  // L: ICANN, very many sites; not attacked.
    LetterConfig l;
    l.letter = 'L';
    l.operator_name = "ICANN";
    l.reported_sites = 144;
    l.reported_global = 144;
    l.attacked = false;
    l.rssac_reporting = true;
    l.unique_counter_cap = 40e6;
    l.default_policy = StressPolicy::absorber();
    util::Rng r = rng.fork('L');
    l.sites = synthesize_sites(113, 113, 600e3, 620e3, r);
    add(std::move(l));
  }
  {  // M: WIDE, 7 sites; not attacked.
    LetterConfig m;
    m.letter = 'M';
    m.operator_name = "WIDE";
    m.reported_sites = 7;
    m.reported_global = 6;
    m.reported_local = 1;
    m.attacked = false;
    m.default_policy = StressPolicy::absorber();
    util::Rng r = rng.fork('M');
    m.sites = synthesize_sites(6, 6, 900e3, 920e3, r);
    add(std::move(m));
  }
  return table;
}

const LetterConfig& find_letter(const std::vector<LetterConfig>& table,
                                char letter) {
  for (const auto& cfg : table) {
    if (cfg.letter == letter) return cfg;
  }
  throw std::out_of_range(std::string("no such letter: ") + letter);
}

}  // namespace rootstress::anycast
