#include "anycast/defense.h"

#include <algorithm>
#include <numeric>

#include "obs/runtime.h"

namespace rootstress::anycast {

std::string to_string(AdvisedAction action) {
  switch (action) {
    case AdvisedAction::kAbsorb: return "absorb";
    case AdvisedAction::kWithdraw: return "withdraw";
    case AdvisedAction::kPartialWithdraw: return "partial-withdraw";
    case AdvisedAction::kNoAction: return "no-action";
  }
  return "?";
}

std::vector<SiteAdvice> advise(std::span<const double> capacity,
                               std::span<const double> offered) {
  const std::size_t n = std::min(capacity.size(), offered.size());
  std::vector<SiteAdvice> advice(n);
  double total_headroom = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    advice[i].site_index = static_cast<int>(i);
    advice[i].overload = capacity[i] > 0.0 ? offered[i] / capacity[i] : 0.0;
    total_headroom += std::max(0.0, capacity[i] - offered[i]);
  }

  // Most-overloaded sites get first claim on the deployment's headroom.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return advice[a].overload > advice[b].overload;
  });

  for (const std::size_t i : order) {
    SiteAdvice& a = advice[i];
    if (a.overload <= 1.0) {
      a.action = AdvisedAction::kNoAction;
      a.rationale = "within capacity";
      continue;
    }
    if (offered[i] <= total_headroom) {
      a.action = AdvisedAction::kWithdraw;
      a.rationale = "others have headroom for this catchment";
      total_headroom -= offered[i];
      continue;
    }
    // Not fully absorbable elsewhere. If a meaningful slice could still
    // move (headroom for more than half the catchment), shed transit and
    // keep the local peers; otherwise contain the damage.
    if (total_headroom > 0.5 * offered[i]) {
      a.action = AdvisedAction::kPartialWithdraw;
      a.rationale = "partial headroom elsewhere; keep direct peers";
      total_headroom = std::max(0.0, total_headroom - 0.5 * offered[i]);
    } else {
      a.action = AdvisedAction::kAbsorb;
      a.rationale = "no headroom elsewhere; protect other sites (case 5)";
    }
  }
  return advice;
}

std::vector<SiteAdvice> advise_observed(std::span<const double> capacity,
                                        std::span<const double> offered,
                                        obs::Runtime* obs, char letter) {
  std::vector<SiteAdvice> advice = advise(capacity, offered);
  if (obs == nullptr) return advice;
  for (const auto& a : advice) {
    if (a.action == AdvisedAction::kNoAction) continue;
    obs->metrics()
        .counter("defense.advice", {{"letter", std::string(1, letter)},
                                    {"action", to_string(a.action)}})
        .add();
  }
  return advice;
}

}  // namespace rootstress::anycast
