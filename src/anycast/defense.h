// Defense advisor: per-site withdraw/absorb recommendations.
//
// Applies the §2.2 reasoning to a concrete load snapshot: a site should
// withdraw only when the rest of the deployment has spare capacity to
// take on its whole catchment (attack included); otherwise it serves
// better as a degraded absorber containing the damage. The paper notes
// operators cannot compute this live (attack volumes and locations are
// unknown to them) — the advisor exists to study what optimal policies
// would have done, and as the building block for the "better strategies"
// the paper calls future work.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace rootstress::obs {
class Runtime;
}  // namespace rootstress::obs

namespace rootstress::anycast {

enum class AdvisedAction {
  kAbsorb,           ///< stay announced, eat the overload
  kWithdraw,         ///< shed the catchment; others can take it
  kPartialWithdraw,  ///< shed transit, keep direct peers
  kNoAction,         ///< not overloaded
};

std::string to_string(AdvisedAction action);

/// Advice for one site.
struct SiteAdvice {
  int site_index = -1;
  AdvisedAction action = AdvisedAction::kNoAction;
  double overload = 0.0;  ///< offered / capacity
  std::string rationale;
};

/// Computes advice for every site given per-site capacities and offered
/// loads (same length). Withdrawal is advised only while the *remaining*
/// announced sites have enough aggregate headroom to absorb the shed
/// load; sites are considered in order of decreasing overload.
std::vector<SiteAdvice> advise(std::span<const double> capacity,
                               std::span<const double> offered);

/// advise() plus telemetry: each recommendation increments the
/// "defense.advice"{letter,action} counter. `obs` may be null (then
/// identical to advise()). Activation trace events are emitted by the
/// engine when a recommendation actually changes a site's scope, so the
/// trace records decisions, not per-step advice repeats.
std::vector<SiteAdvice> advise_observed(std::span<const double> capacity,
                                        std::span<const double> offered,
                                        obs::Runtime* obs, char letter);

}  // namespace rootstress::anycast
