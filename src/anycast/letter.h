// Root letter configuration (Table 2).
//
// Thirteen services, one per letter, with the architectures the paper
// reports: site counts (global/local split), B unicast, H primary/backup,
// which letters were attacked (D, L, M were not), which provided RSSAC-002
// data (A, H, J, K, L), and Atlas probing cadence (A was probed every 30
// minutes at event time, the rest every 4 minutes).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "anycast/policy.h"
#include "net/geo.h"

namespace rootstress::anycast {

/// How a site's servers degrade when the site is stressed (§3.5).
enum class ServerStressMode {
  /// The load balancer concentrates surviving service on one server; the
  /// others vanish from probes (K-FRA behaviour, Fig 12 top).
  kConcentrate,
  /// All servers share a congested ingress equally; probes reach all of
  /// them sporadically and slowly (K-NRT behaviour, Fig 12 bottom).
  kShareCongestion,
};

/// Blueprint for one site of a letter.
struct SiteSpec {
  std::string code;        ///< airport code, e.g. "AMS"
  bool global = true;      ///< false = BGP-scoped local site
  int servers = 3;         ///< physical servers behind the load balancer
  double capacity_qps = 500e3;
  double buffer_packets = 600e3;  ///< ingress buffering (bufferbloat depth)
  std::string facility;    ///< co-location facility key, "" = dedicated
  /// Stub ASes directly peered with the site's host AS (IXP-style); these
  /// networks stay routed to the site across partial withdrawals.
  int peer_stubs = 0;
  /// Hub sites (IXP-dense metros like AMS) attach to tier-1 transit as
  /// well, which makes them the gravitational center for displaced
  /// catchments -- the paper's K-AMS effect (Fig 10).
  bool hub = false;
  ServerStressMode stress_mode = ServerStressMode::kShareCongestion;
  /// Coordinates/region; when unset the deployment resolves them from the
  /// geo registry by airport code (synthesized pseudo-codes set them).
  std::optional<net::GeoPoint> location;
  std::string region;
  /// Per-site stress policy; unset = the letter's default. K-AMS, for
  /// example, is a committed absorber inside an otherwise fragile letter.
  std::optional<StressPolicy> policy_override;
};

/// How a letter's sites respond to stress (per-letter default; individual
/// sites may override via SiteSpec in future extensions).
struct LetterConfig {
  char letter = '?';
  std::string operator_name;
  bool unicast = false;          ///< B-Root at event time
  bool primary_backup = false;   ///< H-Root: backup announced only on failure
  int reported_sites = 0;        ///< Table 2 "reported"
  int reported_global = 0;
  int reported_local = 0;
  bool attacked = true;          ///< false for D, L, M
  bool rssac_reporting = false;  ///< true for A, H, J, K, L
  /// Fraction of received event traffic the letter's RSSAC metering
  /// misses when overloaded (the under-reporting the paper corrects for).
  double rssac_metering_loss = 0.0;
  /// Capacity of the letter's distinct-source counter (H/K/L saturate
  /// around 40M in the paper's Table 3).
  double unique_counter_cap = 1e18;
  double probe_interval_s = 240.0;  ///< Atlas cadence (A: 1800)
  StressPolicy default_policy;
  std::vector<SiteSpec> sites;
};

/// Reference letter table: the 13 root letters with paper-reported
/// architecture, event-time behaviour knobs, and site lists. The E-, K-,
/// and D-Root site lists use the airport codes from the paper's figures;
/// other letters' sites are synthesized deterministically from `seed`
/// over the geo registry.
std::vector<LetterConfig> root_letter_table(std::uint64_t seed);

/// Finds a letter in a table; throws std::out_of_range if absent.
const LetterConfig& find_letter(const std::vector<LetterConfig>& table,
                                char letter);

}  // namespace rootstress::anycast
