#include "anycast/facility.h"

#include "anycast/queue_model.h"

namespace rootstress::anycast {

int FacilityTable::add(const std::string& key, double uplink_gbps) {
  if (auto existing = find(key)) return *existing;
  facilities_.push_back(Facility{key, uplink_gbps});
  step_load_gbps_.push_back(0.0);
  return static_cast<int>(facilities_.size()) - 1;
}

std::optional<int> FacilityTable::find(const std::string& key) const {
  for (std::size_t i = 0; i < facilities_.size(); ++i) {
    if (facilities_[i].key == key) return static_cast<int>(i);
  }
  return std::nullopt;
}

void FacilityTable::begin_step() {
  for (auto& load : step_load_gbps_) load = 0.0;
}

void FacilityTable::add_load(int index, double gbps) {
  step_load_gbps_[static_cast<std::size_t>(index)] += gbps;
}

double FacilityTable::shared_loss(int index) const {
  const auto i = static_cast<std::size_t>(index);
  return uplink_loss(step_load_gbps_[i], facilities_[i].uplink_gbps);
}

void add_default_facilities(FacilityTable& table) {
  table.add("FRA-EU-DC", 1.0);
  table.add("AMS-EU-DC", 0.60);
  table.add("CDG-EU-DC", 0.40);
  table.add("SYD-OC-DC", 0.12);
  table.add("LAX-US-DC", 0.35);
  table.add("SAN-US-DC", 0.42);
}

}  // namespace rootstress::anycast
