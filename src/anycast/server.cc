#include "anycast/server.h"

namespace rootstress::anycast {

SiteServer::SiteServer(char letter, const std::string& site_code, int index,
                       double load_weight)
    : dns_(letter, site_code, index), load_weight_(load_weight) {}

}  // namespace rootstress::anycast
