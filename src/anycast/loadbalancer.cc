#include "anycast/loadbalancer.h"

#include "util/rng.h"

namespace rootstress::anycast {

int ecmp_pick(net::Ipv4Addr source, int server_count,
              std::uint64_t salt) noexcept {
  if (server_count <= 1) return 0;
  const std::uint64_t h = util::mix64(source.value() ^ (salt << 32));
  return static_cast<int>(h % static_cast<std::uint64_t>(server_count));
}

}  // namespace rootstress::anycast
