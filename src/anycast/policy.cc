#include "anycast/policy.h"

namespace rootstress::anycast {

StressPolicy StressPolicy::absorber() {
  StressPolicy p;
  p.withdraw_overload = std::numeric_limits<double>::infinity();
  p.session_failure_per_minute = 0.0;
  return p;
}

StressPolicy StressPolicy::withdrawer() {
  StressPolicy p;
  p.withdraw_overload = 2.0;
  p.session_failure_per_minute = 0.05;
  p.recover_after = net::SimTime::from_minutes(25);
  return p;
}

StressPolicy StressPolicy::fragile() {
  StressPolicy p;
  p.withdraw_overload = std::numeric_limits<double>::infinity();
  p.session_failure_per_minute = 0.08;
  p.recover_after = net::SimTime::from_minutes(15);
  return p;
}

PolicyAction SitePolicyState::step(double utilization, double loss,
                                   net::SimTime now, net::SimTime step,
                                   util::Rng& rng) {
  if (withdrawn_) {
    // Track calm time; re-announce after the configured cool-down. A
    // withdrawn site receives no traffic, so calm is judged by wall time
    // since withdrawal (the operator watches the attack subside globally).
    if (calm_since_.ms < 0) calm_since_ = now;
    if (now - calm_since_ >= policy_.recover_after) {
      withdrawn_ = false;
      calm_since_ = net::SimTime(-1);
      return PolicyAction::kReannounce;
    }
    return PolicyAction::kNone;
  }

  if (utilization >= policy_.withdraw_overload) {
    withdrawn_ = true;
    calm_since_ = net::SimTime(-1);
    return PolicyAction::kWithdraw;
  }
  if (loss > 0.0 && policy_.session_failure_per_minute > 0.0) {
    const double minutes = step.seconds() / 60.0;
    const double p = policy_.session_failure_per_minute * loss * minutes;
    if (rng.chance(p)) {
      withdrawn_ = true;
      calm_since_ = net::SimTime(-1);
      return PolicyAction::kWithdraw;
    }
  }
  if (utilization < policy_.recover_utilization) {
    calm_since_ = now;
  }
  return PolicyAction::kNone;
}

}  // namespace rootstress::anycast
