// A physical server within an anycast site.
//
// Thin wrapper binding a dns::RootServer (protocol behaviour) to the
// load-share weight the site's balancer gives it. Per-server weights are
// deliberately uneven: the paper observes that within one site some
// servers suffer disproportionately under stress (§3.5, K-NRT-S2).
#pragma once

#include <memory>

#include "dns/server.h"

namespace rootstress::anycast {

/// One server behind a site load balancer.
class SiteServer {
 public:
  /// `load_weight` scales how much of the site's stress this server
  /// feels (1.0 = its fair share).
  SiteServer(char letter, const std::string& site_code, int index,
             double load_weight);

  dns::RootServer& dns() noexcept { return dns_; }
  const dns::RootServer& dns() const noexcept { return dns_; }

  int index() const noexcept { return dns_.server_index(); }
  double load_weight() const noexcept { return load_weight_; }

 private:
  dns::RootServer dns_;
  double load_weight_;
};

}  // namespace rootstress::anycast
