#include "net/ipv4.h"

#include <charconv>

namespace rootstress::net {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned v = 0;
    auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc() || v > 255 || next == p) return std::nullopt;
    // Reject leading zeros like "01" (ambiguous octal in classic tools).
    if (next - p > 1 && *p == '0') return std::nullopt;
    value = (value << 8) | v;
    p = next;
    if (octet < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr(value);
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value_ >> shift) & 0xff);
    if (shift != 0) out += '.';
  }
  return out;
}

std::optional<Endpoint> Endpoint::parse(std::string_view text) noexcept {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, colon));
  if (!addr) return std::nullopt;
  const auto port_text = text.substr(colon + 1);
  if (port_text.empty()) return std::nullopt;
  unsigned port = 0;
  auto [next, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc() || next != port_text.data() + port_text.size() ||
      port > 65535) {
    return std::nullopt;
  }
  if (port_text.size() > 1 && port_text.front() == '0') return std::nullopt;
  return Endpoint(*addr, static_cast<std::uint16_t>(port));
}

std::string Endpoint::to_string() const {
  return addr.to_string() + ":" + std::to_string(port);
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  int len = -1;
  auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc() || next != len_text.data() + len_text.size()) {
    return std::nullopt;
  }
  if (len < 0 || len > 32) return std::nullopt;
  return Prefix(*addr, len);
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

}  // namespace rootstress::net
