// Autonomous-system numbers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace rootstress::net {

/// A BGP autonomous-system number (strong typedef to avoid mixing with
/// other integer ids).
struct Asn {
  std::uint32_t value = 0;

  constexpr Asn() noexcept = default;
  constexpr explicit Asn(std::uint32_t v) noexcept : value(v) {}

  friend constexpr auto operator<=>(Asn, Asn) noexcept = default;
};

}  // namespace rootstress::net

template <>
struct std::hash<rootstress::net::Asn> {
  std::size_t operator()(rootstress::net::Asn a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};
