// Simulated time.
//
// All simulation time is integer milliseconds since the scenario epoch
// (2015-11-30T00:00:00 UTC for the event scenarios). Using a dedicated
// vocabulary type keeps wall-clock time out of the simulator entirely.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace rootstress::net {

/// Milliseconds since the scenario epoch.
struct SimTime {
  std::int64_t ms = 0;

  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(std::int64_t milliseconds) noexcept : ms(milliseconds) {}

  static constexpr SimTime from_seconds(double s) noexcept {
    return SimTime(static_cast<std::int64_t>(s * 1000.0));
  }
  static constexpr SimTime from_minutes(double m) noexcept {
    return from_seconds(m * 60.0);
  }
  static constexpr SimTime from_hours(double h) noexcept {
    return from_seconds(h * 3600.0);
  }

  constexpr double seconds() const noexcept { return static_cast<double>(ms) / 1000.0; }
  constexpr double minutes() const noexcept { return seconds() / 60.0; }
  constexpr double hours() const noexcept { return seconds() / 3600.0; }

  /// "DdHH:MM:SS" rendering for logs (relative to scenario epoch).
  std::string to_string() const;

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime(a.ms + b.ms);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime(a.ms - b.ms);
  }
};

/// An interval [begin, end).
struct SimInterval {
  SimTime begin;
  SimTime end;

  constexpr bool contains(SimTime t) const noexcept {
    return begin <= t && t < end;
  }
  constexpr SimTime duration() const noexcept { return end - begin; }

  friend constexpr bool operator==(SimInterval, SimInterval) noexcept = default;
};

}  // namespace rootstress::net
