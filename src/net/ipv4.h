// IPv4 addresses and CIDR prefixes.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rootstress::net {

/// An IPv4 address as a host-order 32-bit value.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const noexcept { return value_; }

  /// Parses dotted-quad notation ("192.0.2.1"); nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text) noexcept;

  /// Dotted-quad string.
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A UDP/TCP endpoint: IPv4 address + port. The wire-I/O layer (netio/)
/// uses this for listen/target addresses; `parse` accepts the
/// "host:port" strings the CLI flags take.
struct Endpoint {
  Ipv4Addr addr{};
  std::uint16_t port = 0;

  constexpr Endpoint() noexcept = default;
  constexpr Endpoint(Ipv4Addr a, std::uint16_t p) noexcept
      : addr(a), port(p) {}

  /// Parses "a.b.c.d:port". The port is required, must be decimal with no
  /// leading zeros (matching Ipv4Addr::parse strictness), and must fit in
  /// 16 bits; nullopt on any malformed input.
  static std::optional<Endpoint> parse(std::string_view text) noexcept;

  /// "a.b.c.d:port".
  std::string to_string() const;

  friend constexpr auto operator<=>(const Endpoint&,
                                    const Endpoint&) noexcept = default;
};

/// A CIDR prefix (address + length).
class Prefix {
 public:
  constexpr Prefix() noexcept = default;
  /// Canonicalizes: host bits below the prefix length are zeroed.
  constexpr Prefix(Ipv4Addr addr, int length) noexcept
      : length_(length < 0 ? 0 : (length > 32 ? 32 : length)),
        addr_(Ipv4Addr(addr.value() & mask_for(length_))) {}

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text) noexcept;

  constexpr Ipv4Addr address() const noexcept { return addr_; }
  constexpr int length() const noexcept { return length_; }

  /// True if `addr` falls inside this prefix.
  constexpr bool contains(Ipv4Addr addr) const noexcept {
    return (addr.value() & mask_for(length_)) == addr_.value();
  }

  /// True if `other` is fully covered by this prefix.
  constexpr bool covers(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.addr_);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept = default;

 private:
  static constexpr std::uint32_t mask_for(int length) noexcept {
    return length == 0 ? 0u : (~0u << (32 - length));
  }
  int length_ = 0;
  Ipv4Addr addr_{};
};

}  // namespace rootstress::net
