#include "net/geo.h"

#include <cmath>
#include <numbers>
#include <vector>

namespace rootstress::net {

double distance_km(GeoPoint a, GeoPoint b) noexcept {
  constexpr double kEarthRadiusKm = 6371.0;
  const double to_rad = std::numbers::pi / 180.0;
  const double dlat = (b.lat - a.lat) * to_rad;
  const double dlon = (b.lon - a.lon) * to_rad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h =
      s1 * s1 + std::cos(a.lat * to_rad) * std::cos(b.lat * to_rad) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double base_rtt_ms(GeoPoint a, GeoPoint b) noexcept {
  constexpr double kFiberKmPerMs = 200.0;  // ~2/3 c
  constexpr double kPathStretch = 1.4;     // routes are not great circles
  constexpr double kEdgeMs = 3.0;          // first/last mile + processing
  const double one_way_ms = distance_km(a, b) * kPathStretch / kFiberKmPerMs;
  return 2.0 * one_way_ms + kEdgeMs;
}

namespace {
// A curated world airport set. Includes every site code the paper's
// figures name (E-, K-, D-Root case studies) plus enough global coverage
// to synthesize the other letters' deployments and the VP population.
const std::vector<Location>& locations() {
  static const std::vector<Location> kLocations = {
      // Europe
      {"AMS", {52.31, 4.76}, "EU"},    {"FRA", {50.03, 8.57}, "EU"},
      {"LHR", {51.47, -0.45}, "EU"},   {"CDG", {49.01, 2.55}, "EU"},
      {"VIE", {48.11, 16.57}, "EU"},   {"ZRH", {47.46, 8.55}, "EU"},
      {"WAW", {52.17, 20.97}, "EU"},   {"BER", {52.36, 13.50}, "EU"},
      {"KBP", {50.34, 30.89}, "EU"},   {"NLV", {47.06, 31.92}, "EU"},
      {"TRN", {45.20, 7.65}, "EU"},    {"MAN", {53.35, -2.28}, "EU"},
      {"LBA", {53.87, -1.66}, "EU"},   {"LED", {59.80, 30.26}, "EU"},
      {"MIL", {45.45, 9.28}, "EU"},    {"PRG", {50.10, 14.26}, "EU"},
      {"GVA", {46.24, 6.11}, "EU"},    {"ATH", {37.94, 23.94}, "EU"},
      {"RIX", {56.92, 23.97}, "EU"},   {"BUD", {47.44, 19.26}, "EU"},
      {"BEG", {44.82, 20.29}, "EU"},   {"HEL", {60.32, 24.96}, "EU"},
      {"POZ", {52.42, 16.83}, "EU"},   {"AVN", {43.90, 4.90}, "EU"},
      {"BCN", {41.30, 2.08}, "EU"},    {"REY", {64.13, -21.94}, "EU"},
      {"MAD", {40.49, -3.57}, "EU"},   {"DUB", {53.43, -6.25}, "EU"},
      {"OSL", {60.19, 11.10}, "EU"},   {"ARN", {59.65, 17.92}, "EU"},
      {"CPH", {55.62, 12.65}, "EU"},   {"BRU", {50.90, 4.48}, "EU"},
      {"LIS", {38.77, -9.13}, "EU"},   {"FCO", {41.80, 12.24}, "EU"},
      {"MUC", {48.35, 11.79}, "EU"},   {"SOF", {42.70, 23.41}, "EU"},
      {"OTP", {44.57, 26.09}, "EU"},   {"IST", {41.26, 28.74}, "EU"},
      {"KAE", {62.17, 25.67}, "EU"},   // Nordic K-Root host (paper: K-KAE)
      {"ABO", {60.51, 22.26}, "EU"},   // Turku/Åbo (paper: K-ABO)
      {"PLX", {50.35, 80.23}, "EU"},   // Semey; RIPE hosted-K in Kazakhstan
      {"OVB", {55.01, 82.65}, "EU"},   // Novosibirsk
      {"MOW", {55.75, 37.62}, "EU"},
      // North America
      {"IAD", {38.95, -77.45}, "NA"},  {"ORD", {41.97, -87.90}, "NA"},
      {"ATL", {33.64, -84.43}, "NA"},  {"MIA", {25.79, -80.29}, "NA"},
      {"SEA", {47.45, -122.30}, "NA"}, {"PAO", {37.46, -122.11}, "NA"},
      {"BUR", {34.20, -118.36}, "NA"}, {"LGA", {40.78, -73.87}, "NA"},
      {"SNA", {33.68, -117.87}, "NA"}, {"LAX", {33.94, -118.41}, "NA"},
      {"JFK", {40.64, -73.78}, "NA"},  {"SJC", {37.36, -121.93}, "NA"},
      {"DFW", {32.90, -97.04}, "NA"},  {"DEN", {39.86, -104.67}, "NA"},
      {"MKC", {39.12, -94.59}, "NA"},  {"RNO", {39.50, -119.77}, "NA"},
      {"SAN", {32.73, -117.19}, "NA"}, {"BWI", {39.18, -76.67}, "NA"},
      {"YYZ", {43.68, -79.63}, "NA"},  {"YVR", {49.19, -123.18}, "NA"},
      {"MEX", {19.44, -99.07}, "NA"},  {"PHX", {33.43, -112.01}, "NA"},
      {"BOS", {42.36, -71.01}, "NA"},  {"MSP", {44.88, -93.22}, "NA"},
      // South America
      {"GRU", {-23.44, -46.47}, "SA"}, {"EZE", {-34.82, -58.54}, "SA"},
      {"SCL", {-33.39, -70.79}, "SA"}, {"BOG", {4.70, -74.15}, "SA"},
      {"LIM", {-12.02, -77.11}, "SA"},
      // Asia
      {"NRT", {35.76, 140.39}, "AS"},  {"HND", {35.55, 139.78}, "AS"},
      {"HKG", {22.31, 113.91}, "AS"},  {"SIN", {1.36, 103.99}, "AS"},
      {"QPG", {1.36, 103.91}, "AS"},   {"ICN", {37.46, 126.44}, "AS"},
      {"PEK", {40.08, 116.58}, "AS"},  {"TPE", {25.08, 121.23}, "AS"},
      {"BOM", {19.09, 72.87}, "AS"},   {"DEL", {28.57, 77.10}, "AS"},
      {"KUL", {2.75, 101.71}, "AS"},   {"BKK", {13.69, 100.75}, "AS"},
      // Middle East
      {"DXB", {25.25, 55.36}, "ME"},   {"DOH", {25.27, 51.61}, "ME"},
      {"THR", {35.69, 51.31}, "ME"},   {"TLV", {32.01, 34.89}, "ME"},
      // Oceania
      {"SYD", {-33.95, 151.18}, "OC"}, {"BNE", {-27.38, 153.12}, "OC"},
      {"AKL", {-37.00, 174.79}, "OC"}, {"PER", {-31.94, 115.97}, "OC"},
      {"MEL", {-37.67, 144.84}, "OC"},
      // Africa
      {"JNB", {-26.14, 28.25}, "AF"},  {"NBO", {-1.32, 36.93}, "AF"},
      {"KGL", {-1.97, 30.14}, "AF"},   {"LAD", {-8.86, 13.23}, "AF"},
      {"CAI", {30.12, 31.41}, "AF"},   {"CPT", {-33.97, 18.60}, "AF"},
      // High-latitude / remote (paper lists E-ARC, Arctic Village AK)
      {"ARC", {68.11, -145.58}, "NA"},
  };
  return kLocations;
}
}  // namespace

std::optional<Location> find_location(std::string_view code) {
  for (const Location& loc : locations()) {
    if (loc.code == code) return loc;
  }
  return std::nullopt;
}

std::span<const Location> all_locations() { return locations(); }

std::size_t count_locations_in(std::string_view region) {
  std::size_t n = 0;
  for (const Location& loc : locations()) {
    if (loc.region == region) ++n;
  }
  return n;
}

}  // namespace rootstress::net
