#include "net/clock.h"

#include <cstdio>

namespace rootstress::net {

std::string SimTime::to_string() const {
  std::int64_t total_s = ms / 1000;
  const bool negative = total_s < 0;
  if (negative) total_s = -total_s;
  const std::int64_t days = total_s / 86400;
  const std::int64_t hours = (total_s % 86400) / 3600;
  const std::int64_t minutes = (total_s % 3600) / 60;
  const std::int64_t seconds = total_s % 60;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%lldd%02lld:%02lld:%02lld",
                negative ? "-" : "", static_cast<long long>(days),
                static_cast<long long>(hours), static_cast<long long>(minutes),
                static_cast<long long>(seconds));
  return buf;
}

}  // namespace rootstress::net
