// Packet size accounting shared by the traffic and RSSAC layers.
#pragma once

#include <cstddef>

namespace rootstress::net {

/// IPv4 (20) + UDP (8) header bytes. The paper adds another 12 bytes of
/// "DNS header" in its 40-byte figure; we follow RSSAC-002 and count the
/// DNS header as part of the DNS payload, so wire size = payload + 28.
inline constexpr std::size_t kIpUdpHeaderBytes = 28;

/// Total on-the-wire bytes for a DNS payload of `payload` bytes over
/// IPv4/UDP.
constexpr std::size_t wire_bytes(std::size_t payload) noexcept {
  return payload + kIpUdpHeaderBytes;
}

/// Converts a rate in (packets/s, bytes/packet) to Gb/s.
constexpr double rate_gbps(double packets_per_s, double bytes_per_packet) noexcept {
  return packets_per_s * bytes_per_packet * 8.0 / 1e9;
}

}  // namespace rootstress::net
