// Geography: site/vantage-point locations and the propagation RTT model.
//
// The paper identifies anycast sites by nearby-airport code ("X-APT",
// §2.4.1); we keep the same convention. Latency between a vantage point and
// a site is modeled as great-circle distance over fiber with a path-stretch
// factor, which reproduces the paper's observation that a catchment shift
// (e.g. H-Root east coast -> west coast) shows up as an RTT step.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace rootstress::net {

/// A point on the globe (degrees).
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in kilometers (haversine).
double distance_km(GeoPoint a, GeoPoint b) noexcept;

/// Baseline network round-trip time between two points, in milliseconds:
/// fiber propagation at ~200 km/ms with a 1.4x path-stretch factor plus a
/// small constant for first/last-mile hops. Excludes queueing delay.
double base_rtt_ms(GeoPoint a, GeoPoint b) noexcept;

/// A named location: an IATA-style code plus coordinates and region.
struct Location {
  std::string code;      ///< three-letter airport code, e.g. "AMS"
  GeoPoint point;
  std::string region;    ///< "EU", "NA", "SA", "AS", "OC", "AF", "ME"
};

/// Looks up a known airport code; nullopt if unknown.
std::optional<Location> find_location(std::string_view code);

/// All known locations (a curated worldwide set including every site code
/// the paper's figures name for E-, K-, and D-Root).
std::span<const Location> all_locations();

/// All locations in a region code ("EU", ...).
std::size_t count_locations_in(std::string_view region);

}  // namespace rootstress::net
