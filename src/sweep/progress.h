// Live campaign progress: a sink interface run_campaign drives while
// cells execute, plus a stderr renderer for CLI use.
//
// Long sweeps (hundreds of cells, minutes each) were previously silent
// until the final CampaignResult; the observatory surfaces queued /
// running / done counts, the cache hit rate, per-cell wall times with
// straggler flagging, and an EMA-based ETA as the campaign runs.
//
// Everything here is display-only. The runner invokes the sink under its
// progress lock, in completion order — which varies with scheduling —
// and nothing in cell execution reads the sink, so campaign results stay
// bit-identical whether or not a sink is attached (the same write-only
// discipline as the rest of the telemetry surface).
#pragma once

#include <cstddef>
#include <string>

namespace rootstress::sweep {

/// Campaign-wide counters at one instant.
struct ProgressSnapshot {
  std::size_t total = 0;    ///< expanded cells
  std::size_t cached = 0;   ///< cells served from the cache at probe time
  std::size_t running = 0;  ///< cells currently executing
  std::size_t done = 0;     ///< executed cells completed (cached excluded)
  double cache_hit_rate = 0.0;  ///< cached / total
  double elapsed_ms = 0.0;      ///< since run_campaign entered execution
  /// EMA of executed-cell wall times (0 until the first completes).
  double ema_cell_ms = 0.0;
  /// Projected remaining wall time: remaining cells x EMA / workers.
  /// Negative until the first cell completes (no estimate yet).
  double eta_ms = -1.0;
};

/// One cell's start/finish notification.
struct CellProgress {
  std::size_t index = 0;  ///< row-major cell index
  std::string label;
  bool cached = false;
  double wall_ms = 0.0;  ///< 0 at start and for cached cells
  /// Flagged when this cell's wall time exceeded
  /// CampaignOptions::straggler_factor x the EMA at completion.
  bool straggler = false;
  /// Who ran the cell ("inproc", "worker-K"); empty at cell_started —
  /// the executor is only known once a result lands.
  std::string executed_by;
};

/// Observer of one campaign execution. Default implementations are
/// no-ops so sinks override only what they render.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  /// After expansion + cache probe, before any cell executes.
  virtual void campaign_started(const ProgressSnapshot& snapshot) {
    (void)snapshot;
  }
  virtual void cell_started(const CellProgress& cell,
                            const ProgressSnapshot& snapshot) {
    (void)cell;
    (void)snapshot;
  }
  virtual void cell_finished(const CellProgress& cell,
                             const ProgressSnapshot& snapshot) {
    (void)cell;
    (void)snapshot;
  }
  virtual void campaign_finished(const ProgressSnapshot& snapshot) {
    (void)snapshot;
  }
};

/// Renders progress to stderr, one line per completion:
///   [ 12/48] done=10 cached=2 hit=4% eta=01:23 wall=1842ms cell-label <- worker-1
/// Stragglers get a " [straggler]" suffix; the trailing "<- who" names
/// the executor/worker that produced the cell. Used by
/// examples/campaign_sweep --progress.
class StderrProgress : public ProgressSink {
 public:
  void campaign_started(const ProgressSnapshot& snapshot) override;
  void cell_finished(const CellProgress& cell,
                     const ProgressSnapshot& snapshot) override;
  void campaign_finished(const ProgressSnapshot& snapshot) override;
};

}  // namespace rootstress::sweep
