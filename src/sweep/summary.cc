#include "sweep/summary.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "analysis/route_changes.h"
#include "anycast/letter.h"
#include "core/whatif.h"
#include "rssac/report.h"
#include "util/stats.h"

namespace rootstress::sweep {

namespace {

/// IEEE equality except NaN == NaN: summaries use NaN as an explicit
/// "unmeasured" value, and two unmeasured cells are the same cell.
bool same(double a, double b) noexcept {
  return a == b || (std::isnan(a) && std::isnan(b));
}

}  // namespace

bool LetterCellSummary::operator==(
    const LetterCellSummary& other) const noexcept {
  return letter == other.letter && attacked == other.attacked &&
         same(served_fraction, other.served_fraction) &&
         baseline_vps == other.baseline_vps && min_vps == other.min_vps &&
         same(worst_loss, other.worst_loss) &&
         same(median_rtt_quiet_ms, other.median_rtt_quiet_ms) &&
         same(median_rtt_event_ms, other.median_rtt_event_ms) &&
         site_flips == other.site_flips && route_changes == other.route_changes;
}

bool RunSummary::operator==(const RunSummary& other) const noexcept {
  return config_hash == other.config_hash &&
         same(mean_served_attacked, other.mean_served_attacked) &&
         same(worst_letter_loss, other.worst_letter_loss) &&
         record_count == other.record_count &&
         route_changes == other.route_changes && kept_vps == other.kept_vps &&
         same(rssac_day0_queries, other.rssac_day0_queries) &&
         playbook_activations == other.playbook_activations &&
         playbook_vetoes == other.playbook_vetoes &&
         time_to_mitigation_ms == other.time_to_mitigation_ms &&
         same(worst_bin_answered, other.worst_bin_answered) &&
         same(answered_bin_stddev, other.answered_bin_stddev) &&
         recovery_ms == other.recovery_ms &&
         playbook_false_activations == other.playbook_false_activations &&
         same(enduser_success_rate, other.enduser_success_rate) &&
         same(enduser_cache_hit_rate, other.enduser_cache_hit_rate) &&
         same(enduser_added_latency_ms, other.enduser_added_latency_ms) &&
         same(enduser_retries_per_query, other.enduser_retries_per_query) &&
         letters == other.letters;
}

namespace {

/// Served fraction of a service's legit traffic over the scenario's
/// attack windows (whole span without a schedule).
double served_fraction(const sim::SimulationResult& result, int service,
                       const attack::AttackSchedule& schedule) {
  const auto& served =
      result.service_served_legit_qps[static_cast<std::size_t>(service)];
  const auto& failed =
      result.service_failed_legit_qps[static_cast<std::size_t>(service)];
  double served_sum = 0.0;
  double failed_sum = 0.0;
  if (schedule.events().empty()) {
    const net::SimInterval whole{result.start, result.end};
    served_sum = core::mean_qps_over(served, whole);
    failed_sum = core::mean_qps_over(failed, whole);
  } else {
    for (const auto& event : schedule.events()) {
      served_sum += core::mean_qps_over(served, event.when);
      failed_sum += core::mean_qps_over(failed, event.when);
    }
  }
  const double total = served_sum + failed_sum;
  return total > 0.0 ? served_sum / total : 1.0;
}

/// Whether `letter` takes fire at some point of the run: statically
/// attacked, or named by any pulse's rotating target sets.
bool letter_engaged(char letter, bool statically_attacked,
                    const fault::FaultSchedule& faults) {
  if (statically_attacked) return true;
  for (const auto& pulse : faults.pulses) {
    for (const auto& targets : pulse.pulse_targets) {
      if (std::find(targets.begin(), targets.end(), letter) != targets.end()) {
        return true;
      }
    }
  }
  return false;
}

/// Fills the RunSummary resilience block from the engaged letters' legit
/// served/failed series over the engagement span (first hot instant to
/// last, pulse envelopes included). Leaves the NaN / -1 defaults when the
/// run never gets hot or the span covers no usable bins.
void summarize_resilience(const sim::ScenarioConfig& config,
                          const sim::SimulationResult& result,
                          const std::vector<int>& engaged_services,
                          RunSummary& summary) {
  const fault::FaultSchedule& faults = config.fault_schedule;
  const net::SimTime first = faults.first_hot_begin(config.schedule);
  const net::SimTime last = faults.last_hot_end(config.schedule);
  if (first >= last || engaged_services.empty()) return;
  const auto& reference =
      result.service_served_legit_qps[static_cast<std::size_t>(
          engaged_services.front())];
  if (reference.bin_count() == 0) return;

  // Aggregate answered fraction per bin: sum of engaged letters' served
  // over served + failed (legit only; the attack stream is damage, not a
  // service obligation).
  std::vector<double> answered;
  answered.reserve(reference.bin_count());
  const auto bin_fraction = [&](std::size_t bin) -> double {
    double served = 0.0;
    double failed = 0.0;
    for (const int s : engaged_services) {
      served += result.service_served_legit_qps[static_cast<std::size_t>(s)]
                    .mean(bin);
      failed += result.service_failed_legit_qps[static_cast<std::size_t>(s)]
                    .mean(bin);
    }
    const double total = served + failed;
    return total > 0.0 ? served / total
                       : std::numeric_limits<double>::quiet_NaN();
  };

  for (std::size_t bin = 0; bin < reference.bin_count(); ++bin) {
    const std::int64_t begin = reference.bin_start(bin);
    const std::int64_t end = begin + reference.bin_ms();
    if (end <= first.ms || begin >= last.ms) continue;  // outside engagement
    const double fraction = bin_fraction(bin);
    if (!std::isnan(fraction)) answered.push_back(fraction);
  }
  if (!answered.empty()) {
    summary.worst_bin_answered = util::min_of(answered);
    // util::stddev returns 0 for n < 2, which would misread as "perfectly
    // steady"; a single engaged bin simply has no spread estimate.
    summary.answered_bin_stddev =
        answered.size() >= 2 ? util::stddev(answered)
                             : std::numeric_limits<double>::quiet_NaN();
  }

  // Recovery: the first post-attack bin whose aggregate answered fraction
  // is back to (essentially) one. Bins with no legit traffic at all count
  // as recovered — nothing is failing.
  for (std::size_t bin = 0; bin < reference.bin_count(); ++bin) {
    if (reference.bin_start(bin) < last.ms) continue;
    const double fraction = bin_fraction(bin);
    if (std::isnan(fraction) || fraction >= 0.999) {
      summary.recovery_ms = reference.bin_start(bin) - last.ms;
      break;
    }
  }

  // False activations: playbook actuations applied inside the engagement
  // span while the attack was not hot — withdraw/restore churn baited by
  // the quiet inter-pulse gaps.
  for (const std::int64_t t : result.playbook.activation_times_ms) {
    if (t < first.ms || t >= last.ms) continue;
    if (!faults.attack_hot(net::SimTime(t), config.schedule)) {
      ++summary.playbook_false_activations;
    }
  }
}

/// NaN/Inf-safe number encoding: finite doubles stay plain JSON numbers;
/// the values JSON cannot express become tagged strings ("nan", "inf",
/// "-inf") instead of silently collapsing to null or zero.
obs::JsonValue fp(double v) {
  if (std::isnan(v)) return obs::JsonValue(std::string("nan"));
  if (std::isinf(v)) {
    return obs::JsonValue(std::string(v > 0 ? "inf" : "-inf"));
  }
  return obs::JsonValue(v);
}

}  // namespace

RunSummary summarize(const sim::ScenarioConfig& config,
                     const core::EvaluationReport& report) {
  const sim::SimulationResult& result = report.result;
  RunSummary summary;
  summary.record_count = result.records.size();
  summary.route_changes = result.route_changes.size();
  summary.kept_vps = result.cleaning.kept_vps;

  // Which letters the event schedule targets is deployment metadata; the
  // letter table is deterministic (seed only perturbs site synthesis).
  const auto letter_table = anycast::root_letter_table(0);

  double served_sum = 0.0;
  int attacked = 0;
  std::vector<int> engaged_services;
  for (const auto& ls : report.letters) {
    const int s = result.service_index(ls.letter);
    if (s < 0) continue;
    LetterCellSummary cell;
    cell.letter = ls.letter;
    cell.attacked = anycast::find_letter(letter_table, ls.letter).attacked;
    cell.served_fraction = served_fraction(result, s, config.schedule);
    cell.baseline_vps = ls.baseline_vps;
    cell.min_vps = ls.min_vps;
    cell.worst_loss = ls.worst_loss;
    if (result.records.empty()) {
      // Fluid-only run: no probe records exist, so the medians are
      // unmeasured — not 0 ms, which would claim a perfect network.
      cell.median_rtt_quiet_ms = std::numeric_limits<double>::quiet_NaN();
      cell.median_rtt_event_ms = std::numeric_limits<double>::quiet_NaN();
    } else {
      cell.median_rtt_quiet_ms = ls.median_rtt_quiet_ms;
      cell.median_rtt_event_ms = ls.median_rtt_event_ms;
    }
    cell.site_flips = ls.site_flips;
    cell.route_changes = analysis::route_change_count(result, s);
    summary.worst_letter_loss =
        std::max(summary.worst_letter_loss, cell.worst_loss);
    if (cell.attacked) {
      served_sum += cell.served_fraction;
      ++attacked;
    }
    if (letter_engaged(cell.letter, cell.attacked, config.fault_schedule)) {
      engaged_services.push_back(s);
    }
    summary.letters.push_back(cell);
  }
  if (attacked > 0) summary.mean_served_attacked = served_sum / attacked;

  if (config.collect_rssac) {
    for (int li = 0; li < result.rssac.letter_count(); ++li) {
      summary.rssac_day0_queries += rssac::day_queries(result.rssac, li, 0);
    }
  }

  if (config.playbook.has_value()) {
    summary.playbook_activations = result.playbook.activations;
    summary.playbook_vetoes = result.playbook.vetoes;
    if (result.playbook.first_activation_ms >= 0 &&
        !config.schedule.events().empty()) {
      std::int64_t onset_ms = config.schedule.events().front().when.begin.ms;
      for (const auto& event : config.schedule.events()) {
        onset_ms = std::min(onset_ms, event.when.begin.ms);
      }
      summary.time_to_mitigation_ms =
          result.playbook.first_activation_ms - onset_ms;
    }
  }

  if (config.resolver_profile.has_value() && result.enduser.enabled) {
    summary.enduser_success_rate = result.enduser.success_rate();
    summary.enduser_cache_hit_rate = result.enduser.cache_hit_rate();
    summary.enduser_added_latency_ms = result.enduser.added_latency_ms();
    summary.enduser_retries_per_query = result.enduser.retries_per_query();
  }

  summarize_resilience(config, result, engaged_services, summary);
  return summary;
}

obs::JsonValue summary_to_json(const RunSummary& summary) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("config_hash",
          obs::JsonValue(std::to_string(summary.config_hash)));
  doc.set("mean_served_attacked", obs::JsonValue(summary.mean_served_attacked));
  doc.set("worst_letter_loss", obs::JsonValue(summary.worst_letter_loss));
  doc.set("record_count",
          obs::JsonValue(static_cast<std::uint64_t>(summary.record_count)));
  doc.set("route_changes",
          obs::JsonValue(static_cast<std::uint64_t>(summary.route_changes)));
  doc.set("kept_vps", obs::JsonValue(summary.kept_vps));
  doc.set("rssac_day0_queries", obs::JsonValue(summary.rssac_day0_queries));
  doc.set("playbook_activations",
          obs::JsonValue(summary.playbook_activations));
  doc.set("playbook_vetoes", obs::JsonValue(summary.playbook_vetoes));
  doc.set("time_to_mitigation_ms",
          obs::JsonValue(static_cast<double>(summary.time_to_mitigation_ms)));
  doc.set("worst_bin_answered", fp(summary.worst_bin_answered));
  doc.set("answered_bin_stddev", fp(summary.answered_bin_stddev));
  doc.set("recovery_ms",
          obs::JsonValue(static_cast<double>(summary.recovery_ms)));
  doc.set("playbook_false_activations",
          obs::JsonValue(summary.playbook_false_activations));
  doc.set("enduser_success_rate", fp(summary.enduser_success_rate));
  doc.set("enduser_cache_hit_rate", fp(summary.enduser_cache_hit_rate));
  doc.set("enduser_added_latency_ms", fp(summary.enduser_added_latency_ms));
  doc.set("enduser_retries_per_query", fp(summary.enduser_retries_per_query));
  obs::JsonValue letters = obs::JsonValue::array();
  for (const auto& cell : summary.letters) {
    obs::JsonValue l = obs::JsonValue::object();
    l.set("letter", obs::JsonValue(std::string(1, cell.letter)));
    l.set("attacked", obs::JsonValue(cell.attacked));
    l.set("served_fraction", obs::JsonValue(cell.served_fraction));
    l.set("baseline_vps", obs::JsonValue(cell.baseline_vps));
    l.set("min_vps", obs::JsonValue(cell.min_vps));
    l.set("worst_loss", obs::JsonValue(cell.worst_loss));
    l.set("median_rtt_quiet_ms", fp(cell.median_rtt_quiet_ms));
    l.set("median_rtt_event_ms", fp(cell.median_rtt_event_ms));
    l.set("site_flips", obs::JsonValue(cell.site_flips));
    l.set("route_changes", obs::JsonValue(cell.route_changes));
    letters.push_back(std::move(l));
  }
  doc.set("letters", std::move(letters));
  return doc;
}

namespace {

bool read_number(const obs::JsonValue& doc, const char* key, double* out) {
  const obs::JsonValue* v = doc.find(key);
  if (v == nullptr || v->kind() != obs::JsonValue::Kind::kNumber) return false;
  *out = v->as_number();
  return true;
}

bool read_int(const obs::JsonValue& doc, const char* key, int* out) {
  double d = 0.0;
  if (!read_number(doc, key, &d)) return false;
  *out = static_cast<int>(d);
  return true;
}

/// Inverse of fp(): accepts a plain number or one of the tagged strings
/// "nan" / "inf" / "-inf".
bool read_fp_number(const obs::JsonValue& doc, const char* key, double* out) {
  const obs::JsonValue* v = doc.find(key);
  if (v == nullptr) return false;
  if (v->kind() == obs::JsonValue::Kind::kNumber) {
    *out = v->as_number();
    return true;
  }
  if (v->kind() != obs::JsonValue::Kind::kString) return false;
  const std::string& tag = v->as_string();
  if (tag == "nan") {
    *out = std::numeric_limits<double>::quiet_NaN();
  } else if (tag == "inf") {
    *out = std::numeric_limits<double>::infinity();
  } else if (tag == "-inf") {
    *out = -std::numeric_limits<double>::infinity();
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::optional<RunSummary> summary_from_json(const obs::JsonValue& doc) {
  if (doc.kind() != obs::JsonValue::Kind::kObject) return std::nullopt;
  RunSummary summary;
  // The 64-bit hash is stored as a decimal string: JSON numbers are
  // doubles and would round it.
  const obs::JsonValue* hash = doc.find("config_hash");
  if (hash == nullptr || hash->kind() != obs::JsonValue::Kind::kString) {
    return std::nullopt;
  }
  summary.config_hash = std::strtoull(hash->as_string().c_str(), nullptr, 10);

  double number = 0.0;
  if (!read_number(doc, "mean_served_attacked", &summary.mean_served_attacked))
    return std::nullopt;
  if (!read_number(doc, "worst_letter_loss", &summary.worst_letter_loss))
    return std::nullopt;
  if (!read_number(doc, "record_count", &number)) return std::nullopt;
  summary.record_count = static_cast<std::size_t>(number);
  if (!read_number(doc, "route_changes", &number)) return std::nullopt;
  summary.route_changes = static_cast<std::size_t>(number);
  if (!read_int(doc, "kept_vps", &summary.kept_vps)) return std::nullopt;
  if (!read_number(doc, "rssac_day0_queries", &summary.rssac_day0_queries))
    return std::nullopt;
  if (!read_number(doc, "playbook_activations", &number)) return std::nullopt;
  summary.playbook_activations = static_cast<std::uint64_t>(number);
  if (!read_number(doc, "playbook_vetoes", &number)) return std::nullopt;
  summary.playbook_vetoes = static_cast<std::uint64_t>(number);
  if (!read_number(doc, "time_to_mitigation_ms", &number))
    return std::nullopt;
  summary.time_to_mitigation_ms = static_cast<std::int64_t>(number);
  if (!read_fp_number(doc, "worst_bin_answered", &summary.worst_bin_answered))
    return std::nullopt;
  if (!read_fp_number(doc, "answered_bin_stddev",
                      &summary.answered_bin_stddev)) {
    return std::nullopt;
  }
  if (!read_number(doc, "recovery_ms", &number)) return std::nullopt;
  summary.recovery_ms = static_cast<std::int64_t>(number);
  if (!read_number(doc, "playbook_false_activations", &number))
    return std::nullopt;
  summary.playbook_false_activations = static_cast<std::uint64_t>(number);
  // Required fields (strict, like everything above): the code-version
  // salt bump that introduced them invalidates every older cache entry,
  // so no stored summary legitimately lacks them.
  if (!read_fp_number(doc, "enduser_success_rate",
                      &summary.enduser_success_rate)) {
    return std::nullopt;
  }
  if (!read_fp_number(doc, "enduser_cache_hit_rate",
                      &summary.enduser_cache_hit_rate)) {
    return std::nullopt;
  }
  if (!read_fp_number(doc, "enduser_added_latency_ms",
                      &summary.enduser_added_latency_ms)) {
    return std::nullopt;
  }
  if (!read_fp_number(doc, "enduser_retries_per_query",
                      &summary.enduser_retries_per_query)) {
    return std::nullopt;
  }

  const obs::JsonValue* letters = doc.find("letters");
  if (letters == nullptr || letters->kind() != obs::JsonValue::Kind::kArray) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < letters->size(); ++i) {
    const obs::JsonValue& l = (*letters)[i];
    LetterCellSummary cell;
    const obs::JsonValue* letter = l.find("letter");
    if (letter == nullptr || letter->as_string().size() != 1) {
      return std::nullopt;
    }
    cell.letter = letter->as_string()[0];
    const obs::JsonValue* attacked = l.find("attacked");
    if (attacked == nullptr) return std::nullopt;
    cell.attacked = attacked->as_bool();
    if (!read_number(l, "served_fraction", &cell.served_fraction))
      return std::nullopt;
    if (!read_int(l, "baseline_vps", &cell.baseline_vps)) return std::nullopt;
    if (!read_int(l, "min_vps", &cell.min_vps)) return std::nullopt;
    if (!read_number(l, "worst_loss", &cell.worst_loss)) return std::nullopt;
    if (!read_fp_number(l, "median_rtt_quiet_ms", &cell.median_rtt_quiet_ms))
      return std::nullopt;
    if (!read_fp_number(l, "median_rtt_event_ms", &cell.median_rtt_event_ms))
      return std::nullopt;
    if (!read_int(l, "site_flips", &cell.site_flips)) return std::nullopt;
    if (!read_number(l, "route_changes", &number)) return std::nullopt;
    cell.route_changes = static_cast<std::uint64_t>(number);
    summary.letters.push_back(cell);
  }
  return summary;
}

}  // namespace rootstress::sweep
