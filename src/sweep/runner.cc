#include "sweep/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "obs/exporters.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace rootstress::sweep {

ExecutorConfig resolved_executor(const CampaignOptions& options) {
  ExecutorConfig config = options.executor;
  if (config.workers <= 0) config.workers = options.workers;
  if (config.lane_budget <= 0) config.lane_budget = options.lane_budget;
  return config;
}

std::string to_string(CellMetric metric) {
  switch (metric) {
    case CellMetric::kMeanServedAttacked: return "mean_served_attacked";
    case CellMetric::kWorstLetterLoss: return "worst_letter_loss";
    case CellMetric::kRouteChanges: return "route_changes";
    case CellMetric::kRecords: return "records";
    case CellMetric::kRssacDay0Queries: return "rssac_day0_queries";
    case CellMetric::kPlaybookActivations: return "playbook_activations";
    case CellMetric::kTimeToMitigationMs: return "time_to_mitigation_ms";
    case CellMetric::kWorstBinAnswered: return "worst_bin_answered";
    case CellMetric::kRecoveryMs: return "recovery_ms";
    case CellMetric::kFalseActivations: return "playbook_false_activations";
    case CellMetric::kEnduserSuccessRate: return "enduser_success_rate";
  }
  return "?";
}

double metric_value(const RunSummary& summary, CellMetric metric) {
  switch (metric) {
    case CellMetric::kMeanServedAttacked: return summary.mean_served_attacked;
    case CellMetric::kWorstLetterLoss: return summary.worst_letter_loss;
    case CellMetric::kRouteChanges:
      return static_cast<double>(summary.route_changes);
    case CellMetric::kRecords:
      return static_cast<double>(summary.record_count);
    case CellMetric::kRssacDay0Queries: return summary.rssac_day0_queries;
    case CellMetric::kPlaybookActivations:
      return static_cast<double>(summary.playbook_activations);
    case CellMetric::kTimeToMitigationMs:
      return static_cast<double>(summary.time_to_mitigation_ms);
    case CellMetric::kWorstBinAnswered: return summary.worst_bin_answered;
    case CellMetric::kRecoveryMs:
      return static_cast<double>(summary.recovery_ms);
    case CellMetric::kFalseActivations:
      return static_cast<double>(summary.playbook_false_activations);
    case CellMetric::kEnduserSuccessRate: return summary.enduser_success_rate;
  }
  return 0.0;
}

const CellOutcome* CampaignResult::cell_at(
    const std::vector<std::size_t>& coords) const {
  if (coords.size() != axis_labels.size()) return nullptr;
  std::size_t index = 0;
  for (std::size_t a = 0; a < coords.size(); ++a) {
    if (coords[a] >= axis_labels[a].size()) return nullptr;
    index = index * axis_labels[a].size() + coords[a];
  }
  return index < cells.size() ? &cells[index] : nullptr;
}

util::TextTable CampaignResult::table(std::size_t row_axis,
                                      std::size_t col_axis,
                                      CellMetric metric) const {
  if (row_axis >= axis_labels.size() || col_axis >= axis_labels.size() ||
      row_axis == col_axis) {
    throw std::invalid_argument("CampaignResult::table: bad axis pair");
  }
  std::vector<std::string> headers;
  headers.push_back(to_string(axis_kinds[row_axis]) + " \\ " +
                    to_string(axis_kinds[col_axis]));
  for (const auto& label : axis_labels[col_axis]) headers.push_back(label);
  util::TextTable table(std::move(headers));

  const std::size_t rows = axis_labels[row_axis].size();
  const std::size_t cols = axis_labels[col_axis].size();
  for (std::size_t r = 0; r < rows; ++r) {
    table.begin_row();
    table.cell(axis_labels[row_axis][r]);
    for (std::size_t c = 0; c < cols; ++c) {
      // Average the metric over every cell matching (r, c) on the two
      // displayed axes — the remaining axes (e.g. replicate seeds)
      // collapse into the mean.
      double total = 0.0;
      std::size_t count = 0;
      for (const auto& cell : cells) {
        if (cell.coords[row_axis] != r || cell.coords[col_axis] != c) {
          continue;
        }
        total += metric_value(cell.summary, metric);
        ++count;
      }
      table.cell(count == 0 ? 0.0 : total / static_cast<double>(count), 4);
    }
  }
  return table;
}

obs::JsonValue CampaignResult::to_json() const {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("campaign", obs::JsonValue(name));
  obs::JsonValue axes = obs::JsonValue::array();
  for (std::size_t a = 0; a < axis_kinds.size(); ++a) {
    obs::JsonValue axis = obs::JsonValue::object();
    axis.set("kind", obs::JsonValue(sweep::to_string(axis_kinds[a])));
    obs::JsonValue labels = obs::JsonValue::array();
    for (const auto& label : axis_labels[a]) {
      labels.push_back(obs::JsonValue(label));
    }
    axis.set("labels", std::move(labels));
    axes.push_back(std::move(axis));
  }
  doc.set("axes", std::move(axes));
  doc.set("executed", obs::JsonValue(static_cast<std::uint64_t>(executed)));
  doc.set("cache_hits",
          obs::JsonValue(static_cast<std::uint64_t>(cache_hits)));
  doc.set("wall_ms", obs::JsonValue(wall_ms));
  doc.set("executor", obs::JsonValue(executor));
  doc.set("workers", obs::JsonValue(workers));
  doc.set("inner_lanes", obs::JsonValue(inner_lanes));
  doc.set("ema_cell_ms", obs::JsonValue(ema_cell_ms));
  obs::JsonValue cache_doc = obs::JsonValue::object();
  cache_doc.set("hits", obs::JsonValue(cache_stats.hits));
  cache_doc.set("misses", obs::JsonValue(cache_stats.misses));
  cache_doc.set("stores", obs::JsonValue(cache_stats.stores));
  cache_doc.set("invalid", obs::JsonValue(cache_stats.invalid));
  cache_doc.set("evicted", obs::JsonValue(cache_stats.evicted));
  doc.set("cache", std::move(cache_doc));
  obs::JsonValue cell_docs = obs::JsonValue::array();
  for (const auto& cell : cells) {
    obs::JsonValue c = obs::JsonValue::object();
    c.set("label", obs::JsonValue(cell.label));
    obs::JsonValue coords = obs::JsonValue::array();
    for (const std::size_t coord : cell.coords) {
      coords.push_back(obs::JsonValue(static_cast<std::uint64_t>(coord)));
    }
    c.set("coords", std::move(coords));
    char key_hex[24];
    std::snprintf(key_hex, sizeof(key_hex), "%016llx",
                  static_cast<unsigned long long>(cell.key));
    c.set("key", obs::JsonValue(key_hex));
    c.set("from_cache", obs::JsonValue(cell.from_cache));
    c.set("wall_ms", obs::JsonValue(cell.wall_ms));
    c.set("straggler", obs::JsonValue(cell.straggler));
    if (!cell.executed_by.empty()) {
      c.set("executed_by", obs::JsonValue(cell.executed_by));
    }
    if (cell.timeline_digest != 0) {
      char digest_hex[24];
      std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                    static_cast<unsigned long long>(cell.timeline_digest));
      c.set("timeline_digest", obs::JsonValue(digest_hex));
      c.set("timeline_series", obs::JsonValue(
                                   static_cast<std::uint64_t>(
                                       cell.timeline_series)));
      c.set("timeline_spans", obs::JsonValue(static_cast<std::uint64_t>(
                                  cell.timeline_spans)));
    }
    c.set("summary", summary_to_json(cell.summary));
    cell_docs.push_back(std::move(c));
  }
  doc.set("cells", std::move(cell_docs));
  return doc;
}

CampaignResult run_campaign(const Campaign& campaign,
                            const CampaignOptions& options) {
  const auto campaign_begin = std::chrono::steady_clock::now();
  std::unique_ptr<obs::Runtime> obs_runtime;
  if (options.telemetry) obs_runtime = std::make_unique<obs::Runtime>();
  obs::Runtime* obs = obs_runtime.get();
  obs::PhaseProfiler* profiler = obs ? &obs->profiler() : nullptr;

  CampaignResult result;
  result.name = campaign.name;
  for (const Axis& axis : campaign.axes) {
    result.axis_kinds.push_back(axis.kind);
    std::vector<std::string> labels;
    for (std::size_t i = 0; i < axis.size(); ++i) {
      labels.push_back(axis.label(i));
    }
    result.axis_labels.push_back(std::move(labels));
  }

  // Expand and validate everything before running anything: a campaign
  // either starts fully or not at all.
  std::vector<CampaignCell> cells;
  {
    obs::PhaseProfiler::Scope scope(profiler, "expand");
    cells = expand(campaign);
    for (const CampaignCell& cell : cells) {
      if (std::string problem = sim::validate(cell.config);
          !problem.empty()) {
        throw std::invalid_argument("campaign cell '" + cell.label +
                                    "': " + problem);
      }
    }
  }

  std::unique_ptr<RunCache> cache;
  if (!options.cache_dir.empty()) {
    cache = std::make_unique<RunCache>(
        options.cache_dir, options.cache_salt,
        CacheLimits{options.cache_max_entries, options.cache_max_bytes});
  }

  result.cells.resize(cells.size());
  std::vector<std::size_t> to_run;  // indices of cache misses
  {
    obs::PhaseProfiler::Scope scope(profiler, "cache-probe");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      CellOutcome& outcome = result.cells[i];
      outcome.index = cells[i].index;
      outcome.coords = cells[i].coords;
      outcome.label = cells[i].label;
      outcome.key = cache ? cache->key(cells[i].config)
                          : config_hash(cells[i].config, options.cache_salt);
      if (cache) {
        if (auto cached = cache->load(outcome.key); cached.has_value()) {
          outcome.summary = std::move(*cached);
          outcome.from_cache = true;
          outcome.executed_by = "cache";
          ++result.cache_hits;
          continue;
        }
      }
      to_run.push_back(i);
    }
  }

  // Compose outer cell workers with inner engine lanes under one budget,
  // then build the executor the options name. The deprecated flat knobs
  // fold into the ExecutorConfig here.
  ExecutorConfig exec_config = resolved_executor(options);
  const int lane_budget = util::resolve_thread_count(exec_config.lane_budget);
  int workers = util::resolve_thread_count(exec_config.workers);
  workers = std::min(
      workers, static_cast<int>(std::max<std::size_t>(to_run.size(), 1)));
  const int inner_lanes = util::lanes_per_worker(lane_budget, workers);
  exec_config.workers = workers;
  exec_config.lane_budget = lane_budget;
  const std::unique_ptr<Executor> executor = make_executor(exec_config);
  result.executor = executor->name();
  result.workers = workers;
  result.inner_lanes = inner_lanes;

  obs::Counter* executed_counter = nullptr;
  obs::Histogram* wall_hist = nullptr;
  if (obs) {
    obs->metrics().gauge("sweep.cells_total", {}).set(
        static_cast<double>(cells.size()));
    obs->metrics().gauge("sweep.cache_hits", {}).set(
        static_cast<double>(result.cache_hits));
    obs->metrics().gauge("sweep.outer_workers", {}).set(workers);
    obs->metrics().gauge("sweep.inner_lanes", {}).set(inner_lanes);
    executed_counter = &obs->metrics().counter("sweep.cells_executed", {});
    wall_hist = &obs->metrics().histogram("sweep.cell_wall_ms", {},
                                          /*bin_width=*/1000.0,
                                          /*bin_count=*/64);
  }

  // One board for all executors: counters + EMA/ETA + sink callbacks
  // under one lock. Display only — nothing reads it back into cells.
  CompletionBoard board(cells.size(), result.cache_hits, workers,
                        options.straggler_factor, options.progress_sink,
                        options.progress);
  if (options.progress_sink != nullptr) board.campaign_started();

  {
    obs::PhaseProfiler::Scope scope(profiler, "execute");
    ExecutionContext context;
    context.cells = &cells;
    context.to_run = &to_run;
    context.outcomes = &result.cells;
    context.cache = cache.get();
    context.workers = workers;
    context.inner_lanes = inner_lanes;
    context.board = &board;
    context.executed_counter = executed_counter;
    context.wall_hist = wall_hist;
    executor->execute(context);
  }
  result.executed = to_run.size();
  result.ema_cell_ms = board.ema_cell_ms();
  if (options.progress_sink != nullptr) board.campaign_finished();
  if (options.progress) {
    for (const CellOutcome& outcome : result.cells) {
      if (outcome.from_cache) {
        options.progress(outcome.label, /*cached=*/true, 0.0);
      }
    }
  }

  {
    obs::PhaseProfiler::Scope scope(profiler, "aggregate");
    // Cache hits carry the summary's stored hash; recompute nothing —
    // just stamp hashes on cached cells that predate the field.
    for (CellOutcome& outcome : result.cells) {
      if (outcome.summary.config_hash == 0) {
        outcome.summary.config_hash = outcome.key;
      }
    }
  }

  if (cache) result.cache_stats = cache->stats();
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - campaign_begin)
                       .count();
  if (obs) {
    obs->metrics().gauge("sweep.wall_ms", {}).set(result.wall_ms);
    result.telemetry = obs->snapshot(net::SimTime(0));
    // Campaign-level Prometheus exposition — same knob the engine honors,
    // written atomically so a concurrent engine write never interleaves.
    if (const char* prom = std::getenv("ROOTSTRESS_PROM");
        prom != nullptr && *prom != '\0') {
      if (obs::write_text_file(prom,
                               obs::prometheus_text(
                                   result.telemetry.metrics))) {
        RS_LOG_INFO << "campaign metrics -> " << prom;
      } else {
        RS_LOG_ERROR << "failed to write campaign metrics to " << prom;
      }
    }
  }
  RS_LOG_INFO << "campaign '" << result.name << "': " << cells.size()
              << " cells, " << result.executed << " executed, "
              << result.cache_hits << " cached, " << result.executor << " "
              << workers << "x" << inner_lanes << " lanes";
  return result;
}

}  // namespace rootstress::sweep
