#include "sweep/executor.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/evaluation.h"
#include "sweep/cache.h"
#include "sweep/fabric/coordinator.h"
#include "util/parallel.h"

namespace rootstress::sweep {

std::string to_string(ExecutorMode mode) {
  switch (mode) {
    case ExecutorMode::kInProcess: return "inproc";
    case ExecutorMode::kSubprocess: return "subprocess";
  }
  return "?";
}

CompletionBoard::CompletionBoard(std::size_t total, std::size_t cached,
                                 int workers, double straggler_factor,
                                 ProgressSink* sink, ProgressFn progress)
    : workers_(std::max(workers, 1)),
      straggler_factor_(straggler_factor),
      sink_(sink),
      progress_fn_(std::move(progress)),
      begin_(std::chrono::steady_clock::now()) {
  progress_.total = total;
  progress_.cached = cached;
  progress_.cache_hit_rate =
      total == 0 ? 0.0
                 : static_cast<double>(cached) / static_cast<double>(total);
}

void CompletionBoard::stamp_elapsed_locked() {
  progress_.elapsed_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - begin_)
                             .count();
}

void CompletionBoard::campaign_started() {
  const std::scoped_lock lock(mutex_);
  stamp_elapsed_locked();
  if (sink_ != nullptr) sink_->campaign_started(progress_);
}

void CompletionBoard::cell_started(const CellOutcome& outcome) {
  const std::scoped_lock lock(mutex_);
  ++progress_.running;
  stamp_elapsed_locked();
  if (sink_ != nullptr) {
    CellProgress cp;
    cp.index = outcome.index;
    cp.label = outcome.label;
    sink_->cell_started(cp, progress_);
  }
}

void CompletionBoard::cell_finished(CellOutcome& outcome) {
  const std::scoped_lock lock(mutex_);
  // EMA over completed cells (alpha 0.3; the first completion seeds it).
  // A cell well past the prior estimate is a straggler — flagged before
  // this sample drags the EMA up.
  outcome.straggler =
      progress_.done > 0 &&
      outcome.wall_ms > straggler_factor_ * progress_.ema_cell_ms;
  progress_.ema_cell_ms =
      progress_.done == 0
          ? outcome.wall_ms
          : 0.3 * outcome.wall_ms + 0.7 * progress_.ema_cell_ms;
  if (progress_.running > 0) --progress_.running;
  ++progress_.done;
  const std::size_t remaining =
      progress_.total - progress_.cached - progress_.done;
  progress_.eta_ms = progress_.ema_cell_ms * static_cast<double>(remaining) /
                     static_cast<double>(workers_);
  stamp_elapsed_locked();
  if (sink_ != nullptr) {
    CellProgress cp;
    cp.index = outcome.index;
    cp.label = outcome.label;
    cp.wall_ms = outcome.wall_ms;
    cp.straggler = outcome.straggler;
    cp.executed_by = outcome.executed_by;
    sink_->cell_finished(cp, progress_);
  }
  if (progress_fn_) {
    progress_fn_(outcome.label, /*cached=*/false, outcome.wall_ms);
  }
}

void CompletionBoard::campaign_finished() {
  const std::scoped_lock lock(mutex_);
  progress_.eta_ms = 0.0;
  stamp_elapsed_locked();
  if (sink_ != nullptr) sink_->campaign_finished(progress_);
}

double CompletionBoard::ema_cell_ms() const {
  const std::scoped_lock lock(mutex_);
  return progress_.ema_cell_ms;
}

ProgressSnapshot CompletionBoard::snapshot() const {
  const std::scoped_lock lock(mutex_);
  return progress_;
}

namespace {

/// The classic path: cells fan out on a util::ThreadPool inside this
/// process, each engine run getting its lane share of the budget.
class InProcessExecutor : public Executor {
 public:
  std::string name() const override { return "inproc"; }

  void execute(const ExecutionContext& ctx) override {
    util::ThreadPool pool(ctx.workers);
    pool.parallel_for(ctx.to_run->size(), [&](std::size_t task) {
      const std::size_t i = (*ctx.to_run)[task];
      CellOutcome& outcome = (*ctx.outcomes)[i];
      if (ctx.board != nullptr) ctx.board->cell_started(outcome);
      sim::ScenarioConfig config = (*ctx.cells)[i].config;
      // An explicit per-cell thread count wins; auto cells get their
      // budget share.
      if (config.threads <= 0) config.threads = ctx.inner_lanes;
      const auto begin = std::chrono::steady_clock::now();
      const core::EvaluationReport report = core::evaluate_scenario(config);
      // Summarize against the resolved config (not the thread-adjusted
      // copy's identity — summaries must match standalone runs).
      outcome.summary = summarize((*ctx.cells)[i].config, report);
      outcome.summary.config_hash = outcome.key;
      outcome.wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - begin)
                            .count();
      outcome.executed_by = name();
      // Flight-recorder digest: observational sidecar, never part of the
      // summary (cache entries stay recorder-agnostic).
      const obs::TimelineData& timeline = report.result.telemetry.timeline;
      if (!timeline.empty()) {
        outcome.timeline_digest = timeline.digest();
        outcome.timeline_series = timeline.series.size();
        outcome.timeline_spans = timeline.spans.size();
      }
      if (ctx.cache != nullptr) ctx.cache->store(outcome.key, outcome.summary);
      if (ctx.executed_counter != nullptr) ctx.executed_counter->add(1);
      if (ctx.wall_hist != nullptr) ctx.wall_hist->observe(outcome.wall_ms);
      if (ctx.board != nullptr) ctx.board->cell_finished(outcome);
    });
  }
};

}  // namespace

std::unique_ptr<Executor> make_executor(const ExecutorConfig& config) {
  switch (config.mode) {
    case ExecutorMode::kInProcess:
      return std::make_unique<InProcessExecutor>();
    case ExecutorMode::kSubprocess:
      return std::make_unique<fabric::SubprocessExecutor>(config);
  }
  throw std::invalid_argument("make_executor: unknown ExecutorMode");
}

}  // namespace rootstress::sweep
