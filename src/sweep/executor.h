// The campaign executor API: how a batch of cache-missed cells actually
// gets run.
//
// run_campaign is executor-agnostic. It expands the campaign, probes the
// cache, resolves the worker/lane budget, then hands an ExecutionContext
// to an Executor:
//
//   - InProcessExecutor: the classic path — cells fan out on a
//     util::ThreadPool inside this process.
//   - SubprocessExecutor (sweep/fabric/): a coordinator leases cells to
//     forked worker processes over a socketpair line protocol, with the
//     content-addressed RunCache directory as the shared result store,
//     heartbeat-based liveness, crash re-lease, and work-stealing of
//     stragglers.
//
// Determinism contract: every cell's ScenarioConfig is fully resolved
// before dispatch and the engine is bit-identical at any thread count,
// so per-cell RunSummary digests are identical whichever executor ran
// them and however many workers it used (the executor test suite
// enforces in-process == subprocess at 1 and N workers, including with a
// worker killed mid-campaign).
//
// All progress accounting funnels through one CompletionBoard so sink
// callbacks and counters behave identically across executors: counters
// are monotone, callbacks fire under one lock in completion order, and
// nothing an observer does can change results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sweep/campaign.h"
#include "sweep/progress.h"
#include "sweep/summary.h"

namespace rootstress::sweep {

class RunCache;  // sweep/cache.h

/// Which executor runs the cache-missed cells.
enum class ExecutorMode : std::uint8_t {
  kInProcess,   ///< util::ThreadPool in this process (the classic path)
  kSubprocess,  ///< forked worker processes over the fabric protocol
};

std::string to_string(ExecutorMode mode);

/// One place for every threading/fabric knob. CampaignOptions embeds one
/// of these; the deprecated flat CampaignOptions::workers / lane_budget
/// fields are merged in by resolved_executor() for source compatibility.
struct ExecutorConfig {
  ExecutorMode mode = ExecutorMode::kInProcess;
  /// Concurrent cell workers (threads in-process, processes under the
  /// fabric). <= 0 = auto (ROOTSTRESS_THREADS, else hardware), capped at
  /// the number of cells to run.
  int workers = 0;
  /// Total worker lanes shared by outer x inner parallelism. <= 0 = auto
  /// (same resolution as `workers`). Each worker gets
  /// util::lanes_per_worker(lane_budget, workers) engine threads.
  int lane_budget = 0;
  /// Fabric only: worker heartbeat period while a cell executes.
  double heartbeat_ms = 250.0;
  /// Fabric only: an idle worker may duplicate ("steal") the oldest
  /// outstanding lease once it has been out this long with no result.
  /// First result wins; duplicates are bit-identical by the determinism
  /// contract, so stealing can only shorten the tail, never change it.
  double steal_after_ms = 2000.0;
  /// Fabric fault injection (tests/bench only): worker ordinal 0 exits
  /// hard after accepting this many leases, exercising crash re-lease.
  /// < 0 disables.
  int fail_worker_after = -1;
};

/// One executed (or cache-served) cell.
struct CellOutcome {
  std::size_t index = 0;
  std::vector<std::size_t> coords;
  std::string label;
  std::uint64_t key = 0;       ///< salted config hash (cache key)
  bool from_cache = false;
  double wall_ms = 0.0;        ///< 0 for cache hits
  bool straggler = false;      ///< wall time >> the campaign's EMA
  /// Who produced this cell: "cache" (probe hit), "inproc", or
  /// "worker-K" (fabric worker ordinal). Observational only — never part
  /// of RunSummary, so digests stay executor-agnostic.
  std::string executed_by;
  /// Flight-recorder digest of the cell's run (obs::TimelineData::digest)
  /// plus series/span counts. 0 / 0 / 0 for cache hits and cells that ran
  /// with telemetry off — the digest is observational and deliberately
  /// NOT part of RunSummary, so summaries (and cache entries) stay
  /// bit-identical whether or not the recorder ran.
  std::uint64_t timeline_digest = 0;
  std::size_t timeline_series = 0;
  std::size_t timeline_spans = 0;
  RunSummary summary;
};

/// Shared progress/straggler accounting: counters, the wall-time EMA and
/// ETA, and the sink/progress callbacks, all under one lock so every
/// executor reports identically. Monotonicity invariants (done never
/// decreases, done + running never exceeds the cells to run, the hit
/// rate is a constant in [0, 1]) hold at every callback.
class CompletionBoard {
 public:
  using ProgressFn =
      std::function<void(const std::string& label, bool cached,
                         double wall_ms)>;

  CompletionBoard(std::size_t total, std::size_t cached, int workers,
                  double straggler_factor, ProgressSink* sink,
                  ProgressFn progress);

  void campaign_started();
  /// A cell began executing (first lease under the fabric, task entry
  /// in-process). Re-leases of the same cell must not re-report.
  void cell_started(const CellOutcome& outcome);
  /// A cell finished executing: stamps `outcome.straggler`, folds the
  /// wall time into the EMA, updates counters/ETA, fires callbacks.
  void cell_finished(CellOutcome& outcome);
  void campaign_finished();

  double ema_cell_ms() const;
  ProgressSnapshot snapshot() const;

 private:
  void stamp_elapsed_locked();

  mutable std::mutex mutex_;
  ProgressSnapshot progress_;
  const int workers_;
  const double straggler_factor_;
  ProgressSink* const sink_;
  const ProgressFn progress_fn_;
  const std::chrono::steady_clock::time_point begin_;
};

/// Everything an Executor needs to run the missed cells. Pointers are
/// borrowed from run_campaign and outlive execute(); `cache` and the obs
/// instruments may be null.
struct ExecutionContext {
  const std::vector<CampaignCell>* cells = nullptr;  ///< all expanded cells
  const std::vector<std::size_t>* to_run = nullptr;  ///< indices to execute
  std::vector<CellOutcome>* outcomes = nullptr;      ///< parallel to cells
  RunCache* cache = nullptr;                         ///< shared result store
  int workers = 1;      ///< resolved outer workers
  int inner_lanes = 1;  ///< engine threads per worker
  CompletionBoard* board = nullptr;
  obs::Counter* executed_counter = nullptr;
  obs::Histogram* wall_hist = nullptr;
};

/// Runs a batch of cells. Implementations must fill, for every index in
/// `to_run`: summary (config_hash stamped with the cell key), wall_ms,
/// executed_by, and the timeline digest when the cell recorded one —
/// and drive the board exactly once per cell.
class Executor {
 public:
  virtual ~Executor() = default;
  /// Short tag for CampaignResult::executor ("inproc", "subprocess").
  virtual std::string name() const = 0;
  virtual void execute(const ExecutionContext& context) = 0;
};

/// Builds the executor `config.mode` names.
std::unique_ptr<Executor> make_executor(const ExecutorConfig& config);

}  // namespace rootstress::sweep
