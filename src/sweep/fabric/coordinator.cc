#include "sweep/fabric/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/cache.h"
#include "sweep/fabric/protocol.h"
#include "sweep/fabric/worker.h"
#include "util/logging.h"

namespace rootstress::sweep::fabric {

namespace {

using Clock = std::chrono::steady_clock;

struct WorkerSlot {
  int ordinal = 0;
  pid_t pid = -1;
  LineChannel channel;
  bool ready = false;       ///< HELLO received
  bool reaped = false;      ///< waitpid collected
  long lease = -1;          ///< in-flight cell index, -1 when idle
  Clock::time_point lease_since{};
  Clock::time_point last_heard{};
};

/// Per-cell lease bookkeeping, indexed by cell index.
struct CellLease {
  int holders = 0;      ///< live workers currently leased this cell
  int grants = 0;       ///< total leases ever granted (steal cap)
  bool started = false; ///< board cell_started fired
  bool completed = false;
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void SubprocessExecutor::execute(const ExecutionContext& ctx) {
  const std::vector<CampaignCell>& cells = *ctx.cells;
  const std::vector<std::size_t>& to_run = *ctx.to_run;
  std::vector<CellOutcome>& outcomes = *ctx.outcomes;
  if (to_run.empty()) return;

  WorkerEnv env_base;
  env_base.cells = &cells;
  env_base.inner_lanes = ctx.inner_lanes;
  if (ctx.cache != nullptr) {
    env_base.cache_dir = ctx.cache->directory();
    env_base.cache_salt = ctx.cache->salt();
    env_base.cache_limits = ctx.cache->limits();
  }
  env_base.heartbeat_ms = config_.heartbeat_ms;
  env_base.fail_after_leases = config_.fail_worker_after;

  // Fork the fleet. Children inherit the expanded cell table and nothing
  // else they care about; each gets one socketpair end and closes every
  // other fd we created.
  std::vector<WorkerSlot> workers(static_cast<std::size_t>(ctx.workers));
  std::vector<int> parent_fds;
  for (int w = 0; w < ctx.workers; ++w) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::runtime_error("fabric: socketpair failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw std::runtime_error("fabric: fork failed");
    }
    if (pid == 0) {
      // Child: keep only our worker end.
      for (const int fd : parent_fds) ::close(fd);
      ::close(sv[0]);
      WorkerEnv env = env_base;
      env.ordinal = w;
      // _Exit: no atexit handlers, no static destructors, no stdio
      // double-flush of the parent's buffers.
      std::_Exit(worker_main(sv[1], env));
    }
    ::close(sv[1]);
    set_nonblocking(sv[0]);
    parent_fds.push_back(sv[0]);
    WorkerSlot& slot = workers[static_cast<std::size_t>(w)];
    slot.ordinal = w;
    slot.pid = pid;
    slot.channel = LineChannel(sv[0]);
    slot.last_heard = Clock::now();
  }

  std::deque<std::size_t> pending(to_run.begin(), to_run.end());
  std::vector<CellLease> leases(cells.size());
  std::size_t done = 0;
  const std::size_t need = to_run.size();
  std::vector<std::string> errors;

  const auto steal_after =
      std::chrono::duration<double, std::milli>(config_.steal_after_ms);

  // Picks the next cell for an idle worker: queue first, then steal the
  // oldest sufficiently-stale lease held elsewhere (at most one
  // duplicate per cell).
  const auto next_cell = [&](const WorkerSlot& idle) -> long {
    while (!pending.empty()) {
      const std::size_t index = pending.front();
      pending.pop_front();
      if (!leases[index].completed) return static_cast<long>(index);
    }
    long victim = -1;
    Clock::time_point oldest{};
    const auto now = Clock::now();
    for (const WorkerSlot& other : workers) {
      if (&other == &idle || other.lease < 0) continue;
      const std::size_t index = static_cast<std::size_t>(other.lease);
      if (leases[index].completed || leases[index].grants >= 2) continue;
      if (now - other.lease_since < steal_after) continue;
      if (victim < 0 || other.lease_since < oldest) {
        victim = other.lease;
        oldest = other.lease_since;
      }
    }
    return victim;
  };

  const auto grant = [&](WorkerSlot& slot) {
    if (!slot.ready || slot.lease >= 0 || !slot.channel.alive()) return;
    const long index = next_cell(slot);
    if (index < 0) return;
    CellLease& lease = leases[static_cast<std::size_t>(index)];
    if (!slot.channel.send_line(encode_lease(
            static_cast<std::size_t>(index)))) {
      // Peer died between poll rounds; its death is handled below and
      // the cell (still unleased here) goes back to the queue.
      if (lease.holders == 0 && !lease.completed) {
        pending.push_front(static_cast<std::size_t>(index));
      }
      return;
    }
    slot.lease = index;
    slot.lease_since = Clock::now();
    ++lease.holders;
    ++lease.grants;
    if (!lease.started) {
      lease.started = true;
      if (ctx.board != nullptr) {
        ctx.board->cell_started(outcomes[static_cast<std::size_t>(index)]);
      }
    }
  };

  const auto on_death = [&](WorkerSlot& slot) {
    if (slot.channel.fd() < 0) return;
    slot.channel.close_fd();
    if (!slot.reaped && slot.pid > 0) {
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
      slot.reaped = true;
    }
    if (slot.lease >= 0) {
      const std::size_t index = static_cast<std::size_t>(slot.lease);
      CellLease& lease = leases[index];
      --lease.holders;
      --lease.grants;  // a dead holder frees its duplicate slot
      slot.lease = -1;
      if (!lease.completed && lease.holders == 0) {
        pending.push_front(index);  // re-lease ahead of fresh work
      }
      RS_LOG_INFO << "fabric: worker-" << slot.ordinal
                  << " died, re-leasing cell " << index;
    } else {
      RS_LOG_INFO << "fabric: worker-" << slot.ordinal << " exited";
    }
  };

  const auto on_message = [&](WorkerSlot& slot, const Message& msg) {
    slot.last_heard = Clock::now();
    switch (msg.kind) {
      case MessageKind::kHello:
        if (msg.version != kProtocolVersion) {
          errors.push_back("fabric: worker-" + std::to_string(slot.ordinal) +
                           " spoke protocol v" + std::to_string(msg.version));
          slot.channel.close_fd();
          return;
        }
        slot.ready = true;
        grant(slot);
        break;
      case MessageKind::kHeartbeat:
        break;  // last_heard already refreshed
      case MessageKind::kError: {
        errors.push_back("fabric: cell '" +
                         (msg.index < cells.size()
                              ? cells[msg.index].label
                              : std::to_string(msg.index)) +
                         "' failed on worker-" + std::to_string(slot.ordinal) +
                         ": " + msg.error);
        if (msg.index >= cells.size()) break;
        CellLease& lease = leases[msg.index];
        if (slot.lease == static_cast<long>(msg.index)) {
          slot.lease = -1;
          --lease.holders;
        }
        if (!lease.completed) {
          lease.completed = true;  // don't retry a deterministic throw
          ++done;
        }
        grant(slot);
        break;
      }
      case MessageKind::kResult: {
        const WireResult& wire = msg.result;
        if (wire.index >= cells.size()) break;
        CellLease& lease = leases[wire.index];
        if (slot.lease == static_cast<long>(wire.index)) {
          slot.lease = -1;
          --lease.holders;
        }
        slot.channel.send_line(encode_ack(wire.index));
        if (!lease.completed) {
          lease.completed = true;
          ++done;
          CellOutcome& outcome = outcomes[wire.index];
          if (wire.key != outcome.key) {
            // Same salt + same config must key identically; a mismatch
            // means the inherited cell table is not what we leased.
            errors.push_back("fabric: key mismatch on cell '" +
                             outcome.label + "'");
          }
          outcome.summary = wire.summary;
          if (outcome.summary.config_hash == 0) {
            outcome.summary.config_hash = outcome.key;
          }
          outcome.wall_ms = wire.wall_ms;
          outcome.executed_by = "worker-" + std::to_string(slot.ordinal);
          outcome.timeline_digest = wire.timeline_digest;
          outcome.timeline_series = wire.timeline_series;
          outcome.timeline_spans = wire.timeline_spans;
          if (ctx.executed_counter != nullptr) ctx.executed_counter->add(1);
          if (ctx.wall_hist != nullptr) ctx.wall_hist->observe(wire.wall_ms);
          if (ctx.board != nullptr) ctx.board->cell_finished(outcome);
        }
        grant(slot);
        break;
      }
      case MessageKind::kLease:
      case MessageKind::kAck:
      case MessageKind::kShutdown:
        break;  // coordinator-bound grammar only
    }
  };

  std::vector<std::string> lines;
  while (done < need) {
    std::vector<pollfd> pfds;
    std::vector<std::size_t> slot_of_pfd;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (workers[w].channel.alive() && workers[w].channel.fd() >= 0) {
        pfds.push_back({workers[w].channel.fd(), POLLIN, 0});
        slot_of_pfd.push_back(w);
      }
    }
    if (pfds.empty()) {
      throw std::runtime_error(
          "fabric: all workers died with " + std::to_string(need - done) +
          " cells unfinished" +
          (errors.empty() ? "" : ("; first error: " + errors.front())));
    }
    const int timeout_ms = std::max(10, static_cast<int>(config_.heartbeat_ms));
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    for (std::size_t p = 0; p < pfds.size(); ++p) {
      WorkerSlot& slot = workers[slot_of_pfd[p]];
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      lines.clear();
      const bool alive = slot.channel.read_lines(lines);
      for (const std::string& line : lines) {
        if (const auto msg = parse_message(line); msg.has_value()) {
          on_message(slot, *msg);
        }
      }
      if (!alive) on_death(slot);
    }
    // Keep everyone busy: queue drains first, then straggler stealing.
    for (WorkerSlot& slot : workers) {
      if (slot.channel.alive() && slot.ready && slot.lease < 0) grant(slot);
    }
  }

  // Batch done: dismiss the fleet and reap every child. A worker still
  // chewing a stolen duplicate finishes it, reads the SHUTDOWN, exits.
  for (WorkerSlot& slot : workers) {
    if (slot.channel.alive()) slot.channel.send_line(encode_shutdown());
  }
  for (WorkerSlot& slot : workers) {
    if (slot.channel.fd() >= 0) slot.channel.close_fd();
    if (!slot.reaped && slot.pid > 0) {
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
      slot.reaped = true;
    }
  }

  if (!errors.empty()) {
    throw std::runtime_error(errors.front());
  }
}

}  // namespace rootstress::sweep::fabric
