#include "sweep/fabric/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>

#include "obs/json.h"

namespace rootstress::sweep::fabric {

namespace {

constexpr std::string_view kHelloTag = "HELLO";
constexpr std::string_view kLeaseTag = "LEASE";
constexpr std::string_view kAckTag = "ACK";
constexpr std::string_view kShutdownTag = "SHUTDOWN";
constexpr std::string_view kHeartbeatTag = "HEARTBEAT";
constexpr std::string_view kResultTag = "RESULT";
constexpr std::string_view kErrorTag = "ERROR";

/// Splits the leading space-delimited token off `rest`.
std::string_view next_token(std::string_view& rest) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t end = rest.find(' ');
  std::string_view token = rest.substr(0, end);
  rest.remove_prefix(end == std::string_view::npos ? rest.size() : end);
  return token;
}

template <typename T>
bool parse_unsigned(std::string_view token, T* out) {
  if (token.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool parse_double(std::string_view token, double* out) {
  if (token.empty()) return false;
  char buf[64];
  if (token.size() >= sizeof(buf)) return false;
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  return end == buf + token.size();
}

/// 64-bit value as a decimal JSON string (numbers are doubles and would
/// round past 2^53 — same convention as RunSummary::config_hash).
obs::JsonValue u64_string(std::uint64_t v) {
  return obs::JsonValue(std::to_string(v));
}

bool read_u64_string(const obs::JsonValue& doc, std::string_view key,
                     std::uint64_t* out) {
  const obs::JsonValue* field = doc.find(key);
  if (field == nullptr || field->kind() != obs::JsonValue::Kind::kString) {
    return false;
  }
  return parse_unsigned(field->as_string(), out);
}

}  // namespace

std::string to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kHello: return std::string(kHelloTag);
    case MessageKind::kLease: return std::string(kLeaseTag);
    case MessageKind::kAck: return std::string(kAckTag);
    case MessageKind::kShutdown: return std::string(kShutdownTag);
    case MessageKind::kHeartbeat: return std::string(kHeartbeatTag);
    case MessageKind::kResult: return std::string(kResultTag);
    case MessageKind::kError: return std::string(kErrorTag);
  }
  return "?";
}

std::string encode_hello(int pid) {
  return std::string(kHelloTag) + " " + std::to_string(pid) + " " +
         std::to_string(kProtocolVersion);
}

std::string encode_lease(std::size_t index) {
  return std::string(kLeaseTag) + " " + std::to_string(index);
}

std::string encode_ack(std::size_t index) {
  return std::string(kAckTag) + " " + std::to_string(index);
}

std::string encode_shutdown() { return std::string(kShutdownTag); }

std::string encode_heartbeat(std::size_t index, double elapsed_ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %zu %.3f", index, elapsed_ms);
  return std::string(kHeartbeatTag) + buf;
}

std::string encode_result(const WireResult& result) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("index", obs::JsonValue(static_cast<std::uint64_t>(result.index)));
  doc.set("key", u64_string(result.key));
  doc.set("wall_ms", obs::JsonValue(result.wall_ms));
  doc.set("cache_hit", obs::JsonValue(result.cache_hit));
  doc.set("timeline_digest", u64_string(result.timeline_digest));
  doc.set("timeline_series",
          obs::JsonValue(static_cast<std::uint64_t>(result.timeline_series)));
  doc.set("timeline_spans",
          obs::JsonValue(static_cast<std::uint64_t>(result.timeline_spans)));
  doc.set("summary", summary_to_json(result.summary));
  return std::string(kResultTag) + " " + doc.dump();
}

std::string encode_error(std::size_t index, std::string_view what) {
  std::string line = std::string(kErrorTag) + " " + std::to_string(index) + " ";
  // The payload must stay one line; fold any embedded newlines away.
  for (const char c : what) line.push_back(c == '\n' ? ' ' : c);
  return line;
}

std::optional<Message> parse_message(std::string_view line) {
  std::string_view rest = line;
  const std::string_view tag = next_token(rest);
  Message msg;
  if (tag == kShutdownTag) {
    msg.kind = MessageKind::kShutdown;
    return msg;
  }
  if (tag == kHelloTag) {
    msg.kind = MessageKind::kHello;
    unsigned pid = 0, version = 0;
    if (!parse_unsigned(next_token(rest), &pid)) return std::nullopt;
    if (!parse_unsigned(next_token(rest), &version)) return std::nullopt;
    msg.pid = static_cast<int>(pid);
    msg.version = static_cast<int>(version);
    return msg;
  }
  if (tag == kLeaseTag || tag == kAckTag) {
    msg.kind = tag == kLeaseTag ? MessageKind::kLease : MessageKind::kAck;
    if (!parse_unsigned(next_token(rest), &msg.index)) return std::nullopt;
    return msg;
  }
  if (tag == kHeartbeatTag) {
    msg.kind = MessageKind::kHeartbeat;
    if (!parse_unsigned(next_token(rest), &msg.index)) return std::nullopt;
    if (!parse_double(next_token(rest), &msg.elapsed_ms)) return std::nullopt;
    return msg;
  }
  if (tag == kErrorTag) {
    msg.kind = MessageKind::kError;
    if (!parse_unsigned(next_token(rest), &msg.index)) return std::nullopt;
    if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    msg.error = std::string(rest);
    return msg;
  }
  if (tag == kResultTag) {
    msg.kind = MessageKind::kResult;
    if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    const auto doc = obs::json_parse(rest);
    if (!doc.has_value()) return std::nullopt;
    const obs::JsonValue* index = doc->find("index");
    if (index == nullptr || index->kind() != obs::JsonValue::Kind::kNumber) {
      return std::nullopt;
    }
    msg.result.index = static_cast<std::size_t>(index->as_number());
    if (!read_u64_string(*doc, "key", &msg.result.key)) return std::nullopt;
    const obs::JsonValue* wall = doc->find("wall_ms");
    if (wall == nullptr || wall->kind() != obs::JsonValue::Kind::kNumber) {
      return std::nullopt;
    }
    msg.result.wall_ms = wall->as_number();
    const obs::JsonValue* cache_hit = doc->find("cache_hit");
    msg.result.cache_hit =
        cache_hit != nullptr &&
        cache_hit->kind() == obs::JsonValue::Kind::kBool &&
        cache_hit->as_bool();
    if (!read_u64_string(*doc, "timeline_digest",
                         &msg.result.timeline_digest)) {
      return std::nullopt;
    }
    const obs::JsonValue* series = doc->find("timeline_series");
    const obs::JsonValue* spans = doc->find("timeline_spans");
    if (series == nullptr || spans == nullptr) return std::nullopt;
    msg.result.timeline_series =
        static_cast<std::size_t>(series->as_number());
    msg.result.timeline_spans = static_cast<std::size_t>(spans->as_number());
    const obs::JsonValue* summary = doc->find("summary");
    if (summary == nullptr) return std::nullopt;
    auto parsed = summary_from_json(*summary);
    if (!parsed.has_value()) return std::nullopt;
    msg.result.summary = std::move(*parsed);
    return msg;
  }
  return std::nullopt;
}

void LineChannel::close_fd() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  alive_ = false;
}

bool LineChannel::read_lines(std::vector<std::string>& lines) {
  if (!alive_ || fd_ < 0) return false;
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      if (n == static_cast<ssize_t>(sizeof(chunk))) continue;  // more ready
      break;
    }
    if (n == 0) {  // EOF: peer gone; flush what we have, then report dead
      alive_ = false;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // nonblocking: fine
    alive_ = false;
    break;
  }
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = buffer_.find('\n', start);
    if (nl == std::string::npos) break;
    lines.emplace_back(buffer_, start, nl - start);
    start = nl + 1;
  }
  buffer_.erase(0, start);
  return alive_;
}

bool LineChannel::send_line(std::string_view line) {
  if (!alive_ || fd_ < 0) return false;
  std::string framed(line);
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Nonblocking fd with a full socket buffer: wait for drain. The
      // peer reads promptly; a multi-second stall means it is gone.
      struct pollfd pfd{fd_, POLLOUT, 0};
      if (::poll(&pfd, 1, /*timeout-ms=*/5000) > 0) continue;
    }
    alive_ = false;  // EPIPE and friends: the peer is gone
    return false;
  }
  return true;
}

}  // namespace rootstress::sweep::fabric
