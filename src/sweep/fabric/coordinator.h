// Fabric coordinator: the SubprocessExecutor.
//
// execute() forks ExecutorConfig::workers worker processes (each holding
// the fork-inherited cell table), connects each over a socketpair, and
// runs a poll loop that leases cells, collects RESULT lines, acks them,
// and keeps every worker busy until the batch is done:
//
//   - Liveness: workers heartbeat their in-flight cell. A closed channel
//     (EOF / EPIPE) means the worker died; its outstanding lease goes
//     back to the front of the queue and is re-leased elsewhere.
//   - Work stealing: once the queue is empty, an idle worker duplicates
//     the oldest lease that has been out longer than steal_after_ms.
//     First result wins; the loser's duplicate is acked and discarded.
//     Duplicates are bit-identical by the determinism contract (and
//     usually resolve through the shared RunCache anyway), so stealing
//     can only shorten the straggler tail.
//   - Results: RunSummary JSON round-trips exactly, so a fabric cell's
//     digest is bit-identical to the in-process executor's.
//
// Worker failures are tolerated as long as at least one worker lives;
// ERROR replies (an engine throw inside a cell) abort the campaign after
// the batch drains, mirroring the in-process executor's exception
// behavior.
#pragma once

#include "sweep/executor.h"

namespace rootstress::sweep::fabric {

class SubprocessExecutor : public Executor {
 public:
  explicit SubprocessExecutor(ExecutorConfig config)
      : config_(std::move(config)) {}

  std::string name() const override { return "subprocess"; }
  void execute(const ExecutionContext& context) override;

 private:
  ExecutorConfig config_;
};

}  // namespace rootstress::sweep::fabric
