// Fabric worker: the lease -> execute -> result loop a forked campaign
// worker process runs.
//
// The worker is forked from the coordinator after campaign expansion, so
// it inherits the fully-resolved cell table by address — no config ever
// crosses the wire. It announces itself with HELLO, then serves LEASE
// messages until SHUTDOWN (or EOF): probe the shared RunCache, run the
// engine on a miss, store the summary back, and send a RESULT line. A
// background thread heartbeats the in-flight cell index so the
// coordinator can tell "slow" from "dead".
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "sweep/cache.h"
#include "sweep/campaign.h"

namespace rootstress::sweep::fabric {

/// Everything a worker needs; plain values plus a borrowed pointer to
/// the fork-inherited cell table.
struct WorkerEnv {
  int ordinal = 0;  ///< worker number, for logs and fault injection
  const std::vector<CampaignCell>* cells = nullptr;
  int inner_lanes = 1;  ///< engine threads per cell
  /// Shared result store; empty = run without a cache.
  std::filesystem::path cache_dir;
  std::string cache_salt{kCodeVersionSalt};
  CacheLimits cache_limits{};
  double heartbeat_ms = 250.0;
  /// Fault injection (tests): ordinal-0 workers exit hard after
  /// accepting this many leases. < 0 disables.
  int fail_after_leases = -1;
};

/// Serves the protocol over `fd` (blocking socketpair end) until
/// SHUTDOWN or peer EOF. Returns the process exit code. The caller (a
/// freshly forked child) must _exit() with it — never return into the
/// parent's stack.
int worker_main(int fd, const WorkerEnv& env);

}  // namespace rootstress::sweep::fabric
