// Fabric wire protocol: newline-delimited messages between the campaign
// coordinator and its worker processes.
//
// Framing is one message per '\n'-terminated line — a keyword header,
// space-separated scalar fields, and (for RESULT) a single-line JSON
// tail. obs::JsonValue::dump never emits raw newlines, so the framing is
// unambiguous without length prefixes or escaping.
//
//   coordinator -> worker:   LEASE <cell-index>
//                            ACK <cell-index>
//                            SHUTDOWN
//   worker -> coordinator:   HELLO <pid> <protocol-version>
//                            HEARTBEAT <cell-index> <elapsed-ms>
//                            RESULT <json>
//                            ERROR <cell-index> <message...>
//
// The RESULT json carries the cell index, the salted config key (decimal
// string: JSON numbers are doubles and would round 64 bits), wall time,
// the flight-recorder digest sidecar, and the full RunSummary via
// summary_to_json — whose round-trip is bit-exact (doubles dump
// shortest-exact, NaN as tagged strings), which is what keeps fabric
// digests identical to in-process ones.
//
// The campaign itself never crosses the wire: workers are forked after
// expansion and inherit the fully-resolved cell table, so a LEASE is
// just an index into it. The RESULT echoes the worker's independently
// computed config key, which the coordinator checks against its own —
// a cheap end-to-end integrity check on that inherited table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sweep/summary.h"

namespace rootstress::sweep::fabric {

/// Bump when the message grammar changes; a coordinator refuses workers
/// that HELLO with a different version (can only happen if exec'd
/// binaries ever replace forked workers).
inline constexpr int kProtocolVersion = 1;

enum class MessageKind : std::uint8_t {
  kHello,
  kLease,
  kAck,
  kShutdown,
  kHeartbeat,
  kResult,
  kError,
};

std::string to_string(MessageKind kind);

/// One completed cell as it crosses the wire.
struct WireResult {
  std::size_t index = 0;
  std::uint64_t key = 0;  ///< worker-computed salted config hash
  double wall_ms = 0.0;
  bool cache_hit = false;  ///< served from the shared RunCache, not run
  std::uint64_t timeline_digest = 0;
  std::size_t timeline_series = 0;
  std::size_t timeline_spans = 0;
  RunSummary summary;
};

/// A parsed message; only the fields for `kind` are meaningful.
struct Message {
  MessageKind kind = MessageKind::kShutdown;
  int pid = 0;               ///< kHello
  int version = 0;           ///< kHello
  std::size_t index = 0;     ///< kLease / kAck / kHeartbeat / kError
  double elapsed_ms = 0.0;   ///< kHeartbeat
  std::string error;         ///< kError
  WireResult result;         ///< kResult
};

std::string encode_hello(int pid);
std::string encode_lease(std::size_t index);
std::string encode_ack(std::size_t index);
std::string encode_shutdown();
std::string encode_heartbeat(std::size_t index, double elapsed_ms);
std::string encode_result(const WireResult& result);
std::string encode_error(std::size_t index, std::string_view what);

/// Parses one line (without its trailing '\n'); nullopt on anything
/// malformed — the peer skips garbage rather than dying on it.
std::optional<Message> parse_message(std::string_view line);

/// Buffered line framing over one socket fd. Reads accumulate into an
/// internal buffer and complete lines split out; writes append '\n' and
/// send with MSG_NOSIGNAL so a dead peer surfaces as an error, not
/// SIGPIPE. Not thread-safe; callers serialize (the worker wraps sends
/// in a mutex shared with its heartbeat thread).
class LineChannel {
 public:
  LineChannel() = default;
  explicit LineChannel(int fd) : fd_(fd) {}

  int fd() const noexcept { return fd_; }
  bool alive() const noexcept { return alive_; }
  void close_fd();

  /// Drains whatever the fd has ready into `lines` (complete lines only;
  /// a partial tail stays buffered). On a blocking fd this waits for at
  /// least one byte. Returns false once the peer is gone (EOF or a hard
  /// error); EAGAIN on a nonblocking fd is not fatal and returns true
  /// with no lines.
  bool read_lines(std::vector<std::string>& lines);

  /// Sends `line` plus '\n'; false (and marks the channel dead) when the
  /// peer is gone.
  bool send_line(std::string_view line);

 private:
  int fd_ = -1;
  bool alive_ = true;
  std::string buffer_;
};

}  // namespace rootstress::sweep::fabric
