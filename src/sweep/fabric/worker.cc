#include "sweep/fabric/worker.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "core/evaluation.h"
#include "sweep/fabric/protocol.h"
#include "sweep/summary.h"
#include "util/logging.h"

namespace rootstress::sweep::fabric {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Clock::now() - begin)
      .count();
}

/// Executes one leased cell: cache probe, engine run on a miss, store.
WireResult run_cell(const CampaignCell& cell, const WorkerEnv& env,
                    RunCache* cache) {
  WireResult out;
  out.index = cell.index;
  out.key = cache != nullptr ? cache->key(cell.config)
                             : config_hash(cell.config, env.cache_salt);
  const auto begin = Clock::now();
  if (cache != nullptr) {
    // A stolen or re-leased cell may already have been stored by another
    // worker; the digest is identical either way, so serve it.
    if (auto hit = cache->load(out.key); hit.has_value()) {
      out.summary = std::move(*hit);
      out.summary.config_hash = out.key;
      out.cache_hit = true;
      out.wall_ms = ms_since(begin);
      return out;
    }
  }
  sim::ScenarioConfig config = cell.config;
  if (config.threads <= 0) config.threads = env.inner_lanes;
  const core::EvaluationReport report = core::evaluate_scenario(config);
  // Summarize against the resolved config (not the thread-adjusted
  // copy's identity — summaries must match standalone runs).
  out.summary = summarize(cell.config, report);
  out.summary.config_hash = out.key;
  out.wall_ms = ms_since(begin);
  const obs::TimelineData& timeline = report.result.telemetry.timeline;
  if (!timeline.empty()) {
    out.timeline_digest = timeline.digest();
    out.timeline_series = timeline.series.size();
    out.timeline_spans = timeline.spans.size();
  }
  if (cache != nullptr) cache->store(out.key, out.summary);
  return out;
}

}  // namespace

int worker_main(int fd, const WorkerEnv& env) {
  LineChannel channel(fd);
  std::mutex send_mutex;  // main loop and heartbeat thread share the fd
  const auto send = [&](const std::string& line) {
    const std::scoped_lock lock(send_mutex);
    return channel.send_line(line);
  };

  std::unique_ptr<RunCache> cache;
  if (!env.cache_dir.empty()) {
    cache = std::make_unique<RunCache>(env.cache_dir, env.cache_salt,
                                       env.cache_limits);
  }

  if (!send(encode_hello(static_cast<int>(::getpid())))) return 1;

  // Heartbeat thread: while a cell is in flight, announce it every
  // heartbeat period so the coordinator can distinguish slow from dead.
  std::atomic<long> busy_index{-1};
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> busy_since_ns{0};
  std::thread heartbeat([&] {
    const auto period =
        std::chrono::duration<double, std::milli>(env.heartbeat_ms);
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(period);
      const long index = busy_index.load(std::memory_order_acquire);
      if (index >= 0) {
        const double elapsed_ms =
            static_cast<double>(
                Clock::now().time_since_epoch().count() -
                busy_since_ns.load(std::memory_order_acquire)) /
            1e6;
        send(encode_heartbeat(static_cast<std::size_t>(index), elapsed_ms));
      }
    }
  });

  int leases_taken = 0;
  bool running = true;
  std::vector<std::string> lines;
  while (running) {
    lines.clear();
    const bool alive = channel.read_lines(lines);
    for (const std::string& line : lines) {
      const auto msg = parse_message(line);
      if (!msg.has_value()) continue;  // skip garbage, don't die on it
      if (msg->kind == MessageKind::kShutdown) {
        running = false;
        break;
      }
      if (msg->kind != MessageKind::kLease) continue;  // ACKs et al.
      ++leases_taken;
      if (env.fail_after_leases >= 0 && env.ordinal == 0 &&
          leases_taken > env.fail_after_leases) {
        // Fault injection: die mid-campaign without a goodbye, exactly
        // like a crashed or OOM-killed worker would.
        std::_Exit(9);
      }
      if (msg->index >= env.cells->size()) {
        send(encode_error(msg->index, "lease index out of range"));
        continue;
      }
      busy_since_ns.store(Clock::now().time_since_epoch().count(),
                          std::memory_order_release);
      busy_index.store(static_cast<long>(msg->index),
                       std::memory_order_release);
      try {
        const WireResult result =
            run_cell((*env.cells)[msg->index], env, cache.get());
        busy_index.store(-1, std::memory_order_release);
        if (!send(encode_result(result))) running = false;
      } catch (const std::exception& e) {
        busy_index.store(-1, std::memory_order_release);
        if (!send(encode_error(msg->index, e.what()))) running = false;
      }
    }
    if (!alive) break;  // coordinator gone: nothing left to serve
  }

  stop.store(true, std::memory_order_release);
  heartbeat.join();
  return 0;
}

}  // namespace rootstress::sweep::fabric
