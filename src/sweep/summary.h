// Per-cell run summaries: the compact, deterministic digest of one
// SimulationResult that campaigns aggregate and the run cache persists.
//
// A full SimulationResult (records, series, route log) is too heavy to
// keep for hundreds of cells; the summary keeps exactly the per-letter
// headline numbers the paper's cross-run comparisons are made of. It is
// pure data, bit-identical for any thread count (everything is derived
// from the engine's deterministic outputs), and round-trips exactly
// through JSON (obs::json dumps doubles shortest-exact).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/evaluation.h"
#include "obs/json.h"

namespace rootstress::sweep {

/// One letter's digest within one cell.
struct LetterCellSummary {
  char letter = '?';
  bool attacked = false;
  /// Legit served / (served + failed) over the attack windows (whole
  /// span when the scenario has no schedule). 1.0 = no damage.
  double served_fraction = 1.0;
  int baseline_vps = 0;   ///< typical successful VPs per bin
  int min_vps = 0;        ///< worst bin
  double worst_loss = 0.0;
  /// Median probe RTTs. NaN when the run collected no records (fluid-only
  /// cells): "unmeasured" and "0 ms" are different claims, and a NaN here
  /// round-trips through JSON as a tagged string, never a silent zero.
  double median_rtt_quiet_ms = 0.0;
  double median_rtt_event_ms = 0.0;
  int site_flips = 0;
  std::uint64_t route_changes = 0;

  /// Field-wise equality with NaN == NaN (a cache-verify comparison must
  /// treat two unmeasured cells as equal; IEEE != would always fail).
  bool operator==(const LetterCellSummary& other) const noexcept;
};

/// The digest of one run.
struct RunSummary {
  /// Content hash of the fully-resolved config that produced this (salted
  /// cache key; see sweep::RunCache).
  std::uint64_t config_hash = 0;
  /// Mean served_fraction over attacked letters (the §5 headline).
  double mean_served_attacked = 1.0;
  /// Worst per-letter reachability loss across letters.
  double worst_letter_loss = 0.0;
  std::size_t record_count = 0;
  std::size_t route_changes = 0;
  int kept_vps = 0;
  /// Event-day (day 0) metered queries summed over the root letters; 0
  /// when RSSAC accounting was off.
  double rssac_day0_queries = 0.0;
  /// Reactive-playbook digest (all zero / -1 without a playbook): applied
  /// actuations, vetoed withdrawals, and the lag from the first scheduled
  /// attack onset to the first applied actuation (-1 = never mitigated).
  std::uint64_t playbook_activations = 0;
  std::uint64_t playbook_vetoes = 0;
  std::int64_t time_to_mitigation_ms = -1;
  /// Resilience digest over the run's engagement span (first hot attack
  /// instant to the last, pulse envelopes included). NaN / -1 when the
  /// scenario never gets hot (quiet runs) or the span has no usable bins.
  /// worst_bin_answered: minimum per-bin answered fraction of engaged
  /// letters' legit traffic — the depth of the worst pulse.
  double worst_bin_answered = std::numeric_limits<double>::quiet_NaN();
  /// Spread of the per-bin answered fractions (N-1 sample stddev); NaN
  /// with fewer than two bins — a single bin has no spread estimate.
  double answered_bin_stddev = std::numeric_limits<double>::quiet_NaN();
  /// Time from the last hot instant to the first fully-answered bin
  /// (aggregate answered >= 0.999); -1 = never recovered in-span.
  std::int64_t recovery_ms = -1;
  /// Playbook actuations applied inside the engagement span while the
  /// attack was NOT hot — the oscillation a pulse wave baits reactive
  /// defenses into (0 without a playbook or without quiet gaps).
  std::uint64_t playbook_false_activations = 0;
  /// End-user digest from the in-loop resolver population. All NaN
  /// ("unmeasured") when the scenario has no resolver_profile — distinct
  /// from a population whose clients all failed.
  double enduser_success_rate = std::numeric_limits<double>::quiet_NaN();
  double enduser_cache_hit_rate = std::numeric_limits<double>::quiet_NaN();
  double enduser_added_latency_ms = std::numeric_limits<double>::quiet_NaN();
  double enduser_retries_per_query = std::numeric_limits<double>::quiet_NaN();
  std::vector<LetterCellSummary> letters;

  /// Field-wise equality with NaN == NaN (see LetterCellSummary).
  bool operator==(const RunSummary& other) const noexcept;
};

/// Digests one evaluated run. `config` must be the cell's fully-resolved
/// scenario (its schedule decides the served-fraction windows).
RunSummary summarize(const sim::ScenarioConfig& config,
                     const core::EvaluationReport& report);

/// JSON round-trip (exact, including doubles).
obs::JsonValue summary_to_json(const RunSummary& summary);
std::optional<RunSummary> summary_from_json(const obs::JsonValue& doc);

}  // namespace rootstress::sweep
