#include "sweep/cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "fault/schedule.h"
#include "playbook/rules.h"

namespace rootstress::sweep {

namespace {

/// Fingerprint-safe number: JSON has no Inf/NaN (dump would emit null and
/// collapse distinct configs), so map them to tagged strings.
obs::JsonValue fp(double v) {
  if (std::isnan(v)) return obs::JsonValue("nan");
  if (std::isinf(v)) return obs::JsonValue(v > 0 ? "inf" : "-inf");
  return obs::JsonValue(v);
}

obs::JsonValue fp_topology(const bgp::TopologyConfig& t) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("tier1_count", obs::JsonValue(t.tier1_count));
  doc.set("tier2_per_region", obs::JsonValue(t.tier2_per_region));
  doc.set("stub_count", obs::JsonValue(t.stub_count));
  doc.set("providers_per_tier2", obs::JsonValue(t.providers_per_tier2));
  doc.set("peers_per_tier2", obs::JsonValue(t.peers_per_tier2));
  doc.set("providers_per_stub", obs::JsonValue(t.providers_per_stub));
  doc.set("regional_attachment", fp(t.regional_attachment));
  doc.set("seed", obs::JsonValue(t.seed));
  return doc;
}

obs::JsonValue fp_policy(const anycast::StressPolicy& p) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("withdraw_overload", fp(p.withdraw_overload));
  doc.set("session_failure_per_minute", fp(p.session_failure_per_minute));
  doc.set("recover_after_ms", obs::JsonValue(p.recover_after.ms));
  doc.set("recover_utilization", fp(p.recover_utilization));
  doc.set("partial_withdraw", obs::JsonValue(p.partial_withdraw));
  return doc;
}

obs::JsonValue fp_deployment(const anycast::RootDeployment::Config& d) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("seed", obs::JsonValue(d.seed));
  doc.set("topology", fp_topology(d.topology));
  doc.set("include_nl", obs::JsonValue(d.include_nl));
  doc.set("default_facility_uplink_gbps", fp(d.default_facility_uplink_gbps));
  doc.set("capacity_scale", fp(d.capacity_scale));
  if (d.force_policy.has_value()) {
    doc.set("force_policy", fp_policy(*d.force_policy));
  }
  doc.set("rrl_enabled", obs::JsonValue(d.rrl_enabled));
  // Absent entirely for root-table deployments so their keys match
  // pre-scale-family caches (same convention as fault_schedule).
  if (d.synthetic.has_value()) {
    obs::JsonValue syn = obs::JsonValue::object();
    syn.set("services", obs::JsonValue(d.synthetic->services));
    syn.set("sites_per_service",
            obs::JsonValue(d.synthetic->sites_per_service));
    syn.set("global_fraction", fp(d.synthetic->global_fraction));
    syn.set("site_capacity_qps", fp(d.synthetic->site_capacity_qps));
    syn.set("peer_stubs_per_site",
            obs::JsonValue(d.synthetic->peer_stubs_per_site));
    doc.set("synthetic", std::move(syn));
  }
  return doc;
}

obs::JsonValue fp_botnet(const attack::BotnetConfig& b) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("group_count", obs::JsonValue(b.group_count));
  doc.set("eu_share", fp(b.eu_share));
  doc.set("na_share", fp(b.na_share));
  doc.set("as_share", fp(b.as_share));
  doc.set("size_skew", fp(b.size_skew));
  doc.set("spoof_uniform_fraction", fp(b.spoof_uniform_fraction));
  doc.set("heavy_hitters", obs::JsonValue(b.heavy_hitters));
  doc.set("seed", obs::JsonValue(b.seed));
  return doc;
}

obs::JsonValue fp_legit(const attack::LegitConfig& l) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("per_letter_qps", fp(l.per_letter_qps));
  doc.set("retry_fraction", fp(l.retry_fraction));
  doc.set("resolver_pool", fp(l.resolver_pool));
  doc.set("query_payload_bytes", fp(l.query_payload_bytes));
  doc.set("response_payload_bytes", fp(l.response_payload_bytes));
  doc.set("seed", obs::JsonValue(l.seed));
  return doc;
}

obs::JsonValue fp_schedule(const attack::AttackSchedule& schedule) {
  obs::JsonValue events = obs::JsonValue::array();
  for (const auto& e : schedule.events()) {
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("begin_ms", obs::JsonValue(e.when.begin.ms));
    doc.set("end_ms", obs::JsonValue(e.when.end.ms));
    doc.set("per_letter_qps", fp(e.per_letter_qps));
    doc.set("qname", obs::JsonValue(e.qname));
    doc.set("query_payload_bytes", fp(e.query_payload_bytes));
    doc.set("response_payload_bytes", fp(e.response_payload_bytes));
    doc.set("duplicate_fraction", fp(e.duplicate_fraction));
    doc.set("spillover_fraction", fp(e.spillover_fraction));
    events.push_back(std::move(doc));
  }
  return events;
}

obs::JsonValue fp_population(const atlas::PopulationConfig& p) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("vp_count", obs::JsonValue(p.vp_count));
  doc.set("europe_share", fp(p.europe_share));
  doc.set("old_firmware_share", fp(p.old_firmware_share));
  doc.set("hijacked_share", fp(p.hijacked_share));
  doc.set("seed", obs::JsonValue(p.seed));
  return doc;
}

obs::JsonValue fp_collector(const bgp::CollectorConfig& c) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("peer_count", obs::JsonValue(c.peer_count));
  doc.set("ambient_visibility", fp(c.ambient_visibility));
  doc.set("na_bias", fp(c.na_bias));
  doc.set("seed", obs::JsonValue(c.seed));
  return doc;
}

}  // namespace

obs::JsonValue scenario_fingerprint(const sim::ScenarioConfig& config) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("seed", obs::JsonValue(config.seed));
  // `threads` and `telemetry` are intentionally absent: result-invariant.
  doc.set("deployment", fp_deployment(config.deployment));
  doc.set("botnet", fp_botnet(config.botnet));
  doc.set("legit", fp_legit(config.legit));
  doc.set("schedule", fp_schedule(config.schedule));
  doc.set("start_ms", obs::JsonValue(config.start.ms));
  doc.set("end_ms", obs::JsonValue(config.end.ms));
  doc.set("step_ms", obs::JsonValue(config.step.ms));
  doc.set("population", fp_population(config.population));
  doc.set("probe_letters",
          obs::JsonValue(std::string(config.probe_letters.begin(),
                                     config.probe_letters.end())));
  doc.set("probe_begin_ms", obs::JsonValue(config.probe_window.begin.ms));
  doc.set("probe_end_ms", obs::JsonValue(config.probe_window.end.ms));
  doc.set("collect_records", obs::JsonValue(config.collect_records));
  doc.set("bin_width_ms", obs::JsonValue(config.bin_width.ms));
  doc.set("collect_rssac", obs::JsonValue(config.collect_rssac));
  doc.set("enable_collector", obs::JsonValue(config.enable_collector));
  doc.set("collector", fp_collector(config.collector));
  doc.set("maintenance_flap_per_step", fp(config.maintenance_flap_per_step));
  doc.set("adaptive_defense", obs::JsonValue(config.adaptive_defense));
  // The playbook name is a display label; playbook_fingerprint covers
  // only the rule/signal/delay content that shapes results.
  if (config.playbook.has_value()) {
    doc.set("playbook", playbook::playbook_fingerprint(*config.playbook));
  }
  // Same convention as the playbook: the schedule name is a display
  // label; fault_fingerprint covers only the injector content. Absent
  // entirely for fault-free runs so their keys match pre-fault caches
  // (modulo the version salt).
  if (!config.fault_schedule.empty()) {
    doc.set("fault_schedule", fault::fault_fingerprint(config.fault_schedule));
  }
  // Absent when unset, like the playbook and fault blocks: profile-free
  // configs fingerprint exactly as before the resolver population existed
  // (modulo the version salt).
  if (config.resolver_profile.has_value()) {
    doc.set("resolver_profile",
            resolver::population_fingerprint(*config.resolver_profile));
  }
  return doc;
}

std::uint64_t config_hash(const sim::ScenarioConfig& config,
                          std::string_view salt) {
  std::string text = scenario_fingerprint(config).dump();
  text.push_back('\x1f');
  text.append(salt);
  // FNV-1a 64.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

RunCache::RunCache(std::filesystem::path dir, std::string salt,
                   CacheLimits limits)
    : dir_(std::move(dir)), salt_(std::move(salt)), limits_(limits) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort
}

std::uint64_t RunCache::key(const sim::ScenarioConfig& config) const {
  return config_hash(config, salt_);
}

std::filesystem::path RunCache::entry_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.json",
                static_cast<unsigned long long>(key));
  return dir_ / name;
}

std::optional<RunSummary> RunCache::load(std::uint64_t key) {
  // The directory is shared by concurrent readers and writers (fabric
  // workers, parallel campaigns), so anything found on disk is treated
  // as a hint: a truncated, torn, garbled, or vanished entry is a miss
  // (counted in `invalid`), never a campaign failure.
  bool present = false;
  std::optional<std::string> text;
  try {
    std::error_code ec;
    const std::filesystem::path path = entry_path(key);
    present = std::filesystem::exists(path, ec);
    if (present && std::filesystem::is_regular_file(path, ec)) {
      std::ifstream in(path);
      if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        if (!in.bad()) text = buffer.str();
      }
    }
  } catch (...) {
    text.reset();  // filesystem/alloc hiccup: a miss, not an abort
  }
  if (!text.has_value()) {
    // Present but unreadable (a directory squatting on the name, a
    // permission problem, a vanished-mid-read file) is an invalid entry;
    // plain absence is an ordinary miss.
    if (present) invalid_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const auto doc = obs::json_parse(*text);
  // The key already encodes the salt, but entries copied across versions
  // can land under a colliding name — verify the stored salt too.
  const obs::JsonValue* salt_doc = doc.has_value() ? doc->find("salt") : nullptr;
  const bool salt_matches = salt_doc != nullptr &&
                            salt_doc->kind() == obs::JsonValue::Kind::kString &&
                            salt_doc->as_string() == salt_;
  const obs::JsonValue* summary_doc =
      doc.has_value() && salt_matches ? doc->find("summary") : nullptr;
  std::optional<RunSummary> summary =
      summary_doc != nullptr ? summary_from_json(*summary_doc) : std::nullopt;
  if (!summary.has_value()) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return summary;
}

void RunCache::store(std::uint64_t key, const RunSummary& summary) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("salt", obs::JsonValue(salt_));
  doc.set("summary", summary_to_json(summary));

  const std::filesystem::path path = entry_path(key);
  // Temp-then-rename so readers never observe a torn entry; the suffix
  // keeps concurrent same-key writers (identical content) from colliding
  // mid-write.
  std::filesystem::path tmp = path;
  tmp += "." + std::to_string(
                   stores_.fetch_add(1, std::memory_order_relaxed)) +
         ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return;
    out << doc.dump() << '\n';
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);

  if (limits_.max_entries > 0 || limits_.max_bytes > 0) {
    // Eviction races benignly with concurrent processes deleting or
    // renaming entries; a scan tripping over one must not fail a store.
    try {
      enforce_limits();
    } catch (...) {
    }
  }
}

void RunCache::enforce_limits() {
  std::lock_guard<std::mutex> lock(evict_mutex_);
  struct Entry {
    std::filesystem::path path;
    std::filesystem::file_time_type written;
    std::uintmax_t bytes = 0;
  };
  std::vector<Entry> entries;
  std::uintmax_t total_bytes = 0;
  std::error_code ec;
  for (const auto& file : std::filesystem::directory_iterator(dir_, ec)) {
    if (!file.is_regular_file(ec)) continue;
    if (file.path().extension() != ".json") continue;  // skip .tmp in flight
    Entry entry;
    entry.path = file.path();
    entry.written = file.last_write_time(ec);
    entry.bytes = file.file_size(ec);
    total_bytes += entry.bytes;
    entries.push_back(std::move(entry));
  }
  const bool over_entries =
      limits_.max_entries > 0 && entries.size() > limits_.max_entries;
  const bool over_bytes =
      limits_.max_bytes > 0 && total_bytes > limits_.max_bytes;
  if (!over_entries && !over_bytes) return;
  // Oldest first; ties (filesystems with coarse timestamps) break by path
  // so the eviction order stays deterministic.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.written != b.written) return a.written < b.written;
    return a.path < b.path;
  });
  std::size_t count = entries.size();
  for (const Entry& entry : entries) {
    const bool fits_entries =
        limits_.max_entries == 0 || count <= limits_.max_entries;
    const bool fits_bytes =
        limits_.max_bytes == 0 || total_bytes <= limits_.max_bytes;
    if (fits_entries && fits_bytes) break;
    if (std::filesystem::remove(entry.path, ec)) {
      --count;
      total_bytes -= entry.bytes;
      evicted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

CacheStats RunCache::stats() const noexcept {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rootstress::sweep
