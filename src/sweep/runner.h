// Campaign execution: expand, probe the cache, run the misses through a
// pluggable Executor, aggregate.
//
// Concurrency model: cells run on an Executor (sweep/executor.h) —
// in-process on a util::ThreadPool, or across forked worker processes on
// the fabric (sweep/fabric/) — composed with each cell's inner engine
// parallelism through a shared lane budget: outer_workers * inner_threads
// <= lane_budget, so a campaign never oversubscribes the machine however
// the two knobs are set. Because the engine is bit-identical for any
// thread count and every cell's config is fully resolved before dispatch,
// per-cell results are independent of the executor choice and the worker
// count and identical to running each config standalone (the sweep and
// executor test suites enforce all three).
//
// Telemetry: the runner owns a campaign-level obs::Runtime — progress
// counters (cells executed / cached, per-cell wall histogram) plus
// coordinator-side phases (expand / cache-probe / execute / aggregate) —
// snapshotted onto CampaignResult::telemetry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "obs/runtime.h"
#include "sweep/cache.h"
#include "sweep/campaign.h"
#include "sweep/executor.h"
#include "sweep/progress.h"
#include "sweep/summary.h"
#include "util/table.h"

namespace rootstress::sweep {

/// Knobs for one campaign execution.
struct CampaignOptions {
  /// Executor selection and its threading/fabric knobs (workers, lanes,
  /// mode) — see sweep/executor.h. The single home for parallelism
  /// configuration.
  ExecutorConfig executor;
  /// DEPRECATED: pre-fabric flat threading knobs, kept so existing
  /// callers compile unchanged. Nonzero values are merged into
  /// `executor` by resolved_executor() — `executor.workers` /
  /// `executor.lane_budget` win when both are set. Use `executor`.
  int workers = 0;
  int lane_budget = 0;
  /// Cache directory; empty disables caching (every cell executes).
  std::filesystem::path cache_dir;
  /// Cache salt; change to invalidate every cached summary.
  std::string cache_salt{kCodeVersionSalt};
  /// Cache size bounds (entries / bytes); 0 = unlimited. When exceeded
  /// after a store, oldest entries are evicted first.
  std::size_t cache_max_entries = 0;
  std::uintmax_t cache_max_bytes = 0;
  /// Campaign-level telemetry (cell engines additionally follow their
  /// own ScenarioConfig::telemetry).
  bool telemetry = true;
  /// Per-cell completion callback (label, cached?, wall ms). Invoked
  /// under a lock, in completion order — display only, results never
  /// depend on it.
  std::function<void(const std::string& label, bool cached, double wall_ms)>
      progress;
  /// Structured progress observer (see sweep/progress.h); nullptr
  /// disables. Like `progress`, invoked under a lock in completion order
  /// and never read by cell execution — attach-or-not cannot change
  /// results. Not owned; must outlive run_campaign.
  ProgressSink* progress_sink = nullptr;
  /// A finished cell whose wall time exceeds this multiple of the EMA of
  /// completed cells is flagged a straggler (CellOutcome::straggler and
  /// the sink's CellProgress).
  double straggler_factor = 3.0;
};

/// The effective executor configuration: `options.executor` with the
/// deprecated flat `workers` / `lane_budget` fields folded in (flat
/// values apply only where the ExecutorConfig still says auto).
ExecutorConfig resolved_executor(const CampaignOptions& options);

/// The metric a comparison table projects out of each cell.
enum class CellMetric : std::uint8_t {
  kMeanServedAttacked,
  kWorstLetterLoss,
  kRouteChanges,
  kRecords,
  kRssacDay0Queries,
  kPlaybookActivations,
  kTimeToMitigationMs,
  kWorstBinAnswered,    ///< resilience: worst per-bin answered fraction
  kRecoveryMs,          ///< resilience: time to full service after last pulse
  kFalseActivations,    ///< resilience: playbook actions in quiet gaps
  kEnduserSuccessRate,  ///< resolver population: client resolution success
};

std::string to_string(CellMetric metric);
double metric_value(const RunSummary& summary, CellMetric metric);

/// Everything one campaign execution produced.
struct CampaignResult {
  std::string name;
  std::vector<AxisKind> axis_kinds;              ///< one per axis
  std::vector<std::vector<std::string>> axis_labels;  ///< per axis, per point
  std::vector<CellOutcome> cells;                ///< row-major, all cells
  std::size_t executed = 0;    ///< cells that ran through the executor
  std::size_t cache_hits = 0;  ///< cells served from the cache at probe
  double wall_ms = 0.0;        ///< whole-campaign wall clock
  std::string executor;        ///< which Executor ran the misses
  int workers = 0;             ///< resolved outer cell workers
  int inner_lanes = 0;         ///< resolved engine lanes per worker
  double ema_cell_ms = 0.0;    ///< EMA of executed-cell wall times
  CacheStats cache_stats;      ///< run-cache counters (zeros without one)
  obs::Snapshot telemetry;     ///< campaign-level metrics + phases

  /// Cell by per-axis coordinates; nullptr when out of range.
  const CellOutcome* cell_at(const std::vector<std::size_t>& coords) const;

  /// Paper-style comparison grid: rows = `row_axis` points, columns =
  /// `col_axis` points, cells = `metric` averaged over every remaining
  /// axis (replicate seeds average out naturally).
  util::TextTable table(std::size_t row_axis, std::size_t col_axis,
                        CellMetric metric) const;

  /// Full campaign as one JSON document (axes, per-cell summaries,
  /// cache statistics) for downstream plotting.
  obs::JsonValue to_json() const;
};

/// Expands and executes `campaign`. Throws std::invalid_argument when any
/// expanded cell fails sim::validate (before anything runs), and
/// std::runtime_error when the fabric loses every worker or a cell's
/// engine throws on a worker.
CampaignResult run_campaign(const Campaign& campaign,
                            const CampaignOptions& options = {});

}  // namespace rootstress::sweep
