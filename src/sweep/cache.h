// Content-addressed run cache.
//
// A campaign cell is identified by what the engine would actually
// simulate: the fully-resolved ScenarioConfig, canonically fingerprinted
// as JSON and hashed (FNV-1a 64) together with a code-version salt. The
// cache maps that key to the cell's serialized RunSummary on disk, so
// re-running a campaign after editing one axis only recomputes the
// changed cells, and a fully warm campaign executes zero engine runs.
//
// Keying rules:
//  - `threads` and `telemetry` are EXCLUDED from the fingerprint: both
//    are bit-identical-result-invariant by the engine's determinism
//    contract, so a summary computed at any thread count serves all.
//  - The salt must change whenever simulation semantics change
//    (kCodeVersionSalt below); stale entries then simply miss.
//  - Cache files are written via a temp file + rename so a crashed or
//    concurrent writer never leaves a torn entry; unreadable or
//    unparsable entries count as misses (and `invalid` in CacheStats).
//  - The directory is safely shared across processes: the fabric's
//    worker fleet reads and writes one cache concurrently, so every
//    disk observation is a hint — corrupt, truncated, or vanished
//    entries degrade to misses, never to campaign failures.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "sim/scenario.h"
#include "sweep/summary.h"

namespace rootstress::sweep {

/// Bump on any change that alters simulation results for an unchanged
/// config, so every previously cached summary self-invalidates.
inline constexpr std::string_view kCodeVersionSalt = "rootstress-sim-v6";

/// Canonical JSON fingerprint of everything that affects a run's results
/// (excludes `threads` and `telemetry`; see file comment). Stable across
/// processes: field order is fixed, doubles dump shortest-exact.
obs::JsonValue scenario_fingerprint(const sim::ScenarioConfig& config);

/// FNV-1a 64 over the fingerprint serialization plus `salt`.
std::uint64_t config_hash(const sim::ScenarioConfig& config,
                          std::string_view salt = kCodeVersionSalt);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t invalid = 0;  ///< present but unreadable/unparsable
  std::uint64_t evicted = 0;  ///< entries removed by the size limits
};

/// Optional cache size bounds. 0 = unlimited (the default). When a store
/// pushes the cache past a limit, the oldest entries (by last write time)
/// are evicted until it fits again.
struct CacheLimits {
  std::size_t max_entries = 0;
  std::uintmax_t max_bytes = 0;
};

/// Disk-backed summary cache. Thread-safe: distinct keys map to distinct
/// files, same-key writers race benignly through the rename, and the
/// stats counters are atomic under the hood (summed into CacheStats on
/// read).
class RunCache {
 public:
  /// Creates `dir` (and parents) if missing.
  explicit RunCache(std::filesystem::path dir,
                    std::string salt = std::string(kCodeVersionSalt),
                    CacheLimits limits = {});

  /// The (salted) key for a config.
  std::uint64_t key(const sim::ScenarioConfig& config) const;

  /// Loads the summary for `key`; nullopt (a miss) when absent or
  /// unreadable.
  std::optional<RunSummary> load(std::uint64_t key);

  /// Persists `summary` under `key`.
  void store(std::uint64_t key, const RunSummary& summary);

  CacheStats stats() const noexcept;
  const std::filesystem::path& directory() const noexcept { return dir_; }
  const std::string& salt() const noexcept { return salt_; }
  const CacheLimits& limits() const noexcept { return limits_; }

 private:
  std::filesystem::path entry_path(std::uint64_t key) const;
  /// Evicts oldest-first until the directory satisfies `limits_`. Called
  /// after every store when any limit is set; serialized by a mutex so
  /// concurrent storers do not race the directory scan.
  void enforce_limits();

  std::filesystem::path dir_;
  std::string salt_;
  CacheLimits limits_{};
  std::mutex evict_mutex_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

}  // namespace rootstress::sweep
