// Implementation of the rootstress:: facade (declared in rootstress.h).
// Lives in the sweep module because the facade sits above everything
// else: run() is evaluation, run_campaign() is the sweep engine.
#include "rootstress.h"

namespace rootstress {

core::EvaluationReport run(const sim::ScenarioConfig& config) {
  return core::evaluate_scenario(config);
}

core::EvaluationReport run(const sim::ScenarioBuilder& builder) {
  return core::evaluate_scenario(builder.build());
}

sweep::CampaignResult run_campaign(const sweep::Campaign& campaign,
                                   const sweep::CampaignOptions& options) {
  return sweep::run_campaign(campaign, options);
}

}  // namespace rootstress
