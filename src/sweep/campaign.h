// Declarative multi-scenario campaigns.
//
// The paper's headline claims are comparisons *across* runs: withdraw vs
// absorb (§2.2), reachability vs attack rate, what-if capacity planning
// (§5). A Campaign captures such a study declaratively — one base
// scenario plus axes of parameter variations — and expand() turns it
// into the full cross-product run matrix. Expansion is pure and
// deterministic: cell order is row-major in axis declaration order, and
// every cell's ScenarioConfig is fully resolved up front, so running a
// cell standalone is bit-identical to running it inside the campaign.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/whatif.h"
#include "fault/schedule.h"
#include "playbook/rules.h"
#include "sim/scenario.h"

namespace rootstress::sweep {

/// What a campaign axis varies.
enum class AxisKind : std::uint8_t {
  kAttackQps,      ///< per-attacked-letter offered rate (rewrites events)
  kCapacityScale,  ///< uniform site capacity multiplier
  kPolicy,         ///< defense policy regime (core::PolicyRegime)
  kProbeLetters,   ///< letter architecture under measurement
  kSeed,           ///< replicate seeds
  kVpCount,        ///< Atlas population size
  kPlaybook,       ///< reactive defense playbook (playbook::Playbook)
  kFaultSchedule,  ///< fault/chaos timeline (fault::FaultSchedule)
  kResolverProfile,  ///< in-loop resolver population (resolver::PopulationConfig)
};

std::string to_string(AxisKind kind);

/// One axis: a kind plus its values. Construct through the named
/// factories; exactly one value vector (the kind's) is populated.
struct Axis {
  AxisKind kind = AxisKind::kSeed;
  std::vector<double> numbers;                 ///< kAttackQps, kCapacityScale
  std::vector<core::PolicyRegime> regimes;     ///< kPolicy
  std::vector<std::vector<char>> letter_sets;  ///< kProbeLetters
  std::vector<std::uint64_t> seeds;            ///< kSeed
  std::vector<int> counts;                     ///< kVpCount
  std::vector<playbook::Playbook> playbooks;   ///< kPlaybook
  std::vector<fault::FaultSchedule> fault_schedules;  ///< kFaultSchedule
  std::vector<resolver::PopulationConfig> resolver_profiles;  ///< kResolverProfile

  static Axis attack_qps(std::vector<double> qps);
  static Axis capacity_scale(std::vector<double> scales);
  static Axis policy(std::vector<core::PolicyRegime> regimes);
  static Axis probe_letters(std::vector<std::vector<char>> sets);
  static Axis replicate_seeds(std::vector<std::uint64_t> seeds);
  static Axis vp_count(std::vector<int> counts);
  static Axis playbook(std::vector<playbook::Playbook> playbooks);
  /// Include an empty (default) FaultSchedule as one of the values to
  /// keep a no-fault baseline cell in the matrix.
  static Axis fault_schedule(std::vector<fault::FaultSchedule> schedules);
  /// Resolver-population comparison axis (cached vs cache-less clients,
  /// selection strategies). There is no "off" value on the axis itself —
  /// a profile-free baseline is the base config without the axis, whose
  /// fingerprint simply omits the resolver_profile block
  /// (absent-when-unset, like playbook and fault_schedule).
  static Axis resolver_profile(std::vector<resolver::PopulationConfig> profiles);

  /// Number of points on this axis.
  std::size_t size() const noexcept;

  /// Short human label for point `i`: "qps=5e+06", "cap=0.5x",
  /// "policy=oracle-advisor", "letters=BHK", "seed=7", "vps=400".
  std::string label(std::size_t i) const;

  /// Applies point `i` to a scenario config.
  void apply(std::size_t i, sim::ScenarioConfig& config) const;
};

/// A base scenario plus axes of variation.
struct Campaign {
  std::string name = "campaign";
  sim::ScenarioConfig base{};
  std::vector<Axis> axes;

  /// Fluent axis append.
  Campaign& add(Axis axis) {
    axes.push_back(std::move(axis));
    return *this;
  }

  /// Product of the axis sizes (1 for an axis-free campaign: the base
  /// scenario is then the single cell).
  std::size_t cell_count() const noexcept;
};

/// One fully-resolved cell of the run matrix.
struct CampaignCell {
  std::size_t index = 0;             ///< row-major ordinal
  std::vector<std::size_t> coords;   ///< per-axis point indices
  std::string label;                 ///< axis labels joined with '/'
  sim::ScenarioConfig config;        ///< base + every axis point applied
};

/// Expands the campaign into its run matrix. Row-major: the last declared
/// axis varies fastest. Deterministic and side-effect free. Throws
/// std::invalid_argument when any axis is empty — an empty axis would
/// silently expand to zero cells, which is never what a study meant.
std::vector<CampaignCell> expand(const Campaign& campaign);

}  // namespace rootstress::sweep
