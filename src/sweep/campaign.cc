#include "sweep/campaign.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace rootstress::sweep {

std::string to_string(AxisKind kind) {
  switch (kind) {
    case AxisKind::kAttackQps: return "attack_qps";
    case AxisKind::kCapacityScale: return "capacity_scale";
    case AxisKind::kPolicy: return "policy";
    case AxisKind::kProbeLetters: return "probe_letters";
    case AxisKind::kSeed: return "seed";
    case AxisKind::kVpCount: return "vp_count";
    case AxisKind::kPlaybook: return "playbook";
    case AxisKind::kFaultSchedule: return "fault_schedule";
    case AxisKind::kResolverProfile: return "resolver_profile";
  }
  return "?";
}

Axis Axis::attack_qps(std::vector<double> qps) {
  Axis axis;
  axis.kind = AxisKind::kAttackQps;
  axis.numbers = std::move(qps);
  return axis;
}

Axis Axis::capacity_scale(std::vector<double> scales) {
  Axis axis;
  axis.kind = AxisKind::kCapacityScale;
  axis.numbers = std::move(scales);
  return axis;
}

Axis Axis::policy(std::vector<core::PolicyRegime> regimes) {
  Axis axis;
  axis.kind = AxisKind::kPolicy;
  axis.regimes = std::move(regimes);
  return axis;
}

Axis Axis::probe_letters(std::vector<std::vector<char>> sets) {
  Axis axis;
  axis.kind = AxisKind::kProbeLetters;
  axis.letter_sets = std::move(sets);
  return axis;
}

Axis Axis::replicate_seeds(std::vector<std::uint64_t> seeds) {
  Axis axis;
  axis.kind = AxisKind::kSeed;
  axis.seeds = std::move(seeds);
  return axis;
}

Axis Axis::vp_count(std::vector<int> counts) {
  Axis axis;
  axis.kind = AxisKind::kVpCount;
  axis.counts = std::move(counts);
  return axis;
}

Axis Axis::playbook(std::vector<playbook::Playbook> playbooks) {
  Axis axis;
  axis.kind = AxisKind::kPlaybook;
  axis.playbooks = std::move(playbooks);
  return axis;
}

Axis Axis::fault_schedule(std::vector<fault::FaultSchedule> schedules) {
  Axis axis;
  axis.kind = AxisKind::kFaultSchedule;
  axis.fault_schedules = std::move(schedules);
  return axis;
}

Axis Axis::resolver_profile(std::vector<resolver::PopulationConfig> profiles) {
  Axis axis;
  axis.kind = AxisKind::kResolverProfile;
  axis.resolver_profiles = std::move(profiles);
  return axis;
}

std::size_t Axis::size() const noexcept {
  switch (kind) {
    case AxisKind::kAttackQps:
    case AxisKind::kCapacityScale:
      return numbers.size();
    case AxisKind::kPolicy: return regimes.size();
    case AxisKind::kProbeLetters: return letter_sets.size();
    case AxisKind::kSeed: return seeds.size();
    case AxisKind::kVpCount: return counts.size();
    case AxisKind::kPlaybook: return playbooks.size();
    case AxisKind::kFaultSchedule: return fault_schedules.size();
    case AxisKind::kResolverProfile: return resolver_profiles.size();
  }
  return 0;
}

std::string Axis::label(std::size_t i) const {
  char buf[64];
  switch (kind) {
    case AxisKind::kAttackQps:
      std::snprintf(buf, sizeof(buf), "qps=%g", numbers[i]);
      return buf;
    case AxisKind::kCapacityScale:
      std::snprintf(buf, sizeof(buf), "cap=%gx", numbers[i]);
      return buf;
    case AxisKind::kPolicy:
      return "policy=" + core::to_string(regimes[i]);
    case AxisKind::kProbeLetters: {
      std::string label = "letters=";
      if (letter_sets[i].empty()) {
        label += "all";
      } else {
        label.append(letter_sets[i].begin(), letter_sets[i].end());
      }
      return label;
    }
    case AxisKind::kSeed:
      std::snprintf(buf, sizeof(buf), "seed=%llu",
                    static_cast<unsigned long long>(seeds[i]));
      return buf;
    case AxisKind::kVpCount:
      std::snprintf(buf, sizeof(buf), "vps=%d", counts[i]);
      return buf;
    case AxisKind::kPlaybook:
      return "playbook=" +
             (playbooks[i].name.empty() ? std::string("unnamed")
                                        : playbooks[i].name);
    case AxisKind::kFaultSchedule:
      return "fault=" + (fault_schedules[i].name.empty()
                             ? std::string("unnamed")
                             : fault_schedules[i].name);
    case AxisKind::kResolverProfile:
      return "resolver=" + (resolver_profiles[i].name.empty()
                                ? std::string("unnamed")
                                : resolver_profiles[i].name);
  }
  return "?";
}

void Axis::apply(std::size_t i, sim::ScenarioConfig& config) const {
  switch (kind) {
    case AxisKind::kAttackQps: {
      std::vector<attack::AttackEvent> events = config.schedule.events();
      for (auto& event : events) event.per_letter_qps = numbers[i];
      config.schedule = attack::AttackSchedule(std::move(events));
      return;
    }
    case AxisKind::kCapacityScale:
      config.deployment.capacity_scale = numbers[i];
      return;
    case AxisKind::kPolicy:
      core::apply_policy_regime(config, regimes[i]);
      return;
    case AxisKind::kProbeLetters:
      config.probe_letters = letter_sets[i];
      return;
    case AxisKind::kSeed:
      config.seed = seeds[i];
      return;
    case AxisKind::kVpCount:
      config.population.vp_count = counts[i];
      return;
    case AxisKind::kPlaybook:
      config.playbook = playbooks[i];
      return;
    case AxisKind::kFaultSchedule:
      config.fault_schedule = fault_schedules[i];
      return;
    case AxisKind::kResolverProfile:
      config.resolver_profile = resolver_profiles[i];
      return;
  }
}

std::size_t Campaign::cell_count() const noexcept {
  std::size_t count = 1;
  for (const Axis& axis : axes) count *= axis.size();
  return count;
}

std::vector<CampaignCell> expand(const Campaign& campaign) {
  for (std::size_t a = 0; a < campaign.axes.size(); ++a) {
    if (campaign.axes[a].size() == 0) {
      throw std::invalid_argument(
          "campaign '" + campaign.name + "': axis " + std::to_string(a) +
          " (" + to_string(campaign.axes[a].kind) +
          ") has no values; an empty axis would expand to zero cells — "
          "drop the axis or give it at least one value");
    }
  }
  const std::size_t total = campaign.cell_count();
  std::vector<CampaignCell> cells;
  cells.reserve(total);
  std::vector<std::size_t> coords(campaign.axes.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    CampaignCell cell;
    cell.index = index;
    cell.coords = coords;
    cell.config = campaign.base;
    for (std::size_t a = 0; a < campaign.axes.size(); ++a) {
      campaign.axes[a].apply(coords[a], cell.config);
      if (!cell.label.empty()) cell.label += '/';
      cell.label += campaign.axes[a].label(coords[a]);
    }
    if (cell.label.empty()) cell.label = "base";
    cells.push_back(std::move(cell));
    // Odometer increment, last axis fastest (row-major).
    for (std::size_t a = coords.size(); a-- > 0;) {
      if (++coords[a] < campaign.axes[a].size()) break;
      coords[a] = 0;
    }
  }
  return cells;
}

}  // namespace rootstress::sweep
