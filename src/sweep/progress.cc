#include "sweep/progress.h"

#include <cstdio>

namespace rootstress::sweep {

namespace {

/// "MM:SS" (or "H:MM:SS") rendering of a millisecond duration.
void format_duration(double ms, char* buf, std::size_t n) {
  if (ms < 0.0) {
    std::snprintf(buf, n, "--:--");
    return;
  }
  const long total_s = static_cast<long>(ms / 1000.0 + 0.5);
  if (total_s >= 3600) {
    std::snprintf(buf, n, "%ld:%02ld:%02ld", total_s / 3600,
                  (total_s / 60) % 60, total_s % 60);
  } else {
    std::snprintf(buf, n, "%02ld:%02ld", total_s / 60, total_s % 60);
  }
}

}  // namespace

void StderrProgress::campaign_started(const ProgressSnapshot& snapshot) {
  std::fprintf(stderr,
               "campaign: %zu cells, %zu from cache, %zu to run\n",
               snapshot.total, snapshot.cached,
               snapshot.total - snapshot.cached);
}

void StderrProgress::cell_finished(const CellProgress& cell,
                                   const ProgressSnapshot& snapshot) {
  char eta[24];
  format_duration(snapshot.eta_ms, eta, sizeof(eta));
  std::string who;
  if (!cell.executed_by.empty()) who = " <- " + cell.executed_by;
  std::fprintf(stderr,
               "[%3zu/%zu] done=%zu cached=%zu hit=%.0f%% eta=%s "
               "wall=%.0fms %s%s%s\n",
               snapshot.done + snapshot.cached, snapshot.total, snapshot.done,
               snapshot.cached, snapshot.cache_hit_rate * 100.0, eta,
               cell.wall_ms, cell.label.c_str(),
               cell.straggler ? " [straggler]" : "", who.c_str());
}

void StderrProgress::campaign_finished(const ProgressSnapshot& snapshot) {
  char wall[24];
  format_duration(snapshot.elapsed_ms, wall, sizeof(wall));
  std::fprintf(stderr,
               "campaign done: %zu executed, %zu cached, wall %s\n",
               snapshot.done, snapshot.cached, wall);
}

}  // namespace rootstress::sweep
