// Fluid (rate-based) per-step load computation.
//
// Aggregate traffic is far too large to simulate per packet (5 Mq/s per
// letter for hours); loads are computed as rates per step and fed to the
// queue model, while individual Atlas probes sample the resulting
// loss/delay. These helpers compute per-site loads and facility uplink
// pressure for one service in one step.
#pragma once

#include <vector>

#include "anycast/deployment.h"
#include "attack/botnet.h"
#include "attack/schedule.h"
#include "attack/traffic.h"

namespace rootstress::sim {

/// Per-site offered load of one service for one step.
///
/// The per-site vectors are sized site_count + 1: the trailing element is
/// the sink lane the SoA kernels accumulate routeless traffic into (see
/// AnycastRouting::set_unrouted_slot). compute_service_load_into drains
/// the sink into unrouted_* and zeroes it before returning, so consumers
/// indexing by global site id never observe it.
struct ServiceLoad {
  std::vector<double> attack_qps;  ///< indexed by global site id
  std::vector<double> legit_qps;
  double unrouted_attack = 0.0;    ///< traffic with no route (blackholed)
  double unrouted_legit = 0.0;
};

/// Computes where one service's traffic lands given current routing.
/// `attack_total_qps` is 0 when the service is not under attack.
ServiceLoad compute_service_load(const anycast::RootDeployment& deployment,
                                 const anycast::ServiceInfo& service,
                                 const attack::Botnet& botnet,
                                 const attack::LegitTraffic& legit,
                                 double attack_total_qps,
                                 double legit_total_qps);

/// Allocation-free variant: writes into `out`, resizing its per-site
/// vectors only on first use (the engine preallocates one ServiceLoad
/// per service and reuses them every step). Safe to call concurrently
/// for different services/outputs; reads only routing state.
void compute_service_load_into(const anycast::RootDeployment& deployment,
                               const anycast::ServiceInfo& service,
                               const attack::Botnet& botnet,
                               const attack::LegitTraffic& legit,
                               double attack_total_qps,
                               double legit_total_qps, ServiceLoad& out);

/// Estimated Gb/s this site pushes through its facility uplink at the
/// given offered load: query ingress plus (capacity-clamped) response
/// egress after RRL suppression.
double site_uplink_gbps(const anycast::AnycastSite& site, double offered_qps,
                        double query_payload_bytes,
                        double response_payload_bytes,
                        double response_suppression);

}  // namespace rootstress::sim
