// Scenario configuration: what to simulate and what to measure.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "anycast/deployment.h"
#include "atlas/population.h"
#include "attack/botnet.h"
#include "attack/schedule.h"
#include "attack/traffic.h"
#include "bgp/collector.h"
#include "fault/schedule.h"
#include "net/clock.h"
#include "playbook/rules.h"
#include "resolver/population.h"

namespace rootstress::sim {

/// Everything a simulation run needs.
struct ScenarioConfig {
  std::uint64_t seed = 42;

  /// Worker lanes for the engine's parallel phases (fluid stepping and
  /// Atlas probing). <= 0 = auto: ROOTSTRESS_THREADS from the
  /// environment, else hardware_concurrency. 1 = the exact serial legacy
  /// path (no pool, no synchronization). Results are bit-identical for
  /// every value — see "Performance & threading model" in DESIGN.md.
  int threads = 0;

  anycast::RootDeployment::Config deployment{};
  attack::BotnetConfig botnet{};
  attack::LegitConfig legit{};
  attack::AttackSchedule schedule{};  ///< empty = quiet days

  /// Simulated span. Negative start covers baseline days before the
  /// event (RSSAC baselines); time 0 is 2015-11-30T00:00Z.
  net::SimTime start{0};
  net::SimTime end = net::SimTime::from_hours(48);
  net::SimTime step = net::SimTime::from_seconds(60);

  /// Measurement: Atlas population and which letters its VPs probe
  /// (empty = all thirteen). Probing runs only inside `probe_window`.
  atlas::PopulationConfig population{};
  std::vector<char> probe_letters{};
  net::SimInterval probe_window{net::SimTime(0),
                                net::SimTime::from_hours(48)};
  bool collect_records = true;

  /// Analysis bin width (the paper's 10 minutes).
  net::SimTime bin_width = net::SimTime::from_minutes(10);

  bool collect_rssac = true;
  bool enable_collector = true;
  bgp::CollectorConfig collector{};

  /// Background route churn: per-step probability that some random site
  /// undergoes a short maintenance flap (Fig 9's quiet-period noise).
  double maintenance_flap_per_step = 0.002;

  /// Adaptive defense (the paper's future-work direction, §2.2/§5): when
  /// set, an omniscient per-letter controller overrides the sites' own
  /// stress policies each step, withdrawing exactly the overloaded sites
  /// whose catchments the rest of the letter can absorb (core::advise).
  bool adaptive_defense = false;

  /// Reactive defense playbook: a closed-loop controller (detect ->
  /// decide -> actuate) driven only by operator-visible observables. Runs
  /// in the engine's serial defense phase; sites it withdraws are held
  /// against the static stress policies. nullopt = no controller at all
  /// (distinct from an absorb-only playbook, which detects but never
  /// acts).
  std::optional<playbook::Playbook> playbook;

  /// Deterministic fault/pulse-wave chaos schedule: attack envelopes that
  /// override `schedule` inside their windows, site hardware failures,
  /// BGP session resets, Atlas VP dropouts, telemetry gaps, and legit
  /// flash crowds. Applied in the engine's serial defense-injection
  /// phase; empty (the default) injects nothing.
  fault::FaultSchedule fault_schedule{};

  /// In-loop recursive-resolver population (the paper's §2.3/§6 client
  /// side): a fleet of caching, retrying resolvers stepped between
  /// modeled clients and the root, fed the letters' live answered
  /// fractions each step. Purely observational for the server side —
  /// every server-facing series is bit-identical with the population on
  /// or off — but produces the user-experience report
  /// (SimulationResult::enduser). nullopt = no client modeling.
  std::optional<resolver::PopulationConfig> resolver_profile;

  /// Telemetry (obs::Runtime): metrics + trace + phase profile, carried
  /// on SimulationResult::telemetry. Write-only with respect to the
  /// simulation, so results are bit-identical either way; turn off for
  /// benchmarks that want the truly minimal hot path.
  bool telemetry = true;
};

/// The paper's two-day event scenario: events of Nov 30 and Dec 1 at
/// `attack_qps` per attacked letter, with `vp_count` vantage points.
/// `include_baseline_week` extends the span to cover the seven RSSAC
/// baseline days before the event (probing still covers only the two
/// event days).
ScenarioConfig november_2015_scenario(int vp_count = 1200,
                                      double attack_qps = 5e6,
                                      bool include_baseline_week = false);

/// Two quiet days with the same deployment and measurement — the paper's
/// "normal week" control for catchment stability (§3.3.1).
ScenarioConfig quiet_days_scenario(int vp_count = 1200);

/// Reads ROOTSTRESS_VPS from the environment, else returns `fallback`
/// (benches use this so users can re-run at full Atlas scale).
int vp_count_from_env(int fallback);

/// Validates a configuration; returns an empty string when it is usable,
/// else a description of the first problem. SimulationEngine rejects
/// invalid configs with std::invalid_argument carrying this message.
std::string validate(const ScenarioConfig& config);

}  // namespace rootstress::sim
