#include "sim/event_queue.h"

namespace rootstress::sim {

void EventQueue::schedule_at(net::SimTime when, Handler handler) {
  if (when < now_) when = now_;
  queue_.push(Entry{when, next_seq_++, std::move(handler)});
}

void EventQueue::schedule_in(net::SimTime delay, Handler handler) {
  schedule_at(now_ + delay, std::move(handler));
}

std::size_t EventQueue::run_until(net::SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty() && !(until < queue_.top().when)) {
    // Copy out before pop; the handler may schedule more events.
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.when;
    entry.handler();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    now_ = entry.when;
    entry.handler();
    ++executed;
  }
  return executed;
}

}  // namespace rootstress::sim
