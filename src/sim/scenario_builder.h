// Fluent, validating construction of ScenarioConfig.
//
// The bare struct stays the plain value type every engine API consumes,
// but mutating it by hand is easy to get subtly wrong (a probe window
// outside the simulated span silently measures nothing; a bin width that
// is not a step multiple misaligns every series). The builder is the
// front door: named setters, named presets replacing the positional
// `november_2015_scenario(int, double, bool)` family, and a build() that
// checks every cross-field invariant and reports the first violation
// instead of letting the run mis-simulate.
//
//   auto config = sim::ScenarioBuilder::november_2015()
//                     .vp_count(400)
//                     .attack_qps(5e6)
//                     .duration(net::SimTime::from_hours(12))
//                     .build();  // throws std::invalid_argument if broken
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/scenario.h"
#include "sim/scenario_2016.h"

namespace rootstress::sim {

class ScenarioBuilder {
 public:
  /// Starts from the default (quiet, full-deployment) configuration.
  ScenarioBuilder() = default;
  /// Starts from an existing configuration (incremental migration path:
  /// wrap a hand-built config to get validation for free).
  explicit ScenarioBuilder(ScenarioConfig base) : config_(std::move(base)) {}

  // -- Named presets (replace the positional factory arguments) --------

  /// The paper's Nov 30 / Dec 1, 2015 two-event scenario.
  static ScenarioBuilder november_2015();
  /// Two quiet days, same deployment and measurement (§3.3.1 control).
  static ScenarioBuilder quiet_days();
  /// The June 25, 2016 follow-up event (§2.3 "Generalizing").
  static ScenarioBuilder events_2016();

  // -- Simulation identity and resources --------------------------------

  ScenarioBuilder& seed(std::uint64_t seed);
  /// Engine worker lanes; see ScenarioConfig::threads.
  ScenarioBuilder& threads(int threads);
  ScenarioBuilder& telemetry(bool enabled);

  // -- Deployment --------------------------------------------------------

  ScenarioBuilder& deployment(anycast::RootDeployment::Config config);
  /// Uniform multiplier on every site's capacity (§5 capacity axis).
  ScenarioBuilder& capacity_scale(double scale);
  /// Stub-AS count of the synthesized topology (small = fast tests).
  ScenarioBuilder& topology_stubs(int stub_count);
  /// CDN-scale synthetic scenario family (scale benches and tests): one
  /// synthetic anycast service with `n_sites` sites on a topology sized
  /// to roughly `n_ases` total ASes. `tiering` is the fraction of sites
  /// announced globally (the rest are BGP-scoped local sites). Replaces
  /// the root deployment: .nl is dropped, RSSAC collection is off, and
  /// probing covers the synthetic service ('A').
  ScenarioBuilder& synthetic_topology(int n_ases, int n_sites,
                                      double tiering = 0.75);
  /// Forces one stress policy on every site (what-if studies).
  ScenarioBuilder& force_policy(anycast::StressPolicy policy);
  /// Omniscient per-letter withdraw/absorb controller (core::advise).
  ScenarioBuilder& adaptive_defense(bool enabled = true);
  /// Reactive defense playbook (detect -> decide -> actuate from
  /// operator-visible observables only). Mutually exclusive with
  /// adaptive_defense.
  ScenarioBuilder& playbook(playbook::Playbook playbook);
  /// Whether sites start with response rate limiting active (playbooks
  /// can toggle it per site mid-run).
  ScenarioBuilder& rrl_enabled(bool enabled);

  // -- Traffic -----------------------------------------------------------

  ScenarioBuilder& schedule(attack::AttackSchedule schedule);
  /// Deterministic fault/pulse-wave chaos schedule (see fault/schedule.h).
  /// Pulse windows override the attack schedule; site faults, BGP resets,
  /// VP dropouts, telemetry gaps, and legit surges ride alongside.
  ScenarioBuilder& fault_schedule(fault::FaultSchedule schedule);
  /// In-loop recursive-resolver population (resolver/population.h):
  /// caching, retrying clients whose user-experience report rides on
  /// SimulationResult::enduser. Server-side results are unaffected.
  ScenarioBuilder& resolver_profile(resolver::PopulationConfig profile);
  /// Per-attacked-letter offered rate: rewrites the rate of every event
  /// in the schedule (presets ship the paper's timeline; this scales it).
  ScenarioBuilder& attack_qps(double per_letter_qps);
  ScenarioBuilder& botnet(attack::BotnetConfig config);
  ScenarioBuilder& legit(attack::LegitConfig config);
  /// Per-step probability of a background maintenance flap (Fig 9 noise).
  ScenarioBuilder& maintenance_flap(double per_step_probability);

  // -- Time --------------------------------------------------------------

  ScenarioBuilder& span(net::SimTime start, net::SimTime end);
  /// Keeps the current start, sets end = start + length.
  ScenarioBuilder& duration(net::SimTime length);
  ScenarioBuilder& step(net::SimTime step);
  ScenarioBuilder& bin_width(net::SimTime width);
  /// Extends the span to cover the seven RSSAC baseline days before the
  /// event (probing still covers only the probe window).
  ScenarioBuilder& include_baseline_week(bool include = true);

  // -- Measurement -------------------------------------------------------

  ScenarioBuilder& vp_count(int count);
  ScenarioBuilder& population(atlas::PopulationConfig config);
  /// Restricts Atlas probing to these letters (empty = all thirteen).
  ScenarioBuilder& probe_letters(std::vector<char> letters);
  /// Explicit probing window. Must lie inside the simulated span; when
  /// never called, the builder clamps the preset's window to the span
  /// instead (so november_2015().duration(12h) just works).
  ScenarioBuilder& probe_window(net::SimInterval window);
  ScenarioBuilder& collect_records(bool enabled);
  ScenarioBuilder& collect_rssac(bool enabled);
  ScenarioBuilder& enable_collector(bool enabled);
  /// Fluid-study shorthand: no probing, no collector, no RSSAC. The
  /// what-if regime comparisons and large campaign grids run this way.
  ScenarioBuilder& fluid_only();

  // -- Finalization ------------------------------------------------------

  /// The config as staged so far, without validation or window clamping.
  const ScenarioConfig& peek() const noexcept { return config_; }

  /// Empty when the staged config is valid, else the first problem.
  /// Checks everything sim::validate does plus the cross-field
  /// invariants: bin width a step multiple, probe window inside the span.
  std::string validate() const;

  /// Returns the validated config; throws std::invalid_argument carrying
  /// the validate() message when an invariant is violated.
  ScenarioConfig build() const;

  /// Non-throwing variant: nullopt on violation, message in *error.
  std::optional<ScenarioConfig> try_build(std::string* error = nullptr) const;

 private:
  /// Applies deferred pieces (attack rate rewrite, baseline extension,
  /// window clamping) to a copy of the staged config.
  ScenarioConfig resolve() const;

  ScenarioConfig config_{};
  std::optional<double> attack_qps_{};
  bool include_baseline_week_ = false;
  bool probe_window_set_ = false;
};

}  // namespace rootstress::sim
