// Scenario factory for the June 25, 2016 follow-up event (§2.3
// "Generalizing"): the same deployment and pipeline, a differently
// shaped attack.
#pragma once

#include "sim/scenario.h"

namespace rootstress::sim {

/// A two-day scenario carrying the single ~3-hour June 2016 pulse.
ScenarioConfig june_2016_scenario(int vp_count = 1200,
                                  double attack_qps = 6e6);

}  // namespace rootstress::sim
