// A small discrete-event queue.
//
// The main engine advances in fixed fluid steps, but tests, examples, and
// extensions need classic DES scheduling (timers, one-shot events); this
// provides it with deterministic FIFO ordering among simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/clock.h"

namespace rootstress::sim {

/// Deterministic discrete-event queue.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `when` (>= now, else clamped to
  /// now).
  void schedule_at(net::SimTime when, Handler handler);

  /// Schedules after a delay from the current time.
  void schedule_in(net::SimTime delay, Handler handler);

  /// Runs events in time order until the queue empties or `until` is
  /// passed (events at exactly `until` run). Returns events executed.
  std::size_t run_until(net::SimTime until);

  /// Runs everything.
  std::size_t run_all();

  net::SimTime now() const noexcept { return now_; }
  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Entry {
    net::SimTime when;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return b.when < a.when;
      return b.seq < a.seq;  // FIFO among simultaneous events
    }
  };

  net::SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace rootstress::sim
