// The simulation engine: couples attack traffic, BGP routing, anycast
// sites, Atlas probing, the route collector, and RSSAC accounting into
// one deterministic run, and returns everything the paper's analyses
// consume.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "anycast/deployment.h"
#include "atlas/cleaning.h"
#include "atlas/population.h"
#include "atlas/record.h"
#include "attack/botnet.h"
#include "attack/traffic.h"
#include "bgp/collector.h"
#include "dns/message.h"
#include "fault/runtime.h"
#include "net/geo.h"
#include "obs/runtime.h"
#include "playbook/controller.h"
#include "resolver/population.h"
#include "rssac/metrics.h"
#include "rssac/report.h"
#include "sim/fluid.h"
#include "sim/scenario.h"
#include "util/parallel.h"
#include "util/time_series.h"

namespace rootstress::sim {

/// Immutable description of one site, copied out of the deployment so
/// analyses do not need the live engine.
struct SiteMeta {
  int site_id = -1;
  char letter = '?';
  std::string code;
  std::string label;  ///< "K-AMS"
  int facility = -1;
  double capacity_qps = 0.0;
  bool global = true;
  net::GeoPoint location{};
  int servers = 0;
};

/// Everything a run produces.
struct SimulationResult {
  net::SimTime start{};
  net::SimTime end{};
  net::SimTime bin_width{};
  net::SimInterval probe_window{};

  /// Letter characters by service index ('A'..'M', then 'N' for .nl).
  std::vector<char> letter_chars;
  std::vector<SiteMeta> sites;
  std::vector<atlas::VantagePoint> vps;

  /// Cleaned measurement records (cleaning stats alongside).
  atlas::RecordSet records;
  atlas::CleaningStats cleaning{};

  /// Per-service fluid series over the whole span (value = q/s means).
  std::vector<util::BinnedSeries> service_offered_qps;
  std::vector<util::BinnedSeries> service_served_qps;
  std::vector<util::BinnedSeries> service_served_legit_qps;
  std::vector<util::BinnedSeries> service_failed_legit_qps;

  /// Per-site fluid series (q/s means) over the whole span.
  std::vector<util::BinnedSeries> site_served_qps;
  std::vector<util::BinnedSeries> site_offered_attack_qps;
  std::vector<util::BinnedSeries> site_loss_fraction;

  /// Full route-change log plus the collector's per-service series.
  std::vector<bgp::RouteChange> route_changes;
  std::vector<util::BinnedSeries> collector_series;

  /// RSSAC accounting (letters only; .nl is not a root letter).
  rssac::DailyAccumulator rssac{13};
  std::vector<rssac::Publisher> rssac_publishers;
  double resolver_pool = 0.0;

  /// What the reactive playbook controller did (all zeros / -1 when the
  /// scenario ran without one): detections, activations, vetoes, and
  /// time-to-first-action, per rule and in total.
  playbook::PlaybookRunStats playbook;

  /// User-experience report from the in-loop resolver population
  /// (enabled == false when the scenario had no resolver_profile). Binned
  /// on the same grid as the fluid series; digests are bit-identical for
  /// any thread count.
  resolver::EndUserReport enduser;

  /// Final telemetry snapshot (empty when ScenarioConfig::telemetry is
  /// off): metrics, phase profile, trace stats. core::write_telemetry()
  /// exports it as JSON.
  obs::Snapshot telemetry;

  /// Service index for a letter char; -1 if absent. O(1) once run() has
  /// built the lookup tables; linear fallback on hand-built results.
  int service_index(char letter) const noexcept;
  /// Site metadata by (letter, code); nullptr if absent. O(1) once run()
  /// has built the lookup tables (analyses call this per record).
  const SiteMeta* find_site(char letter, std::string_view code) const noexcept;
  /// All site ids of one letter.
  std::vector<int> sites_of(char letter) const;

  /// (Re)builds the constant-time lookup tables behind service_index and
  /// find_site from letter_chars/sites. run() calls this once metadata
  /// is final; call it again after mutating either by hand.
  void build_lookup_tables();

 private:
  /// Packs (letter, code) into one key; 0 when the code is too long to
  /// pack (no deployment site is — codes are 3-letter airport codes).
  static std::uint64_t pack_site_key(char letter,
                                     std::string_view code) noexcept;

  /// letter -> service index (256 entries, -1 absent); empty until built.
  std::vector<int> service_lookup_;
  /// packed (letter, code) -> index into `sites`; empty until built.
  std::unordered_map<std::uint64_t, std::size_t> site_lookup_;
};

/// Runs one scenario. Doubles as the playbook controller's actuation
/// backend: the controller decides, the engine applies (scope changes,
/// RRL toggles, capacity scaling, prepends) against the live deployment.
class SimulationEngine : private playbook::ActuationBackend {
 public:
  explicit SimulationEngine(ScenarioConfig config);

  /// Executes the run; call once per engine.
  SimulationResult run();

  const anycast::RootDeployment& deployment() const noexcept {
    return *deployment_;
  }

  /// The run's telemetry runtime; null when ScenarioConfig::telemetry is
  /// off. Valid for the engine's lifetime (e.g. to inspect the trace or
  /// profiler after run()).
  obs::Runtime* telemetry_runtime() noexcept { return obs_.get(); }

  /// Worker lanes the run resolved to (config threads / env / hardware).
  int thread_count() const noexcept { return threads_; }

 private:
  struct PendingReannounce {
    int site_id = -1;
    net::SimTime when{};
  };

  /// One unit of parallel probing: one service over one VP range, with
  /// its own output records (merged in task order after the barrier, so
  /// the record stream is identical to the serial service->VP->time
  /// iteration for any thread count).
  struct ProbeShard {
    int service = -1;
    std::size_t vp_begin = 0;
    std::size_t vp_end = 0;
    /// SoA staging lanes, reused across steps (capacity kept); packed to
    /// AoS ProbeRecords at the deterministic merge.
    atlas::RecordSoA records;
  };

  /// Heterogeneous string hash so CHAOS identity lookups take a
  /// string_view and never build a temporary std::string.
  struct IdentityHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  void apply_policy_step(net::SimTime now, SimulationResult& result);
  void apply_adaptive_defense(net::SimTime now);
  /// Registers the flight recorder's series and schedule-derived spans
  /// (telemetry on only) and caches the handles the per-step recording
  /// phase uses.
  void setup_timeline();
  /// Serial per-step recording phase: folds this step's published loads,
  /// site states, and playbook signals into the timeline. Pure reads of
  /// already-computed state — nothing in the simulation reads the
  /// timeline back, so recording cannot perturb results.
  void record_timeline_step(net::SimTime t);
  /// Advances the fault runtime to `t` and applies whatever injections
  /// came due (site failures/recoveries, BGP session flaps). Serial
  /// phase, before any defense layer runs, so holds are current.
  void apply_fault_step(net::SimTime t);
  /// Builds this step's operator-view observations and runs the playbook
  /// controller (serial phase; decisions are thread-count-invariant).
  void run_playbook_step(net::SimTime now);
  /// playbook::ActuationBackend: applies one due action to the world,
  /// enforcing the last-global-site withdrawal veto.
  playbook::ActuationOutcome actuate(int site_id,
                                     const playbook::Action& action,
                                     net::SimTime now) override;
  /// Counter + trace event for a refused withdrawal (policy veto and
  /// playbook veto share this).
  void note_withdraw_veto(const anycast::AnycastSite& site, net::SimTime now);
  void update_h_root_backup(net::SimTime now);
  void run_fluid_step(net::SimTime t, SimulationResult& result,
                      const std::vector<obs::Gauge*>& g_offered,
                      const std::vector<obs::Gauge*>& g_served,
                      const std::vector<obs::Gauge*>& g_failed_legit);
  /// Steps the in-loop resolver population (no-op when the scenario has
  /// no resolver_profile): builds the letters' answered fractions and
  /// offered-weighted RTTs from the fluid step just completed, applies
  /// the fault schedule's legit demand scale, and advances every
  /// resolver one step. Purely observational for the server side.
  void run_resolver_step(net::SimTime t);
  void run_probes(net::SimTime step_begin, atlas::RecordSet& raw);
  void record_rssac(net::SimTime now, SimulationResult& result);
  void probe_once(const atlas::VantagePoint& vp, int service_index,
                  const std::vector<bgp::RouteChoice>& routes,
                  net::SimTime when, atlas::RecordSoA& out);

  ScenarioConfig config_;
  int threads_ = 1;
  std::unique_ptr<obs::Runtime> obs_;
  std::unique_ptr<anycast::RootDeployment> deployment_;
  attack::Botnet botnet_;
  attack::LegitTraffic legit_;
  std::vector<atlas::VantagePoint> vps_;
  std::optional<bgp::RouteCollector> collector_;
  util::Rng rng_;
  /// Fixed-worker pool for the per-step parallel phases. Always present;
  /// with threads_ == 1 it spawns no workers and parallel_for runs
  /// inline (the exact legacy path).
  std::unique_ptr<util::ThreadPool> pool_;

  // Per-letter legit failures from the previous step (drives retries /
  // letter flips).
  std::vector<double> prev_failed_legit_;
  std::vector<PendingReannounce> pending_reannounce_;
  std::vector<int> probed_services_;           ///< service indices probed
  std::vector<std::int64_t> probe_interval_ms_;  ///< per service
  /// Per-service load buffers, preallocated once in run() and rewritten
  /// in place every step (pass 1 writes them in parallel).
  std::vector<ServiceLoad> current_loads_;
  /// Per-service (facility, Gb/s) contributions staged by pass 1 and
  /// merged into the facility table in service order — the merge order,
  /// and therefore every floating-point sum, is thread-count-invariant.
  std::vector<std::vector<std::pair<int, double>>> facility_contrib_;
  /// Parallel probing shards, service-major then VP-ascending.
  std::vector<ProbeShard> probe_shards_;
  /// Cached decoded CHAOS query per service: built (encode + decode wire
  /// once) at construction instead of per probe. The message id is fixed
  /// per service; replies echo it but nothing downstream reads it.
  std::vector<dns::Message> chaos_query_;
  const attack::AttackEvent* active_event_ = nullptr;
  /// CHAOS identity text -> (site id << 8 | server index): one entry per
  /// deployed server, interned at construction so mapping a reply back
  /// to its site is a single allocation-free hash lookup (replaces the
  /// per-probe "X-CODE" key string + parse).
  std::unordered_map<std::string, std::uint32_t, IdentityHash,
                     std::equal_to<>>
      site_by_identity_;
  /// Adaptive defense: last meaningful offered load per site, used as the
  /// would-be load of withdrawn sites (slowly decayed) so the controller
  /// does not flap between withdraw and re-announce.
  std::vector<double> adaptive_last_offered_;
  /// Per-site time of the controller's last scope change (20-min
  /// cool-down between decisions).
  std::vector<net::SimTime> adaptive_last_change_;
  /// Reactive playbook controller (null when the scenario has none) and
  /// its per-step observation buffer (reused; indexed by site id).
  std::unique_ptr<playbook::PlaybookController> playbook_;
  std::vector<playbook::SiteObservation> playbook_obs_;
  /// Fault/chaos runtime (null when the scenario's fault schedule is
  /// empty). Mutated only in the serial fault-injection phase.
  std::unique_ptr<fault::FaultRuntime> fault_;
  /// In-loop resolver population (null when the scenario has no
  /// resolver_profile). Stepped in a serial phase right after the fluid
  /// pass; internally parallel over a thread-count-independent shard
  /// layout.
  std::unique_ptr<resolver::ResolverPopulation> resolver_pop_;
  /// Reused per-step input buffers for the population (letters only).
  std::array<double, resolver::kLetterCount> resolver_success_{};
  std::array<double, resolver::kLetterCount> resolver_rtt_ms_{};
  /// Whether the last step sat inside a hot pulse window (edge detector
  /// for the pulse-on/pulse-off trace instants; telemetry-only).
  bool fault_pulse_hot_ = false;

  /// Flight recorder (owned by obs_; null when telemetry is off) and the
  /// series handles setup_timeline() registered. tl_site_* / tl_pb_loss_
  /// are indexed by site id, the rest by service / rule index.
  obs::Timeline* timeline_ = nullptr;
  std::vector<std::size_t> tl_letter_offered_;
  std::vector<std::size_t> tl_letter_served_;
  std::vector<std::size_t> tl_letter_answered_;
  std::vector<std::size_t> tl_letter_delay_;
  std::vector<std::size_t> tl_letter_announced_;
  std::vector<std::size_t> tl_site_answered_;
  std::vector<std::size_t> tl_site_offered_;
  std::vector<std::size_t> tl_site_state_;
  std::vector<std::size_t> tl_pb_loss_;
  std::vector<std::size_t> tl_pb_rule_fired_;
  std::size_t tl_pb_detected_ = 0;
  /// End-user (resolver population) series; registered only when both
  /// telemetry and a resolver profile are on.
  std::size_t tl_eu_success_ = 0;
  std::size_t tl_eu_cache_hit_ = 0;
  std::size_t tl_eu_root_qps_ = 0;
  std::size_t tl_eu_latency_ = 0;
  std::size_t tl_eu_retries_ = 0;
  /// Last-seen per-rule fired totals (rule firings are recorded as
  /// per-step deltas into a kSum series).
  std::vector<std::uint64_t> tl_prev_rule_fired_;
  /// Open playbook hold-window span per site (Timeline::npos = none).
  std::vector<std::size_t> tl_hold_span_;
  /// Per-service step aggregates staged by fluid pass 2 (lane-private
  /// writes) for the serial recording phase. Sized in run() regardless of
  /// telemetry so pass 2 stays branchless.
  std::vector<double> step_offered_;
  std::vector<double> step_served_;
  std::vector<double> step_served_legit_;
};

}  // namespace rootstress::sim
