// The simulation engine: couples attack traffic, BGP routing, anycast
// sites, Atlas probing, the route collector, and RSSAC accounting into
// one deterministic run, and returns everything the paper's analyses
// consume.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "anycast/deployment.h"
#include "atlas/cleaning.h"
#include "atlas/population.h"
#include "atlas/record.h"
#include "attack/botnet.h"
#include "attack/traffic.h"
#include "bgp/collector.h"
#include "net/geo.h"
#include "obs/runtime.h"
#include "rssac/metrics.h"
#include "rssac/report.h"
#include "sim/fluid.h"
#include "sim/scenario.h"
#include "util/time_series.h"

namespace rootstress::sim {

/// Immutable description of one site, copied out of the deployment so
/// analyses do not need the live engine.
struct SiteMeta {
  int site_id = -1;
  char letter = '?';
  std::string code;
  std::string label;  ///< "K-AMS"
  int facility = -1;
  double capacity_qps = 0.0;
  bool global = true;
  net::GeoPoint location{};
  int servers = 0;
};

/// Everything a run produces.
struct SimulationResult {
  net::SimTime start{};
  net::SimTime end{};
  net::SimTime bin_width{};
  net::SimInterval probe_window{};

  /// Letter characters by service index ('A'..'M', then 'N' for .nl).
  std::vector<char> letter_chars;
  std::vector<SiteMeta> sites;
  std::vector<atlas::VantagePoint> vps;

  /// Cleaned measurement records (cleaning stats alongside).
  atlas::RecordSet records;
  atlas::CleaningStats cleaning{};

  /// Per-service fluid series over the whole span (value = q/s means).
  std::vector<util::BinnedSeries> service_offered_qps;
  std::vector<util::BinnedSeries> service_served_qps;
  std::vector<util::BinnedSeries> service_served_legit_qps;
  std::vector<util::BinnedSeries> service_failed_legit_qps;

  /// Per-site fluid series (q/s means) over the whole span.
  std::vector<util::BinnedSeries> site_served_qps;
  std::vector<util::BinnedSeries> site_offered_attack_qps;
  std::vector<util::BinnedSeries> site_loss_fraction;

  /// Full route-change log plus the collector's per-service series.
  std::vector<bgp::RouteChange> route_changes;
  std::vector<util::BinnedSeries> collector_series;

  /// RSSAC accounting (letters only; .nl is not a root letter).
  rssac::DailyAccumulator rssac{13};
  std::vector<rssac::Publisher> rssac_publishers;
  double resolver_pool = 0.0;

  /// Final telemetry snapshot (empty when ScenarioConfig::telemetry is
  /// off): metrics, phase profile, trace stats. core::write_telemetry()
  /// exports it as JSON.
  obs::Snapshot telemetry;

  /// Service index for a letter char; -1 if absent.
  int service_index(char letter) const noexcept;
  /// Site metadata by (letter, code); nullptr if absent.
  const SiteMeta* find_site(char letter, std::string_view code) const noexcept;
  /// All site ids of one letter.
  std::vector<int> sites_of(char letter) const;
};

/// Runs one scenario.
class SimulationEngine {
 public:
  explicit SimulationEngine(ScenarioConfig config);

  /// Executes the run; call once per engine.
  SimulationResult run();

  const anycast::RootDeployment& deployment() const noexcept {
    return *deployment_;
  }

  /// The run's telemetry runtime; null when ScenarioConfig::telemetry is
  /// off. Valid for the engine's lifetime (e.g. to inspect the trace or
  /// profiler after run()).
  obs::Runtime* telemetry_runtime() noexcept { return obs_.get(); }

 private:
  struct PendingReannounce {
    int site_id = -1;
    net::SimTime when{};
  };

  void apply_policy_step(net::SimTime now, SimulationResult& result);
  void apply_adaptive_defense(net::SimTime now);
  void update_h_root_backup(net::SimTime now);
  void run_probes(net::SimTime step_begin, atlas::RecordSet& raw);
  void record_rssac(net::SimTime now, SimulationResult& result);
  void probe_once(const atlas::VantagePoint& vp, int service_index,
                  const std::vector<bgp::RouteChoice>& routes,
                  net::SimTime when, atlas::RecordSet& raw);

  ScenarioConfig config_;
  std::unique_ptr<obs::Runtime> obs_;
  std::unique_ptr<anycast::RootDeployment> deployment_;
  attack::Botnet botnet_;
  attack::LegitTraffic legit_;
  std::vector<atlas::VantagePoint> vps_;
  std::optional<bgp::RouteCollector> collector_;
  util::Rng rng_;

  // Per-letter legit failures from the previous step (drives retries /
  // letter flips).
  std::vector<double> prev_failed_legit_;
  std::vector<PendingReannounce> pending_reannounce_;
  std::vector<int> probed_services_;           ///< service indices probed
  std::vector<std::int64_t> probe_interval_ms_;  ///< per service
  std::vector<ServiceLoad> current_loads_;
  const attack::AttackEvent* active_event_ = nullptr;
  /// (letter, code) -> site id for CHAOS reply mapping.
  std::unordered_map<std::string, int> site_by_identity_;
  /// Adaptive defense: last meaningful offered load per site, used as the
  /// would-be load of withdrawn sites (slowly decayed) so the controller
  /// does not flap between withdraw and re-announce.
  std::vector<double> adaptive_last_offered_;
  /// Per-site time of the controller's last scope change (20-min
  /// cool-down between decisions).
  std::vector<net::SimTime> adaptive_last_change_;
};

}  // namespace rootstress::sim
