#include "sim/engine.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "dns/chaos.h"
#include "dns/rrl.h"
#include "dns/wire.h"
#include "anycast/defense.h"
#include "obs/exporters.h"
#include "sim/probe_rng.h"
#include "util/logging.h"

namespace rootstress::sim {

namespace {

constexpr int kHeavyHitters = 200;

std::size_t bins_for(net::SimTime start, net::SimTime end,
                     net::SimTime width) {
  const auto span = (end - start).ms;
  return static_cast<std::size_t>((span + width.ms - 1) / width.ms);
}

}  // namespace

std::uint64_t SimulationResult::pack_site_key(char letter,
                                              std::string_view code) noexcept {
  if (code.size() > 7) return 0;
  std::uint64_t key = static_cast<unsigned char>(letter);
  for (const char c : code) {
    key = (key << 8) | static_cast<unsigned char>(c);
  }
  return key;
}

void SimulationResult::build_lookup_tables() {
  service_lookup_.assign(256, -1);
  for (std::size_t i = 0; i < letter_chars.size(); ++i) {
    service_lookup_[static_cast<unsigned char>(letter_chars[i])] =
        static_cast<int>(i);
  }
  site_lookup_.clear();
  site_lookup_.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const std::uint64_t key = pack_site_key(sites[i].letter, sites[i].code);
    if (key == 0) {
      // A code too long to pack (never true for deployment sites): keep
      // every lookup on the linear fallback rather than miss entries.
      service_lookup_.clear();
      site_lookup_.clear();
      return;
    }
    site_lookup_.emplace(key, i);
  }
}

int SimulationResult::service_index(char letter) const noexcept {
  if (!service_lookup_.empty()) {
    return service_lookup_[static_cast<unsigned char>(letter)];
  }
  for (std::size_t i = 0; i < letter_chars.size(); ++i) {
    if (letter_chars[i] == letter) return static_cast<int>(i);
  }
  return -1;
}

const SiteMeta* SimulationResult::find_site(
    char letter, std::string_view code) const noexcept {
  if (!site_lookup_.empty()) {
    const std::uint64_t key = pack_site_key(letter, code);
    const auto it = site_lookup_.find(key);
    return it == site_lookup_.end() ? nullptr : &sites[it->second];
  }
  for (const auto& site : sites) {
    if (site.letter == letter && site.code == code) return &site;
  }
  return nullptr;
}

std::vector<int> SimulationResult::sites_of(char letter) const {
  std::vector<int> out;
  for (const auto& site : sites) {
    if (site.letter == letter) out.push_back(site.site_id);
  }
  return out;
}

SimulationEngine::SimulationEngine(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed ^ 0xe6917e) {
  if (const std::string problem = validate(config_); !problem.empty()) {
    throw std::invalid_argument("invalid scenario: " + problem);
  }
  threads_ = util::resolve_thread_count(config_.threads);
  pool_ = std::make_unique<util::ThreadPool>(threads_);
  if (config_.telemetry) obs_ = std::make_unique<obs::Runtime>();
  obs::PhaseProfiler::Scope build_phase(
      obs_ ? &obs_->profiler() : nullptr, "topology-build");

  anycast::RootDeployment::Config dep = config_.deployment;
  dep.seed = config_.seed;
  deployment_ = std::make_unique<anycast::RootDeployment>(dep);

  attack::BotnetConfig bot = config_.botnet;
  bot.seed = config_.seed ^ 0xb07;
  botnet_ = attack::Botnet::build(deployment_->topology(), bot);

  attack::LegitConfig leg = config_.legit;
  leg.seed = config_.seed ^ 0x1e617;
  legit_ = attack::LegitTraffic::build(deployment_->topology(), leg);

  atlas::PopulationConfig pop = config_.population;
  pop.seed = config_.seed ^ 0xa71a5;
  vps_ = atlas::make_population(deployment_->topology(), pop);

  // Which services do Atlas VPs probe?
  const auto& services = deployment_->services();
  for (std::size_t s = 0; s < services.size(); ++s) {
    const char letter = services[s].letter;
    if (letter == 'N') continue;  // .nl is not probed by the root mesh
    if (!config_.probe_letters.empty() &&
        std::find(config_.probe_letters.begin(), config_.probe_letters.end(),
                  letter) == config_.probe_letters.end()) {
      continue;
    }
    probed_services_.push_back(static_cast<int>(s));
  }
  probe_interval_ms_.assign(services.size(), 240'000);
  for (std::size_t s = 0; s < services.size(); ++s) {
    if (services[s].letter_index >= 0) {
      const auto& cfg = deployment_->letters()[static_cast<std::size_t>(
          services[s].letter_index)];
      probe_interval_ms_[s] =
          static_cast<std::int64_t>(cfg.probe_interval_s * 1000.0);
    }
  }

  // Intern every deployed server's CHAOS identity once: replies map back
  // to (site, server) with one hash lookup, no per-probe parsing.
  for (int id = 0; id < deployment_->site_count(); ++id) {
    auto& site = deployment_->site(id);
    for (int srv = 0; srv < site.server_count(); ++srv) {
      site_by_identity_.emplace(
          site.server(srv).dns().identity(),
          (static_cast<std::uint32_t>(id) << 8) |
              static_cast<std::uint32_t>(site.server(srv).index() & 0xff));
    }
  }

  // Cache the CHAOS query per service: encoded to wire and decoded back
  // exactly once, instead of per probe. The fixed per-service message id
  // is echoed in replies but consumed by nothing.
  chaos_query_.reserve(services.size());
  for (std::size_t s = 0; s < services.size(); ++s) {
    const auto wire = dns::encode(dns::make_chaos_query(
        static_cast<std::uint16_t>(0x5250u + s)));
    auto decoded = dns::decode(wire);
    chaos_query_.push_back(std::move(*decoded));
  }

  if (config_.enable_collector) {
    bgp::CollectorConfig cc = config_.collector;
    cc.seed = config_.seed ^ 0xc011ec;
    collector_.emplace(deployment_->topology(), cc,
                       static_cast<int>(services.size()), config_.start,
                       config_.bin_width,
                       bins_for(config_.start, config_.end, config_.bin_width));
  }
  prev_failed_legit_.assign(services.size(), 0.0);

  if (config_.playbook.has_value()) {
    playbook_ = std::make_unique<playbook::PlaybookController>(
        *config_.playbook,
        static_cast<std::size_t>(deployment_->site_count()));
  }

  if (!config_.fault_schedule.empty()) {
    fault_ = std::make_unique<fault::FaultRuntime>(config_.fault_schedule,
                                                   *deployment_);
  }

  if (config_.resolver_profile.has_value()) {
    resolver_pop_ = std::make_unique<resolver::ResolverPopulation>(
        *config_.resolver_profile, config_.seed, config_.start, config_.end,
        config_.step, config_.bin_width);
  }

  if (obs_) {
    deployment_->attach_obs(obs_.get());
    if (collector_) collector_->attach_obs(obs_.get());
    if (playbook_) playbook_->attach_obs(obs_.get());
  }
}

SimulationResult SimulationEngine::run() {
  obs::PhaseProfiler* const prof = obs_ ? &obs_->profiler() : nullptr;
  // Route log lines into the trace while the run is live, so a flushed
  // trace interleaves structured events with whatever was logged.
  if (obs_) obs_->trace().attach_logger();

  SimulationResult result;
  result.start = config_.start;
  result.end = config_.end;
  result.bin_width = config_.bin_width;
  result.probe_window = config_.probe_window;
  result.resolver_pool = config_.legit.resolver_pool;

  const auto& services = deployment_->services();
  const std::size_t bins = bins_for(config_.start, config_.end,
                                    config_.bin_width);
  for (const auto& svc : services) {
    result.letter_chars.push_back(svc.letter);
    result.service_offered_qps.emplace_back(config_.start.ms,
                                            config_.bin_width.ms, bins);
    result.service_served_qps.emplace_back(config_.start.ms,
                                           config_.bin_width.ms, bins);
    result.service_served_legit_qps.emplace_back(config_.start.ms,
                                                 config_.bin_width.ms, bins);
    result.service_failed_legit_qps.emplace_back(config_.start.ms,
                                                 config_.bin_width.ms, bins);
  }
  for (int id = 0; id < deployment_->site_count(); ++id) {
    const auto& site = deployment_->site(id);
    SiteMeta meta;
    meta.site_id = id;
    meta.letter = site.letter();
    meta.code = site.code();
    meta.label = site.label();
    meta.facility = site.facility();
    meta.capacity_qps = site.spec().capacity_qps;
    meta.global = site.spec().global;
    meta.location = site.location();
    meta.servers = site.server_count();
    result.sites.push_back(std::move(meta));
    result.site_served_qps.emplace_back(config_.start.ms,
                                        config_.bin_width.ms, bins);
    result.site_offered_attack_qps.emplace_back(config_.start.ms,
                                                config_.bin_width.ms, bins);
    result.site_loss_fraction.emplace_back(config_.start.ms,
                                           config_.bin_width.ms, bins);
  }
  result.vps = vps_;
  result.build_lookup_tables();
  for (const auto& cfg : deployment_->letters()) {
    if (cfg.rssac_reporting) {
      result.rssac_publishers.push_back(rssac::Publisher{
          cfg.letter, result.service_index(cfg.letter)});
    }
  }

  // Preallocate the per-step buffers the parallel phases write into;
  // every step reuses them in place (no per-step allocation).
  const auto site_count = static_cast<std::size_t>(deployment_->site_count());
  current_loads_.resize(services.size());
  for (auto& load : current_loads_) {
    // site_count + 1: trailing sink lane for the SoA fluid kernels.
    load.attack_qps.assign(site_count + 1, 0.0);
    load.legit_qps.assign(site_count + 1, 0.0);
  }
  facility_contrib_.resize(services.size());
  step_offered_.assign(services.size(), 0.0);
  step_served_.assign(services.size(), 0.0);
  step_served_legit_.assign(services.size(), 0.0);
  setup_timeline();
  probe_shards_.clear();
  if (config_.collect_records && !vps_.empty()) {
    // Service-major, VP-ascending: concatenating shard outputs in this
    // order reproduces the serial record stream exactly.
    const std::size_t shard_count = std::min(
        vps_.size(),
        threads_ > 1 ? static_cast<std::size_t>(threads_) * 4 : std::size_t{1});
    for (const int s : probed_services_) {
      for (std::size_t shard = 0; shard < shard_count; ++shard) {
        ProbeShard task;
        task.service = s;
        task.vp_begin = vps_.size() * shard / shard_count;
        task.vp_end = vps_.size() * (shard + 1) / shard_count;
        if (task.vp_begin == task.vp_end) continue;
        probe_shards_.push_back(std::move(task));
      }
    }
  }

  // Per-service instruments (cached pointers; null when telemetry is off).
  std::vector<obs::Gauge*> g_offered(services.size(), nullptr);
  std::vector<obs::Gauge*> g_served(services.size(), nullptr);
  std::vector<obs::Gauge*> g_failed_legit(services.size(), nullptr);
  std::vector<obs::Counter*> c_catchment(services.size(), nullptr);
  std::vector<char> prefix_letter(services.size(), '?');
  obs::Counter* c_steps = nullptr;
  if (obs_) {
    auto& metrics = obs_->metrics();
    c_steps = &metrics.counter("sim.steps", {{"component", "engine"}});
    metrics.gauge("parallel.workers", {{"component", "engine"}})
        .set(static_cast<double>(threads_));
    for (std::size_t s = 0; s < services.size(); ++s) {
      const obs::Labels labels{
          {"letter", std::string(1, services[s].letter)}};
      g_offered[s] = &metrics.gauge("service.offered_queries", labels);
      g_served[s] = &metrics.gauge("service.served_queries", labels);
      g_failed_legit[s] =
          &metrics.gauge("service.failed_legit_queries", labels);
      // Catchment instruments are indexed by prefix id (what the routing
      // observer reports), which matches service order by construction
      // but is kept explicit here.
      if (services[s].prefix >= 0 &&
          services[s].prefix < static_cast<int>(prefix_letter.size())) {
        const auto p = static_cast<std::size_t>(services[s].prefix);
        prefix_letter[p] = services[s].letter;
        c_catchment[p] = &metrics.counter("bgp.catchment_moves", labels);
      }
    }
  }

  deployment_->routing().set_observer(
      [this, &result, &c_catchment,
       &prefix_letter](int prefix, const std::vector<bgp::RouteChange>& changes) {
        result.route_changes.insert(result.route_changes.end(),
                                    changes.begin(), changes.end());
        if (collector_) collector_->observe(prefix, changes);
        if (obs_ && prefix >= 0 &&
            prefix < static_cast<int>(prefix_letter.size()) &&
            !changes.empty()) {
          const auto p = static_cast<std::size_t>(prefix);
          if (c_catchment[p] != nullptr) c_catchment[p]->add(changes.size());
          obs_->event(obs::TraceEventType::kCatchmentFlip,
                      changes.front().time, prefix_letter[p],
                      std::string(1, prefix_letter[p]),
                      std::to_string(changes.size()) + " ASes changed site",
                      static_cast<double>(changes.size()));
        }
      });

  atlas::RecordSet raw;
  if (config_.collect_records) {
    // Rough pre-size: probes per (VP, letter) across the probe window.
    const double window_s = (config_.probe_window.end -
                             config_.probe_window.begin).seconds();
    std::size_t expected = 0;
    for (int s : probed_services_) {
      expected += vps_.size() *
                  static_cast<std::size_t>(std::max(
                      1.0, window_s / (static_cast<double>(
                                          probe_interval_ms_[s]) /
                                      1000.0)));
    }
    raw.reserve(expected + expected / 8);
  }

  const net::SimTime step = config_.step;
  for (net::SimTime t = config_.start; t < config_.end; t = t + step) {
    if (c_steps != nullptr) c_steps->add();
    // Scheduled faults land before anything else this step, so every
    // defense layer below sees (and must live with) the injected state,
    // and holds_site() answers for the current step.
    if (fault_) {
      obs::PhaseProfiler::Scope fault_phase(prof, "fault-injection");
      apply_fault_step(t);
    }
    // Maintenance flaps come back up first. Due entries are applied in
    // insertion order (same as the old erase-in-loop scan) and swept out
    // with one stable O(n) pass instead of an O(n^2) vector::erase per
    // due entry.
    if (!pending_reannounce_.empty()) {
      for (const PendingReannounce& pending : pending_reannounce_) {
        if (pending.when > t) continue;
        const int id = pending.site_id;
        auto& site = deployment_->site(id);
        // Sites the playbook withdrew stay down until its restore rule
        // fires — a maintenance timer must not undo a deliberate defense.
        // Likewise sites a hardware fault pins down.
        if (playbook_ && playbook_->holds(id)) continue;
        if (fault_ && fault_->holds_site(id)) continue;
        if (!site.policy_state().withdrawn()) {
          deployment_->apply_scope(id,
                                   site.spec().global
                                       ? anycast::SiteScope::kGlobal
                                       : anycast::SiteScope::kLocalOnly,
                                   t);
        }
      }
      std::erase_if(pending_reannounce_,
                    [t](const PendingReannounce& p) { return p.when <= t; });
    }

    active_event_ =
        fault_ ? fault_->shape(t, config_.schedule) : config_.schedule.active(t);
    deployment_->facilities().begin_step();

    {
      obs::PhaseProfiler::Scope fluid_phase(prof, "fluid-stepping");
      run_fluid_step(t, result, g_offered, g_served, g_failed_legit);
    }

    if (resolver_pop_) {
      // Clients react to the state the fluid pass just published: the
      // letters' live answered fractions and queue delays. Reads only;
      // nothing server-side depends on the population.
      obs::PhaseProfiler::Scope resolver_phase(prof, "resolver-population");
      run_resolver_step(t);
    }

    if (config_.collect_rssac) {
      obs::PhaseProfiler::Scope rssac_phase(prof, "rssac-accounting");
      record_rssac(t, result);
    }

    if (config_.collect_records &&
        config_.probe_window.begin < t + step &&
        t < config_.probe_window.end) {
      obs::PhaseProfiler::Scope probe_phase(prof, "atlas-probing");
      run_probes(t, raw);
    }

    {
      obs::PhaseProfiler::Scope policy_phase(prof, "defense-policy");
      // The reactive controller decides first, on this step's
      // observations; the static per-site policies then run over whatever
      // the playbook does not hold.
      if (playbook_) run_playbook_step(t);
      if (config_.adaptive_defense) {
        apply_adaptive_defense(t);
      } else {
        apply_policy_step(t, result);
      }
      update_h_root_backup(t);
    }

    if (timeline_ != nullptr) {
      // After defense-policy, so announce states and playbook signals
      // reflect this step's decisions.
      obs::PhaseProfiler::Scope record_phase(prof, "timeline-record");
      record_timeline_step(t);
    }

    // Background maintenance churn.
    if (rng_.chance(config_.maintenance_flap_per_step)) {
      const int id =
          static_cast<int>(rng_.below(
              static_cast<std::uint64_t>(deployment_->site_count())));
      auto& site = deployment_->site(id);
      const auto normal = site.spec().global ? anycast::SiteScope::kGlobal
                                             : anycast::SiteScope::kLocalOnly;
      if (site.scope() == normal && !site.policy_state().withdrawn()) {
        deployment_->apply_scope(id, anycast::SiteScope::kDown, t);
        pending_reannounce_.push_back(
            PendingReannounce{id, t + net::SimTime::from_minutes(10)});
      }
    }
  }

  {
    // Data cleaning (§2.4.1): firmware + hijack rules.
    obs::PhaseProfiler::Scope cleaning_phase(prof, "cleaning");
    const auto keep = atlas::select_vps(vps_, raw, &result.cleaning);
    result.records = atlas::filter_records(raw, keep, &result.cleaning);
  }

  if (collector_) {
    for (std::size_t s = 0; s < services.size(); ++s) {
      result.collector_series.push_back(
          collector_->series(services[s].prefix));
    }
  }

  if (playbook_) {
    result.playbook = playbook_->stats();
    if (obs_) {
      const std::int64_t lag = result.playbook.detection_lag_ms();
      obs_->metrics()
          .gauge("playbook.detection_lag_bins")
          .set(lag < 0 ? -1.0
                       : static_cast<double>(lag) /
                             static_cast<double>(config_.bin_width.ms));
    }
  }

  if (resolver_pop_) {
    result.enduser = resolver_pop_->report();
    if (obs_) {
      auto& metrics = obs_->metrics();
      metrics.gauge("enduser.success_rate").set(result.enduser.success_rate());
      metrics.gauge("enduser.cache_hit_rate")
          .set(result.enduser.cache_hit_rate());
      metrics.gauge("enduser.added_latency_ms")
          .set(result.enduser.added_latency_ms());
      metrics.gauge("enduser.retries_per_query")
          .set(result.enduser.retries_per_query());
    }
  }

  if (obs_) {
    // Pool lifetime counters: one engine runs once, so the totals are
    // this run's totals.
    auto& metrics = obs_->metrics();
    metrics.counter("parallel.tasks", {{"component", "engine"}})
        .add(pool_->tasks_executed());
    metrics.counter("parallel.dispatches", {{"component", "engine"}})
        .add(pool_->dispatches());
    // Flush the trace when asked, then snapshot; the snapshot counts the
    // flush log line too, which is fine — telemetry observes itself last.
    if (const char* path = std::getenv("ROOTSTRESS_TRACE");
        path != nullptr && *path != '\0') {
      if (obs_->trace().flush_to_file(path)) {
        RS_LOG_INFO << "trace flushed to " << path;
      } else {
        RS_LOG_ERROR << "could not write trace to " << path;
      }
    }
    obs_->trace().detach_logger();
    result.telemetry = obs_->snapshot(config_.end);

    // External-format exports next to the trace flush. Atomic writes
    // (temp + rename): campaign cells sharing one destination path never
    // leave a torn file, and the last completed run wins.
    if (const char* path = std::getenv("ROOTSTRESS_PERFETTO");
        path != nullptr && *path != '\0') {
      const std::string trace_json = obs::perfetto_trace_json(
          result.telemetry, obs_->trace().events());
      if (obs::write_text_file(path, trace_json)) {
        RS_LOG_INFO << "perfetto trace written to " << path;
      } else {
        RS_LOG_ERROR << "could not write perfetto trace to " << path;
      }
    }
    if (const char* path = std::getenv("ROOTSTRESS_PROM");
        path != nullptr && *path != '\0') {
      if (obs::write_text_file(path,
                               obs::prometheus_text(result.telemetry.metrics))) {
        RS_LOG_INFO << "prometheus metrics written to " << path;
      } else {
        RS_LOG_ERROR << "could not write prometheus metrics to " << path;
      }
    }
  }
  return result;
}

void SimulationEngine::setup_timeline() {
  if (!obs_) return;
  timeline_ =
      &obs_->make_timeline(config_.start, config_.end, config_.bin_width);
  const auto& services = deployment_->services();
  const auto site_count = static_cast<std::size_t>(deployment_->site_count());

  tl_letter_offered_.resize(services.size());
  tl_letter_served_.resize(services.size());
  tl_letter_answered_.resize(services.size());
  tl_letter_delay_.resize(services.size());
  tl_letter_announced_.resize(services.size());
  for (std::size_t s = 0; s < services.size(); ++s) {
    const char letter = services[s].letter;
    tl_letter_offered_[s] = timeline_->add_series(
        "letter.offered_qps", letter, {}, obs::SeriesAgg::kMean);
    tl_letter_served_[s] = timeline_->add_series(
        "letter.served_qps", letter, {}, obs::SeriesAgg::kMean);
    tl_letter_answered_[s] = timeline_->add_series(
        "letter.answered_fraction", letter, {}, obs::SeriesAgg::kMean);
    tl_letter_delay_[s] = timeline_->add_series(
        "letter.queue_delay_ms", letter, {}, obs::SeriesAgg::kMean);
    tl_letter_announced_[s] = timeline_->add_series(
        "letter.announced_sites", letter, {}, obs::SeriesAgg::kLast);
  }

  tl_site_answered_.resize(site_count);
  tl_site_offered_.resize(site_count);
  tl_site_state_.resize(site_count);
  for (std::size_t id = 0; id < site_count; ++id) {
    const auto& site = deployment_->site(static_cast<int>(id));
    tl_site_answered_[id] =
        timeline_->add_series("site.answered_fraction", site.letter(),
                              site.label(), obs::SeriesAgg::kMean);
    tl_site_offered_[id] =
        timeline_->add_series("site.offered_qps", site.letter(), site.label(),
                              obs::SeriesAgg::kMean);
    tl_site_state_[id] =
        timeline_->add_series("site.announce_state", site.letter(),
                              site.label(), obs::SeriesAgg::kLast);
  }

  if (playbook_) {
    tl_pb_detected_ = timeline_->add_series("playbook.detected_sites", 0, {},
                                            obs::SeriesAgg::kLast);
    tl_pb_loss_.resize(site_count);
    for (std::size_t id = 0; id < site_count; ++id) {
      const auto& site = deployment_->site(static_cast<int>(id));
      tl_pb_loss_[id] =
          timeline_->add_series("playbook.loss_ema", site.letter(),
                                site.label(), obs::SeriesAgg::kLast);
    }
    const auto& rules = playbook_->stats().rules;
    tl_pb_rule_fired_.resize(rules.size());
    tl_prev_rule_fired_.assign(rules.size(), 0);
    for (std::size_t r = 0; r < rules.size(); ++r) {
      tl_pb_rule_fired_[r] = timeline_->add_series(
          "playbook.rule_fired", 0, rules[r].name, obs::SeriesAgg::kSum);
    }
  }
  if (resolver_pop_) {
    tl_eu_success_ = timeline_->add_series("enduser.success_fraction", 0, {},
                                           obs::SeriesAgg::kMean);
    tl_eu_cache_hit_ = timeline_->add_series("enduser.cache_hit_fraction", 0,
                                             {}, obs::SeriesAgg::kMean);
    tl_eu_root_qps_ = timeline_->add_series("enduser.root_qps", 0, {},
                                            obs::SeriesAgg::kMean);
    tl_eu_latency_ = timeline_->add_series("enduser.added_latency_ms", 0, {},
                                           obs::SeriesAgg::kMean);
    tl_eu_retries_ = timeline_->add_series("enduser.retries", 0, {},
                                           obs::SeriesAgg::kSum);
  }

  tl_hold_span_.assign(site_count, obs::Timeline::npos);

  // Schedule-derived labels: fault-injector windows plus the base attack
  // events — the ground truth later dataset export labels bins with.
  for (auto& span : fault::timeline_spans(config_.fault_schedule)) {
    timeline_->add_span(std::move(span));
  }
  for (const auto& event : config_.schedule.events()) {
    obs::TimelineSpan span;
    span.category = "attack";
    span.name = event.qname.empty() ? "attack-event" : event.qname;
    span.begin = event.when.begin;
    span.end = event.when.end;
    timeline_->add_span(std::move(span));
  }
}

void SimulationEngine::record_timeline_step(net::SimTime t) {
  const auto& services = deployment_->services();
  for (std::size_t s = 0; s < services.size(); ++s) {
    const auto& svc = services[s];
    const auto& load = current_loads_[s];
    timeline_->record(tl_letter_offered_[s], t, step_offered_[s]);
    timeline_->record(tl_letter_served_[s], t, step_served_[s]);
    // Answered fraction weighs legit traffic only (the paper's user-view
    // reachability); failed includes unrouted legit from pass 2.
    const double denom = step_served_legit_[s] + prev_failed_legit_[s];
    timeline_->record(tl_letter_answered_[s], t,
                      denom > 0.0 ? step_served_legit_[s] / denom : 1.0);
    double weighted_delay = 0.0;
    double offered_across = 0.0;
    int announced = 0;
    for (int id : svc.site_ids) {
      const auto& site = deployment_->site(id);
      const auto idx = static_cast<std::size_t>(id);
      const double offered = load.attack_qps[idx] + load.legit_qps[idx];
      timeline_->record(tl_site_answered_[idx], t,
                        offered > 0.0 ? 1.0 - site.arrival_loss() : 1.0);
      timeline_->record(tl_site_offered_[idx], t, offered);
      timeline_->record(tl_site_state_[idx], t,
                        anycast::scope_level(site.scope()));
      if (site.scope() != anycast::SiteScope::kDown) ++announced;
      weighted_delay += site.outcome().queue_delay_ms * offered;
      offered_across += offered;
    }
    // Offered-weighted mean queue delay: the letter's RTT inflation as
    // its clients experience it.
    timeline_->record(
        tl_letter_delay_[s], t,
        offered_across > 0.0 ? weighted_delay / offered_across : 0.0);
    timeline_->record(tl_letter_announced_[s], t,
                      static_cast<double>(announced));
  }

  if (playbook_) {
    const auto& estimator = playbook_->estimator();
    timeline_->record(tl_pb_detected_, t,
                      static_cast<double>(estimator.detected_count()));
    for (std::size_t id = 0; id < tl_pb_loss_.size(); ++id) {
      timeline_->record(tl_pb_loss_[id], t, estimator.site(id).loss_ema);
    }
    const auto& rules = playbook_->stats().rules;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      const std::uint64_t delta = rules[r].fired - tl_prev_rule_fired_[r];
      if (delta > 0) {
        timeline_->record(tl_pb_rule_fired_[r], t,
                          static_cast<double>(delta));
      }
      tl_prev_rule_fired_[r] = rules[r].fired;
    }
  }

  if (resolver_pop_) {
    const auto& step = resolver_pop_->last_step();
    if (step.client_queries > 0) {
      const double q = static_cast<double>(step.client_queries);
      timeline_->record(tl_eu_success_, t,
                        (q - static_cast<double>(step.failures)) / q);
      timeline_->record(tl_eu_cache_hit_, t,
                        static_cast<double>(step.cache_hits) / q);
      timeline_->record(tl_eu_latency_, t, step.latency_sum_ms / q);
    }
    timeline_->record(tl_eu_root_qps_, t,
                      static_cast<double>(step.root_queries) /
                          (static_cast<double>(config_.step.ms) / 1000.0));
    if (step.retries > 0) {
      timeline_->record(tl_eu_retries_, t,
                        static_cast<double>(step.retries));
    }
  }
}

void SimulationEngine::run_resolver_step(net::SimTime t) {
  // Inputs mirror the flight recorder's letter series exactly: the legit
  // answered fraction and the offered-weighted queue delay of each root
  // letter, read from the fluid step that just published. '.nl' is not a
  // root letter and is skipped.
  constexpr double kBaseRttMs = 60.0;
  const auto& services = deployment_->services();
  resolver_success_.fill(1.0);
  resolver_rtt_ms_.fill(kBaseRttMs);
  for (std::size_t s = 0; s < services.size(); ++s) {
    const auto& svc = services[s];
    const int li = svc.letter_index;
    if (li < 0 || li >= static_cast<int>(resolver::kLetterCount)) continue;
    const auto lane = static_cast<std::size_t>(li);
    const double denom = step_served_legit_[s] + prev_failed_legit_[s];
    resolver_success_[lane] =
        denom > 0.0 ? step_served_legit_[s] / denom : 1.0;
    const auto& load = current_loads_[s];
    double weighted_delay = 0.0;
    double offered_across = 0.0;
    for (int id : svc.site_ids) {
      const auto idx = static_cast<std::size_t>(id);
      const double offered = load.attack_qps[idx] + load.legit_qps[idx];
      weighted_delay +=
          deployment_->site(id).outcome().queue_delay_ms * offered;
      offered_across += offered;
    }
    resolver_rtt_ms_[lane] =
        kBaseRttMs +
        (offered_across > 0.0 ? weighted_delay / offered_across : 0.0);
  }
  // Flash crowds raise client demand exactly as they raise the fluid
  // model's legit rate.
  const double demand_scale = fault_ ? fault_->legit_scale() : 1.0;
  resolver_pop_->step(t, resolver_success_, resolver_rtt_ms_, demand_scale,
                      *pool_);
}

void SimulationEngine::run_fluid_step(
    net::SimTime t, SimulationResult& result,
    const std::vector<obs::Gauge*>& g_offered,
    const std::vector<obs::Gauge*>& g_served,
    const std::vector<obs::Gauge*>& g_failed_legit) {
  const auto& services = deployment_->services();
  // Pass 1 (parallel over services): where does each service's traffic
  // land, and what does it put on shared uplinks? Each lane writes only
  // its own ServiceLoad buffer and facility-contribution list; nothing
  // here reads another service's output.
  // Fault-layer step state, read once before the parallel region (the
  // runtime is mutated only in the serial fault-injection phase).
  const double legit_scale = fault_ ? fault_->legit_scale() : 1.0;
  pool_->parallel_for(services.size(), [&](std::size_t s) {
    const auto& svc = services[s];
    const bool statically_attacked =
        svc.letter_index >= 0 &&
        deployment_->letters()[static_cast<std::size_t>(svc.letter_index)]
            .attacked;
    const bool attacked =
        active_event_ != nullptr &&
        (fault_ ? fault_->letter_attacked(svc.letter, statically_attacked)
                : statically_attacked);
    double attack_qps = attacked ? active_event_->per_letter_qps : 0.0;
    if (!attacked && active_event_ != nullptr && svc.letter_index >= 0) {
      // Spillover: spared letters still see a sliver of the (spoofed)
      // attack stream.
      attack_qps = active_event_->per_letter_qps *
                   active_event_->spillover_fraction;
    }
    // Retries from other letters' failures last step (resolver
    // failover; .nl neither receives nor generates root retries).
    double retry_in = 0.0;
    if (svc.letter != 'N') {
      for (std::size_t o = 0; o < services.size(); ++o) {
        if (o == s || services[o].letter == 'N') continue;
        retry_in += prev_failed_legit_[o] * config_.legit.retry_fraction /
                    12.0;
      }
    }
    // A flash-crowd surge scales the base legitimate rate; retries are
    // already a consequence of load and are not double-scaled.
    const double legit_qps =
        config_.legit.per_letter_qps * legit_scale + retry_in;
    compute_service_load_into(*deployment_, svc, botnet_, legit_, attack_qps,
                              legit_qps, current_loads_[s]);

    const double q_payload = active_event_ != nullptr && attacked
                                 ? active_event_->query_payload_bytes
                                 : config_.legit.query_payload_bytes;
    const double r_payload = active_event_ != nullptr && attacked
                                 ? active_event_->response_payload_bytes
                                 : config_.legit.response_payload_bytes;
    const double suppression =
        attacked
            ? dns::expected_suppression(active_event_->duplicate_fraction)
            : 0.0;
    const auto& load = current_loads_[s];
    auto& contrib = facility_contrib_[s];
    contrib.clear();
    for (int id : svc.site_ids) {
      const double offered =
          load.attack_qps[static_cast<std::size_t>(id)] +
          load.legit_qps[static_cast<std::size_t>(id)];
      const auto& site = deployment_->site(id);
      if (offered > 0.0 && site.facility() >= 0) {
        // Only sites actually running RRL suppress responses on their
        // uplink (a playbook may have toggled it per site).
        contrib.emplace_back(
            site.facility(),
            site_uplink_gbps(site, offered, q_payload, r_payload,
                             site.rrl_enabled() ? suppression : 0.0));
      }
    }
  });

  // Merge facility loads sequentially in (service, site) order: the
  // floating-point accumulation order is fixed, so uplink sums are
  // bit-identical for any thread count.
  for (std::size_t s = 0; s < services.size(); ++s) {
    for (const auto& [facility, gbps] : facility_contrib_[s]) {
      deployment_->facilities().add_load(facility, gbps);
    }
  }

  // Pass 2 (parallel over services): evaluate every site's queue with
  // its facility's shared loss, and record the fluid series. Sites
  // belong to exactly one service, so site state, per-site series, and
  // per-service series/gauges are all lane-private.
  const double step_s = config_.step.seconds();
  pool_->parallel_for(services.size(), [&](std::size_t s) {
    const auto& svc = services[s];
    const auto& load = current_loads_[s];
    double offered_total = load.unrouted_attack + load.unrouted_legit;
    double served_total = 0.0;
    double served_legit = 0.0;
    double failed_legit = load.unrouted_legit;
    for (int id : svc.site_ids) {
      auto& site = deployment_->site(id);
      const double attack = load.attack_qps[static_cast<std::size_t>(id)];
      const double lq = load.legit_qps[static_cast<std::size_t>(id)];
      const double shared = site.facility() >= 0
                                ? deployment_->facilities().shared_loss(
                                      site.facility())
                                : 0.0;
      site.begin_step(attack, lq, shared, t);
      const double offered = attack + lq;
      const double served = offered * (1.0 - site.arrival_loss());
      offered_total += offered;
      served_total += served;
      served_legit += lq * (1.0 - site.arrival_loss());
      failed_legit += lq * site.arrival_loss();
      result.site_served_qps[static_cast<std::size_t>(id)].add(t.ms, served);
      result.site_offered_attack_qps[static_cast<std::size_t>(id)].add(
          t.ms, attack);
      result.site_loss_fraction[static_cast<std::size_t>(id)].add(
          t.ms, site.arrival_loss());
    }
    result.service_offered_qps[s].add(t.ms, offered_total);
    result.service_served_qps[s].add(t.ms, served_total);
    result.service_served_legit_qps[s].add(t.ms, served_legit);
    result.service_failed_legit_qps[s].add(t.ms, failed_legit);
    prev_failed_legit_[s] = failed_legit;
    step_offered_[s] = offered_total;
    step_served_[s] = served_total;
    step_served_legit_[s] = served_legit;
    if (g_offered[s] != nullptr) {
      g_offered[s]->add(offered_total * step_s);
      g_served[s]->add(served_total * step_s);
      g_failed_legit[s]->add(failed_legit * step_s);
    }
  });
}

void SimulationEngine::record_rssac(net::SimTime now,
                                    SimulationResult& result) {
  const auto& services = deployment_->services();
  const double step_s = config_.step.seconds();
  for (std::size_t s = 0; s < services.size(); ++s) {
    const auto& svc = services[s];
    if (svc.letter_index < 0) continue;  // .nl does not publish RSSAC
    const auto& cfg =
        deployment_->letters()[static_cast<std::size_t>(svc.letter_index)];
    const auto& load = current_loads_[s];

    double attack_recv = 0.0, legit_recv = 0.0;
    double attack_recv_rrl = 0.0;  ///< attack arrivals at RRL-enabled sites
    for (int id : svc.site_ids) {
      const auto& site = deployment_->site(id);
      const double pass = 1.0 - site.arrival_loss();
      const double attack_at_site =
          load.attack_qps[static_cast<std::size_t>(id)] * pass;
      attack_recv += attack_at_site;
      if (site.rrl_enabled()) attack_recv_rrl += attack_at_site;
      legit_recv += load.legit_qps[static_cast<std::size_t>(id)] * pass;
    }

    const bool under_attack =
        active_event_ != nullptr &&
        (fault_ ? fault_->letter_attacked(svc.letter, cfg.attacked)
                : cfg.attacked);
    const double metering =
        under_attack ? 1.0 - cfg.rssac_metering_loss : 1.0;

    if (attack_recv > 0.0 && active_event_ != nullptr) {
      rssac::StepTraffic traffic;
      traffic.queries_received = attack_recv * step_s;
      // RRL suppression applies only to the share of arrivals landing at
      // RRL-enabled sites. With RRL on everywhere the share is exactly
      // 1.0, so the product reduces bit-identically to the plain form.
      const double rrl_share = attack_recv_rrl / attack_recv;
      traffic.responses_sent =
          attack_recv *
          (1.0 -
           dns::expected_suppression(active_event_->duplicate_fraction) *
               rrl_share) *
          step_s;
      traffic.random_source_queries =
          attack_recv * botnet_.config().spoof_uniform_fraction * step_s;
      traffic.query_payload_bytes = active_event_->query_payload_bytes;
      traffic.response_payload_bytes = active_event_->response_payload_bytes;
      traffic.metering_factor = metering;
      traffic.heavy_hitter_sources = kHeavyHitters;
      traffic.unique_counter_cap = cfg.unique_counter_cap;
      result.rssac.add_step(svc.letter_index, now, traffic);
    }
    {
      rssac::StepTraffic traffic;
      traffic.queries_received = legit_recv * step_s;
      traffic.responses_sent = legit_recv * step_s;
      traffic.resolver_queries = legit_recv * step_s;
      traffic.query_payload_bytes = config_.legit.query_payload_bytes;
      traffic.response_payload_bytes = config_.legit.response_payload_bytes;
      traffic.metering_factor = metering;
      traffic.unique_counter_cap = cfg.unique_counter_cap;
      result.rssac.add_step(svc.letter_index, now, traffic);
    }
  }
}

void SimulationEngine::run_probes(net::SimTime step_begin,
                                  atlas::RecordSet& raw) {
  const net::SimTime step_end = step_begin + config_.step;
  pool_->parallel_for(probe_shards_.size(), [&](std::size_t i) {
    ProbeShard& shard = probe_shards_[i];
    shard.records.clear();
    const int s = shard.service;
    const auto& svc = deployment_->services()[static_cast<std::size_t>(s)];
    const auto& routes = deployment_->routing().routes(svc.prefix);
    const std::int64_t interval =
        probe_interval_ms_[static_cast<std::size_t>(s)];
    for (std::size_t v = shard.vp_begin; v < shard.vp_end; ++v) {
      const auto& vp = vps_[v];
      // Per-(VP, letter) phase spread across the whole probing interval,
      // so infrequently probed letters (A at 30 min) still cover every
      // analysis bin with a subset of VPs.
      const std::int64_t phase = static_cast<std::int64_t>(
          util::mix64(static_cast<std::uint64_t>(vp.phase_ms) * 131 +
                      static_cast<std::uint64_t>(s)) %
          static_cast<std::uint64_t>(interval));
      // First probe time >= step_begin on this VP's schedule.
      std::int64_t offset = (step_begin.ms - phase) % interval;
      if (offset < 0) offset += interval;
      std::int64_t tp = step_begin.ms + ((interval - offset) % interval);
      for (; tp < step_end.ms; tp += interval) {
        const net::SimTime when(tp);
        if (!config_.probe_window.contains(when)) continue;
        // A dropped-out VP is silent for the whole dropout window: no
        // record at all, like a real probe going dark. vp_dropped is a
        // pure hash, so this stays thread-order-invariant.
        if (fault_ && fault_->vp_dropped(vp.id, when)) continue;
        probe_once(vp, s, routes, when, shard.records);
      }
    }
  });
  // Deterministic merge: shards are ordered service-major with ascending
  // VP ranges and each appends in (VP, time) order, so packing the SoA
  // lanes back to AoS in shard order reproduces the serial
  // (service, VP, time) record stream exactly.
  for (const ProbeShard& shard : probe_shards_) {
    shard.records.append_to(raw);
  }
}

void SimulationEngine::probe_once(const atlas::VantagePoint& vp,
                                  int service_index,
                                  const std::vector<bgp::RouteChoice>& routes,
                                  net::SimTime when, atlas::RecordSoA& out) {
  // Every random draw for this probe comes from its own stream keyed on
  // (seed, service, VP, time): probe outcomes are a pure function of the
  // schedule, independent of thread count and execution order.
  util::Rng rng = probe_rng(config_.seed, service_index, vp.id, when);
  atlas::ProbeRecord rec;
  rec.vp = static_cast<std::uint32_t>(vp.id);
  rec.t_s = static_cast<std::uint32_t>(when.ms / 1000);
  rec.letter_index = static_cast<std::uint8_t>(service_index);
  rec.outcome = atlas::ProbeOutcome::kTimeout;
  rec.site_id = -1;

  if (vp.hijacked) {
    // A middlebox answers locally: wrong pattern, implausibly fast.
    rec.outcome = atlas::ProbeOutcome::kError;
    rec.rtt_ms = static_cast<std::uint16_t>(2 + rng.below(4));
    out.push(rec);
    return;
  }

  const auto& route = routes[static_cast<std::size_t>(vp.as_index)];
  if (!route.reachable()) {
    out.push(rec);  // no route: query never arrives
    return;
  }
  auto& site = deployment_->site(route.site_id);

  const auto reply = site.probe(
      vp.address, chaos_query_[static_cast<std::size_t>(service_index)], when,
      rng);
  if (!reply.answered) {
    out.push(rec);
    return;
  }
  const double base =
      net::base_rtt_ms(vp.location, site.location()) * rng.uniform(0.95, 1.1);
  const double rtt = base + reply.extra_delay_ms;
  if (rtt >= atlas::kTimeoutMs) {
    out.push(rec);  // reply arrived after the Atlas timeout
    return;
  }
  rec.rtt_ms = static_cast<std::uint16_t>(
      std::min(rtt, 65535.0));

  const auto response = dns::decode(reply.wire);
  if (!response || response->answers.empty()) {
    rec.outcome = atlas::ProbeOutcome::kError;
    out.push(rec);
    return;
  }
  rec.rcode = static_cast<std::uint8_t>(response->header.rcode);
  const auto txt = response->answers.front().txt_value();
  // The interned table maps the full CHAOS identity text straight to its
  // (site, server): one hash lookup, no key string, no format re-parse.
  // Unknown text (an identity no deployed server owns) stays an error,
  // exactly as the old parse-then-lookup chain classified it.
  const auto it =
      txt ? site_by_identity_.find(std::string_view(*txt))
          : site_by_identity_.end();
  if (it == site_by_identity_.end()) {
    rec.outcome = atlas::ProbeOutcome::kError;
    out.push(rec);
    return;
  }
  rec.outcome = atlas::ProbeOutcome::kSite;
  rec.site_id = static_cast<std::int16_t>(it->second >> 8);
  rec.server = static_cast<std::uint8_t>(it->second & 0xff);
  out.push(rec);
}

void SimulationEngine::apply_fault_step(net::SimTime t) {
  for (const fault::DueAction& action : fault_->begin_step(t)) {
    auto& site = deployment_->site(action.site_id);
    switch (action.kind) {
      case fault::DueAction::Kind::kSiteDown:
        if (site.scope() != anycast::SiteScope::kDown) {
          deployment_->apply_scope(action.site_id, anycast::SiteScope::kDown,
                                   t);
        }
        break;
      case fault::DueAction::Kind::kSiteRestore: {
        // Hardware is back, but a deliberate defense decision outranks
        // the repair crew: a playbook hold or a policy-withdrawn state
        // keeps the site dark until its own restore path fires.
        if (playbook_ && playbook_->holds(action.site_id)) break;
        if (site.policy_state().withdrawn()) break;
        const auto normal = site.spec().global ? anycast::SiteScope::kGlobal
                                               : anycast::SiteScope::kLocalOnly;
        if (site.scope() != normal) {
          deployment_->apply_scope(action.site_id, normal, t);
        }
        break;
      }
      case fault::DueAction::Kind::kSessionDown:
        deployment_->routing().set_announced(action.prefix, action.site_id,
                                             false, t);
        break;
      case fault::DueAction::Kind::kSessionRestore:
        // Reassert whatever the site's scope currently implies; a site
        // withdrawn (by fault or defense) while the session was down
        // stays withdrawn.
        if (site.scope() != anycast::SiteScope::kDown) {
          deployment_->routing().set_origin_state(
              action.prefix, action.site_id, true,
              site.scope() == anycast::SiteScope::kLocalOnly, t);
        }
        break;
    }
    obs::emit_event(obs_.get(), obs::TraceEventType::kFaultInjection, t,
                    site.letter(), site.label(), fault::to_string(action.kind),
                    static_cast<double>(action.site_id));
  }

  // Pulse-envelope transitions are injections too: a pulse turning on or
  // off changes the world the defenses see, so it gets an instant in the
  // trace (and the Perfetto overlay) like any site-level fault action.
  const fault::PulseWave* pulse = fault_->active_pulse();
  const bool pulse_hot =
      pulse != nullptr && fault::FaultSchedule::envelope(*pulse, t) > 0.0;
  if (pulse_hot != fault_pulse_hot_) {
    fault_pulse_hot_ = pulse_hot;
    obs::emit_event(obs_.get(), obs::TraceEventType::kFaultInjection, t, 0,
                    "", pulse_hot ? "pulse-on" : "pulse-off",
                    pulse != nullptr ? pulse->peak_qps : 0.0);
  }
}

void SimulationEngine::apply_adaptive_defense(net::SimTime now) {
  // The §2.2 reasoning applied live, per letter: withdraw an overloaded
  // site only while the letter's remaining sites have headroom for its
  // catchment; otherwise keep it up as a degraded absorber. Withdrawn
  // sites see no traffic, so their would-be load is remembered from the
  // moment of withdrawal and slowly decayed — the hysteresis that keeps
  // the controller from flapping (the paper's warning that "the effects
  // of route changes are difficult to predict" is real: without this the
  // controller oscillates every step).
  constexpr double kDecayPerStep = 0.995;
  constexpr net::SimTime kCoolDown = net::SimTime::from_minutes(20);
  if (adaptive_last_offered_.empty()) {
    adaptive_last_offered_.assign(
        static_cast<std::size_t>(deployment_->site_count()), 0.0);
    adaptive_last_change_.assign(
        static_cast<std::size_t>(deployment_->site_count()),
        net::SimTime(-3600'000));
  }
  const auto& services = deployment_->services();
  for (std::size_t s = 0; s < services.size(); ++s) {
    const auto& svc = services[s];
    if (svc.letter_index < 0) continue;  // .nl keeps its own policy
    const auto& load = current_loads_[s];
    std::vector<double> capacity, offered;
    capacity.reserve(svc.site_ids.size());
    offered.reserve(svc.site_ids.size());
    for (const int id : svc.site_ids) {
      const auto& site = deployment_->site(id);
      capacity.push_back(site.spec().capacity_qps);
      const double observed =
          load.attack_qps[static_cast<std::size_t>(id)] +
          load.legit_qps[static_cast<std::size_t>(id)];
      auto& remembered = adaptive_last_offered_[static_cast<std::size_t>(id)];
      if (site.scope() == anycast::SiteScope::kDown || observed < remembered) {
        remembered *= kDecayPerStep;  // withdrawn (or shrinking): decay
      }
      remembered = std::max(remembered, observed);
      offered.push_back(remembered);
    }
    const auto advice =
        anycast::advise_observed(capacity, offered, obs_.get(), svc.letter);
    for (const auto& a : advice) {
      const int id = svc.site_ids[static_cast<std::size_t>(a.site_index)];
      auto& site = deployment_->site(id);
      // A fault-held site is physically down; no advice can act on it.
      if (fault_ && fault_->holds_site(id)) continue;
      if (now - adaptive_last_change_[static_cast<std::size_t>(id)] <
          kCoolDown) {
        continue;  // operators do not re-decide every minute
      }
      const auto normal = site.spec().global ? anycast::SiteScope::kGlobal
                                             : anycast::SiteScope::kLocalOnly;
      const auto before = site.scope();
      switch (a.action) {
        case anycast::AdvisedAction::kWithdraw:
          deployment_->apply_scope(id, anycast::SiteScope::kDown, now);
          break;
        case anycast::AdvisedAction::kPartialWithdraw:
          deployment_->apply_scope(
              id,
              site.spec().global ? anycast::SiteScope::kLocalOnly
                                 : anycast::SiteScope::kDown,
              now);
          break;
        case anycast::AdvisedAction::kAbsorb:
        case anycast::AdvisedAction::kNoAction:
          deployment_->apply_scope(id, normal, now);
          break;
      }
      if (site.scope() != before) {
        adaptive_last_change_[static_cast<std::size_t>(id)] = now;
        obs::emit_event(obs_.get(), obs::TraceEventType::kDefenseActivation,
                        now, site.letter(), site.label(),
                        anycast::to_string(a.action) + ": " + a.rationale,
                        a.overload);
      }
    }
  }
}

void SimulationEngine::apply_policy_step(net::SimTime now,
                                         SimulationResult& result) {
  (void)result;
  for (int id = 0; id < deployment_->site_count(); ++id) {
    auto& site = deployment_->site(id);
    // Reactive playbook decisions outrank the static stress policy: a
    // site the playbook holds (withdrew and has not restored) is not
    // re-decided here, whatever regime the scenario forces. Sites a
    // hardware fault pins down are not the policy's to re-announce.
    if (playbook_ && playbook_->holds(id)) continue;
    if (fault_ && fault_->holds_site(id)) continue;
    const auto action = site.policy_state().step(
        site.outcome().utilization, site.arrival_loss(), now, config_.step,
        rng_);
    switch (action) {
      case anycast::PolicyAction::kNone:
        break;
      case anycast::PolicyAction::kWithdraw: {
        // A letter's last globally announced site never withdraws: the
        // operator keeps it up as a degraded absorber (case 5 of §2.2)
        // rather than blackhole the whole service. Primary/backup letters
        // are exempt: their fallback is administratively down by design.
        const auto& svc_of_site = deployment_->service(site.letter());
        const bool has_backup =
            svc_of_site.letter_index >= 0 &&
            deployment_->letters()[static_cast<std::size_t>(
                svc_of_site.letter_index)].primary_backup;
        if (site.scope() == anycast::SiteScope::kGlobal && !has_backup) {
          int global_sites = 0;
          for (int other : deployment_->service(site.letter()).site_ids) {
            if (deployment_->site(other).scope() ==
                anycast::SiteScope::kGlobal) {
              ++global_sites;
            }
          }
          if (global_sites <= 1) {
            site.policy_state().veto_withdrawal();
            note_withdraw_veto(site, now);
            break;
          }
        }
        const bool partial =
            site.policy_state().policy().partial_withdraw && site.spec().global;
        deployment_->apply_scope(id,
                                 partial ? anycast::SiteScope::kLocalOnly
                                         : anycast::SiteScope::kDown,
                                 now);
        break;
      }
      case anycast::PolicyAction::kReannounce:
        deployment_->apply_scope(id,
                                 site.spec().global
                                     ? anycast::SiteScope::kGlobal
                                     : anycast::SiteScope::kLocalOnly,
                                 now);
        break;
    }
  }
}

void SimulationEngine::run_playbook_step(net::SimTime now) {
  const auto site_count = static_cast<std::size_t>(deployment_->site_count());
  if (fault_ && fault_->telemetry_gap()) {
    // Frozen dashboards: the controller keeps stepping (cooldowns and
    // confirmation streaks still advance) but sees the last pre-gap
    // observations. A gap opening before any observation exists shows
    // clean defaults — no telemetry, no evidence.
    playbook_obs_.resize(site_count);
    playbook_->step(now, playbook_obs_, *this);
    return;
  }
  playbook_obs_.resize(site_count);
  for (std::size_t id = 0; id < site_count; ++id) {
    const auto& site = deployment_->site(static_cast<int>(id));
    playbook::SiteObservation& o = playbook_obs_[id];
    o.offered_qps = site.offered_attack_qps() + site.offered_legit_qps();
    // A dark or idle site produces no evidence: nothing arrives, so the
    // operator reads a clean answered fraction.
    o.answered_fraction =
        o.offered_qps > 0.0 ? 1.0 - site.arrival_loss() : 1.0;
    o.queue_delay_ms = site.outcome().queue_delay_ms;
    o.utilization = site.outcome().utilization;
  }
  playbook_->step(now, playbook_obs_, *this);
}

playbook::ActuationOutcome SimulationEngine::actuate(
    int site_id, const playbook::Action& action, net::SimTime now) {
  using playbook::ActionKind;
  using playbook::ActuationOutcome;
  auto& site = deployment_->site(site_id);
  switch (action.kind) {
    case ActionKind::kWithdrawSite:
    case ActionKind::kPartialWithdraw: {
      // Same guard as the static policy path: a letter's last globally
      // announced site never withdraws — it stays up as a degraded
      // absorber (§2.2, case 5). Primary/backup letters are exempt.
      const auto& svc_of_site = deployment_->service(site.letter());
      const bool has_backup =
          svc_of_site.letter_index >= 0 &&
          deployment_->letters()[static_cast<std::size_t>(
              svc_of_site.letter_index)].primary_backup;
      if (site.scope() == anycast::SiteScope::kGlobal && !has_backup) {
        int global_sites = 0;
        for (int other : svc_of_site.site_ids) {
          if (deployment_->site(other).scope() ==
              anycast::SiteScope::kGlobal) {
            ++global_sites;
          }
        }
        if (global_sites <= 1) {
          site.policy_state().veto_withdrawal();
          note_withdraw_veto(site, now);
          return ActuationOutcome::kVetoed;
        }
      }
      anycast::SiteScope target;
      if (action.kind == ActionKind::kWithdrawSite) {
        target = anycast::SiteScope::kDown;
      } else if (site.scope() == anycast::SiteScope::kGlobal) {
        target = anycast::SiteScope::kLocalOnly;
      } else {
        return ActuationOutcome::kNoop;  // already partial (or darker)
      }
      if (site.scope() == target) return ActuationOutcome::kNoop;
      deployment_->apply_scope(site_id, target, now);
      if (timeline_ != nullptr &&
          tl_hold_span_[static_cast<std::size_t>(site_id)] ==
              obs::Timeline::npos) {
        // Open a hold window; stays open to run end unless a restore
        // closes it.
        obs::TimelineSpan span;
        span.category = "playbook";
        span.name = "hold";
        span.scope = site.label();
        span.begin = now;
        span.end = config_.end;
        tl_hold_span_[static_cast<std::size_t>(site_id)] =
            timeline_->add_span(std::move(span));
      }
      return ActuationOutcome::kApplied;
    }
    case ActionKind::kRestoreSite: {
      // Restoring a site whose hardware is down does nothing: the fault
      // keeps it withdrawn until its own recovery, which then respects
      // the playbook's (cleared) hold.
      if (fault_ && fault_->holds_site(site_id)) return ActuationOutcome::kNoop;
      const auto normal = site.spec().global ? anycast::SiteScope::kGlobal
                                             : anycast::SiteScope::kLocalOnly;
      if (site.scope() == normal) return ActuationOutcome::kNoop;
      deployment_->apply_scope(site_id, normal, now);
      if (timeline_ != nullptr) {
        std::size_t& open = tl_hold_span_[static_cast<std::size_t>(site_id)];
        if (open != obs::Timeline::npos) {
          timeline_->close_span(open, now);
          open = obs::Timeline::npos;
        }
      }
      return ActuationOutcome::kApplied;
    }
    case ActionKind::kScaleCapacity:
      if (action.amount == 1.0) return ActuationOutcome::kNoop;
      site.scale_capacity(action.amount);
      return ActuationOutcome::kApplied;
    case ActionKind::kEnableRrl:
      if (site.rrl_enabled()) return ActuationOutcome::kNoop;
      site.set_rrl_enabled(true);
      return ActuationOutcome::kApplied;
    case ActionKind::kDisableRrl:
      if (!site.rrl_enabled()) return ActuationOutcome::kNoop;
      site.set_rrl_enabled(false);
      return ActuationOutcome::kApplied;
    case ActionKind::kPrependPath: {
      const auto& svc_of_site = deployment_->service(site.letter());
      const int hops = static_cast<int>(action.amount);
      if (deployment_->routing().prepend(svc_of_site.prefix, site_id) ==
          hops) {
        return ActuationOutcome::kNoop;
      }
      deployment_->apply_prepend(site_id, hops, now);
      return ActuationOutcome::kApplied;
    }
  }
  return ActuationOutcome::kNoop;
}

void SimulationEngine::note_withdraw_veto(const anycast::AnycastSite& site,
                                          net::SimTime now) {
  if (!obs_) return;
  obs_->metrics()
      .counter("policy.withdraw_veto",
               {{"letter", std::string(1, site.letter())}})
      .add();
  obs_->event(obs::TraceEventType::kWithdrawVeto, now, site.letter(),
              site.label(), "last global site kept as degraded absorber",
              static_cast<double>(site.site_id()));
}

void SimulationEngine::update_h_root_backup(net::SimTime now) {
  const auto& services = deployment_->services();
  for (const auto& svc : services) {
    if (svc.letter_index < 0) continue;
    const auto& cfg =
        deployment_->letters()[static_cast<std::size_t>(svc.letter_index)];
    if (!cfg.primary_backup || svc.site_ids.size() < 2) continue;
    auto& primary = deployment_->site(svc.site_ids[0]);
    auto& backup = deployment_->site(svc.site_ids[1]);
    // A fault-held backup cannot be pressed into service.
    if (fault_ && fault_->holds_site(backup.site_id())) continue;
    const bool primary_up = primary.scope() == anycast::SiteScope::kGlobal;
    if (!primary_up && backup.scope() == anycast::SiteScope::kDown) {
      deployment_->apply_scope(backup.site_id(), anycast::SiteScope::kGlobal,
                               now);
    } else if (primary_up && backup.scope() != anycast::SiteScope::kDown) {
      deployment_->apply_scope(backup.site_id(), anycast::SiteScope::kDown,
                               now);
    }
  }
}

}  // namespace rootstress::sim
