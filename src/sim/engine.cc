#include "sim/engine.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "dns/chaos.h"
#include "dns/rrl.h"
#include "dns/wire.h"
#include "anycast/defense.h"
#include "util/logging.h"

namespace rootstress::sim {

namespace {

constexpr int kHeavyHitters = 200;

std::string identity_key(char letter, std::string_view code) {
  std::string key(1, letter);
  key += '-';
  key += code;
  return key;
}

std::size_t bins_for(net::SimTime start, net::SimTime end,
                     net::SimTime width) {
  const auto span = (end - start).ms;
  return static_cast<std::size_t>((span + width.ms - 1) / width.ms);
}

}  // namespace

int SimulationResult::service_index(char letter) const noexcept {
  for (std::size_t i = 0; i < letter_chars.size(); ++i) {
    if (letter_chars[i] == letter) return static_cast<int>(i);
  }
  return -1;
}

const SiteMeta* SimulationResult::find_site(
    char letter, std::string_view code) const noexcept {
  for (const auto& site : sites) {
    if (site.letter == letter && site.code == code) return &site;
  }
  return nullptr;
}

std::vector<int> SimulationResult::sites_of(char letter) const {
  std::vector<int> out;
  for (const auto& site : sites) {
    if (site.letter == letter) out.push_back(site.site_id);
  }
  return out;
}

SimulationEngine::SimulationEngine(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed ^ 0xe6917e) {
  if (const std::string problem = validate(config_); !problem.empty()) {
    throw std::invalid_argument("invalid scenario: " + problem);
  }
  if (config_.telemetry) obs_ = std::make_unique<obs::Runtime>();
  obs::PhaseProfiler::Scope build_phase(
      obs_ ? &obs_->profiler() : nullptr, "topology-build");

  anycast::RootDeployment::Config dep = config_.deployment;
  dep.seed = config_.seed;
  deployment_ = std::make_unique<anycast::RootDeployment>(dep);

  attack::BotnetConfig bot = config_.botnet;
  bot.seed = config_.seed ^ 0xb07;
  botnet_ = attack::Botnet::build(deployment_->topology(), bot);

  attack::LegitConfig leg = config_.legit;
  leg.seed = config_.seed ^ 0x1e617;
  legit_ = attack::LegitTraffic::build(deployment_->topology(), leg);

  atlas::PopulationConfig pop = config_.population;
  pop.seed = config_.seed ^ 0xa71a5;
  vps_ = atlas::make_population(deployment_->topology(), pop);

  // Which services do Atlas VPs probe?
  const auto& services = deployment_->services();
  for (std::size_t s = 0; s < services.size(); ++s) {
    const char letter = services[s].letter;
    if (letter == 'N') continue;  // .nl is not probed by the root mesh
    if (!config_.probe_letters.empty() &&
        std::find(config_.probe_letters.begin(), config_.probe_letters.end(),
                  letter) == config_.probe_letters.end()) {
      continue;
    }
    probed_services_.push_back(static_cast<int>(s));
  }
  probe_interval_ms_.assign(services.size(), 240'000);
  for (std::size_t s = 0; s < services.size(); ++s) {
    if (services[s].letter_index >= 0) {
      const auto& cfg = deployment_->letters()[static_cast<std::size_t>(
          services[s].letter_index)];
      probe_interval_ms_[s] =
          static_cast<std::int64_t>(cfg.probe_interval_s * 1000.0);
    }
  }

  for (int id = 0; id < deployment_->site_count(); ++id) {
    const auto& site = deployment_->site(id);
    site_by_identity_[identity_key(site.letter(), site.code())] = id;
  }

  if (config_.enable_collector) {
    bgp::CollectorConfig cc = config_.collector;
    cc.seed = config_.seed ^ 0xc011ec;
    collector_.emplace(deployment_->topology(), cc,
                       static_cast<int>(services.size()), config_.start,
                       config_.bin_width,
                       bins_for(config_.start, config_.end, config_.bin_width));
  }
  prev_failed_legit_.assign(services.size(), 0.0);

  if (obs_) {
    deployment_->attach_obs(obs_.get());
    if (collector_) collector_->attach_obs(obs_.get());
  }
}

SimulationResult SimulationEngine::run() {
  obs::PhaseProfiler* const prof = obs_ ? &obs_->profiler() : nullptr;
  // Route log lines into the trace while the run is live, so a flushed
  // trace interleaves structured events with whatever was logged.
  if (obs_) obs_->trace().attach_logger();

  SimulationResult result;
  result.start = config_.start;
  result.end = config_.end;
  result.bin_width = config_.bin_width;
  result.probe_window = config_.probe_window;
  result.resolver_pool = config_.legit.resolver_pool;

  const auto& services = deployment_->services();
  const std::size_t bins = bins_for(config_.start, config_.end,
                                    config_.bin_width);
  for (const auto& svc : services) {
    result.letter_chars.push_back(svc.letter);
    result.service_offered_qps.emplace_back(config_.start.ms,
                                            config_.bin_width.ms, bins);
    result.service_served_qps.emplace_back(config_.start.ms,
                                           config_.bin_width.ms, bins);
    result.service_served_legit_qps.emplace_back(config_.start.ms,
                                                 config_.bin_width.ms, bins);
    result.service_failed_legit_qps.emplace_back(config_.start.ms,
                                                 config_.bin_width.ms, bins);
  }
  for (int id = 0; id < deployment_->site_count(); ++id) {
    const auto& site = deployment_->site(id);
    SiteMeta meta;
    meta.site_id = id;
    meta.letter = site.letter();
    meta.code = site.code();
    meta.label = site.label();
    meta.facility = site.facility();
    meta.capacity_qps = site.spec().capacity_qps;
    meta.global = site.spec().global;
    meta.location = site.location();
    meta.servers = site.server_count();
    result.sites.push_back(std::move(meta));
    result.site_served_qps.emplace_back(config_.start.ms,
                                        config_.bin_width.ms, bins);
    result.site_offered_attack_qps.emplace_back(config_.start.ms,
                                                config_.bin_width.ms, bins);
    result.site_loss_fraction.emplace_back(config_.start.ms,
                                           config_.bin_width.ms, bins);
  }
  result.vps = vps_;
  for (const auto& cfg : deployment_->letters()) {
    if (cfg.rssac_reporting) {
      result.rssac_publishers.push_back(rssac::Publisher{
          cfg.letter, result.service_index(cfg.letter)});
    }
  }

  // Per-service instruments (cached pointers; null when telemetry is off).
  std::vector<obs::Gauge*> g_offered(services.size(), nullptr);
  std::vector<obs::Gauge*> g_served(services.size(), nullptr);
  std::vector<obs::Gauge*> g_failed_legit(services.size(), nullptr);
  std::vector<obs::Counter*> c_catchment(services.size(), nullptr);
  std::vector<char> prefix_letter(services.size(), '?');
  obs::Counter* c_steps = nullptr;
  if (obs_) {
    auto& metrics = obs_->metrics();
    c_steps = &metrics.counter("sim.steps", {{"component", "engine"}});
    for (std::size_t s = 0; s < services.size(); ++s) {
      const obs::Labels labels{
          {"letter", std::string(1, services[s].letter)}};
      g_offered[s] = &metrics.gauge("service.offered_queries", labels);
      g_served[s] = &metrics.gauge("service.served_queries", labels);
      g_failed_legit[s] =
          &metrics.gauge("service.failed_legit_queries", labels);
      // Catchment instruments are indexed by prefix id (what the routing
      // observer reports), which matches service order by construction
      // but is kept explicit here.
      if (services[s].prefix >= 0 &&
          services[s].prefix < static_cast<int>(prefix_letter.size())) {
        const auto p = static_cast<std::size_t>(services[s].prefix);
        prefix_letter[p] = services[s].letter;
        c_catchment[p] = &metrics.counter("bgp.catchment_moves", labels);
      }
    }
  }

  deployment_->routing().set_observer(
      [this, &result, &c_catchment,
       &prefix_letter](int prefix, const std::vector<bgp::RouteChange>& changes) {
        result.route_changes.insert(result.route_changes.end(),
                                    changes.begin(), changes.end());
        if (collector_) collector_->observe(prefix, changes);
        if (obs_ && prefix >= 0 &&
            prefix < static_cast<int>(prefix_letter.size()) &&
            !changes.empty()) {
          const auto p = static_cast<std::size_t>(prefix);
          if (c_catchment[p] != nullptr) c_catchment[p]->add(changes.size());
          obs_->event(obs::TraceEventType::kCatchmentFlip,
                      changes.front().time, prefix_letter[p],
                      std::string(1, prefix_letter[p]),
                      std::to_string(changes.size()) + " ASes changed site",
                      static_cast<double>(changes.size()));
        }
      });

  atlas::RecordSet raw;
  if (config_.collect_records) {
    // Rough pre-size: probes per (VP, letter) across the probe window.
    const double window_s = (config_.probe_window.end -
                             config_.probe_window.begin).seconds();
    std::size_t expected = 0;
    for (int s : probed_services_) {
      expected += vps_.size() *
                  static_cast<std::size_t>(std::max(
                      1.0, window_s / (static_cast<double>(
                                          probe_interval_ms_[s]) /
                                      1000.0)));
    }
    raw.reserve(expected + expected / 8);
  }

  const net::SimTime step = config_.step;
  for (net::SimTime t = config_.start; t < config_.end; t = t + step) {
    if (c_steps != nullptr) c_steps->add();
    // Maintenance flaps come back up first.
    for (std::size_t i = 0; i < pending_reannounce_.size();) {
      if (pending_reannounce_[i].when <= t) {
        const int id = pending_reannounce_[i].site_id;
        auto& site = deployment_->site(id);
        if (!site.policy_state().withdrawn()) {
          deployment_->apply_scope(id,
                                   site.spec().global
                                       ? anycast::SiteScope::kGlobal
                                       : anycast::SiteScope::kLocalOnly,
                                   t);
        }
        pending_reannounce_.erase(pending_reannounce_.begin() +
                                  static_cast<long>(i));
      } else {
        ++i;
      }
    }

    active_event_ = config_.schedule.active(t);
    deployment_->facilities().begin_step();

    {
    obs::PhaseProfiler::Scope fluid_phase(prof, "fluid-stepping");
    // Pass 1: where does traffic land, and what does it put on shared
    // uplinks?
    current_loads_.clear();
    current_loads_.reserve(services.size());
    for (std::size_t s = 0; s < services.size(); ++s) {
      const auto& svc = services[s];
      const bool attacked =
          active_event_ != nullptr && svc.letter_index >= 0 &&
          deployment_->letters()[static_cast<std::size_t>(svc.letter_index)]
              .attacked;
      double attack_qps = attacked ? active_event_->per_letter_qps : 0.0;
      if (!attacked && active_event_ != nullptr && svc.letter_index >= 0) {
        // Spillover: spared letters still see a sliver of the (spoofed)
        // attack stream.
        attack_qps = active_event_->per_letter_qps *
                     active_event_->spillover_fraction;
      }
      // Retries from other letters' failures last step (resolver
      // failover; .nl neither receives nor generates root retries).
      double retry_in = 0.0;
      if (svc.letter != 'N') {
        for (std::size_t o = 0; o < services.size(); ++o) {
          if (o == s || services[o].letter == 'N') continue;
          retry_in += prev_failed_legit_[o] * config_.legit.retry_fraction /
                      12.0;
        }
      }
      const double legit_qps = config_.legit.per_letter_qps + retry_in;
      current_loads_.push_back(compute_service_load(
          *deployment_, svc, botnet_, legit_, attack_qps, legit_qps));

      const double q_payload = active_event_ != nullptr && attacked
                                   ? active_event_->query_payload_bytes
                                   : config_.legit.query_payload_bytes;
      const double r_payload = active_event_ != nullptr && attacked
                                   ? active_event_->response_payload_bytes
                                   : config_.legit.response_payload_bytes;
      const double suppression =
          attacked ? dns::expected_suppression(
                         active_event_->duplicate_fraction)
                   : 0.0;
      for (int id : svc.site_ids) {
        const auto& load = current_loads_.back();
        const double offered =
            load.attack_qps[static_cast<std::size_t>(id)] +
            load.legit_qps[static_cast<std::size_t>(id)];
        const auto& site = deployment_->site(id);
        if (offered > 0.0 && site.facility() >= 0) {
          deployment_->facilities().add_load(
              site.facility(), site_uplink_gbps(site, offered, q_payload,
                                                r_payload, suppression));
        }
      }
    }

    // Pass 2: evaluate every site's queue with its facility's shared
    // loss, and record the fluid series.
    for (std::size_t s = 0; s < services.size(); ++s) {
      const auto& svc = services[s];
      const auto& load = current_loads_[s];
      double offered_total = load.unrouted_attack + load.unrouted_legit;
      double served_total = 0.0;
      double served_legit = 0.0;
      double failed_legit = load.unrouted_legit;
      for (int id : svc.site_ids) {
        auto& site = deployment_->site(id);
        const double attack = load.attack_qps[static_cast<std::size_t>(id)];
        const double lq = load.legit_qps[static_cast<std::size_t>(id)];
        const double shared = site.facility() >= 0
                                  ? deployment_->facilities().shared_loss(
                                        site.facility())
                                  : 0.0;
        site.begin_step(attack, lq, shared, t);
        const double offered = attack + lq;
        const double served = offered * (1.0 - site.arrival_loss());
        offered_total += offered;
        served_total += served;
        served_legit += lq * (1.0 - site.arrival_loss());
        failed_legit += lq * site.arrival_loss();
        result.site_served_qps[static_cast<std::size_t>(id)].add(t.ms, served);
        result.site_offered_attack_qps[static_cast<std::size_t>(id)].add(
            t.ms, attack);
        result.site_loss_fraction[static_cast<std::size_t>(id)].add(
            t.ms, site.arrival_loss());
      }
      result.service_offered_qps[s].add(t.ms, offered_total);
      result.service_served_qps[s].add(t.ms, served_total);
      result.service_served_legit_qps[s].add(t.ms, served_legit);
      result.service_failed_legit_qps[s].add(t.ms, failed_legit);
      prev_failed_legit_[s] = failed_legit;
      const double step_s = step.seconds();
      if (g_offered[s] != nullptr) {
        g_offered[s]->add(offered_total * step_s);
        g_served[s]->add(served_total * step_s);
        g_failed_legit[s]->add(failed_legit * step_s);
      }
    }
    }  // fluid-stepping

    if (config_.collect_rssac) {
      obs::PhaseProfiler::Scope rssac_phase(prof, "rssac-accounting");
      record_rssac(t, result);
    }

    if (config_.collect_records &&
        config_.probe_window.begin < t + step &&
        t < config_.probe_window.end) {
      obs::PhaseProfiler::Scope probe_phase(prof, "atlas-probing");
      run_probes(t, raw);
    }

    {
      obs::PhaseProfiler::Scope policy_phase(prof, "defense-policy");
      if (config_.adaptive_defense) {
        apply_adaptive_defense(t);
      } else {
        apply_policy_step(t, result);
      }
      update_h_root_backup(t);
    }

    // Background maintenance churn.
    if (rng_.chance(config_.maintenance_flap_per_step)) {
      const int id =
          static_cast<int>(rng_.below(
              static_cast<std::uint64_t>(deployment_->site_count())));
      auto& site = deployment_->site(id);
      const auto normal = site.spec().global ? anycast::SiteScope::kGlobal
                                             : anycast::SiteScope::kLocalOnly;
      if (site.scope() == normal && !site.policy_state().withdrawn()) {
        deployment_->apply_scope(id, anycast::SiteScope::kDown, t);
        pending_reannounce_.push_back(
            PendingReannounce{id, t + net::SimTime::from_minutes(10)});
      }
    }
  }

  {
    // Data cleaning (§2.4.1): firmware + hijack rules.
    obs::PhaseProfiler::Scope cleaning_phase(prof, "cleaning");
    const auto keep = atlas::select_vps(vps_, raw, &result.cleaning);
    result.records = atlas::filter_records(raw, keep, &result.cleaning);
  }

  if (collector_) {
    for (std::size_t s = 0; s < services.size(); ++s) {
      result.collector_series.push_back(
          collector_->series(services[s].prefix));
    }
  }

  if (obs_) {
    // Flush the trace when asked, then snapshot; the snapshot counts the
    // flush log line too, which is fine — telemetry observes itself last.
    if (const char* path = std::getenv("ROOTSTRESS_TRACE");
        path != nullptr && *path != '\0') {
      if (obs_->trace().flush_to_file(path)) {
        RS_LOG_INFO << "trace flushed to " << path;
      } else {
        RS_LOG_ERROR << "could not write trace to " << path;
      }
    }
    obs_->trace().detach_logger();
    result.telemetry = obs_->snapshot(config_.end);
  }
  return result;
}

void SimulationEngine::record_rssac(net::SimTime now,
                                    SimulationResult& result) {
  const auto& services = deployment_->services();
  const double step_s = config_.step.seconds();
  for (std::size_t s = 0; s < services.size(); ++s) {
    const auto& svc = services[s];
    if (svc.letter_index < 0) continue;  // .nl does not publish RSSAC
    const auto& cfg =
        deployment_->letters()[static_cast<std::size_t>(svc.letter_index)];
    const auto& load = current_loads_[s];

    double attack_recv = 0.0, legit_recv = 0.0;
    for (int id : svc.site_ids) {
      const auto& site = deployment_->site(id);
      const double pass = 1.0 - site.arrival_loss();
      attack_recv += load.attack_qps[static_cast<std::size_t>(id)] * pass;
      legit_recv += load.legit_qps[static_cast<std::size_t>(id)] * pass;
    }

    const bool under_attack = active_event_ != nullptr && cfg.attacked;
    const double metering =
        under_attack ? 1.0 - cfg.rssac_metering_loss : 1.0;

    if (attack_recv > 0.0 && active_event_ != nullptr) {
      rssac::StepTraffic traffic;
      traffic.queries_received = attack_recv * step_s;
      traffic.responses_sent =
          attack_recv *
          (1.0 - dns::expected_suppression(active_event_->duplicate_fraction)) *
          step_s;
      traffic.random_source_queries =
          attack_recv * botnet_.config().spoof_uniform_fraction * step_s;
      traffic.query_payload_bytes = active_event_->query_payload_bytes;
      traffic.response_payload_bytes = active_event_->response_payload_bytes;
      traffic.metering_factor = metering;
      traffic.heavy_hitter_sources = kHeavyHitters;
      traffic.unique_counter_cap = cfg.unique_counter_cap;
      result.rssac.add_step(svc.letter_index, now, traffic);
    }
    {
      rssac::StepTraffic traffic;
      traffic.queries_received = legit_recv * step_s;
      traffic.responses_sent = legit_recv * step_s;
      traffic.resolver_queries = legit_recv * step_s;
      traffic.query_payload_bytes = config_.legit.query_payload_bytes;
      traffic.response_payload_bytes = config_.legit.response_payload_bytes;
      traffic.metering_factor = metering;
      traffic.unique_counter_cap = cfg.unique_counter_cap;
      result.rssac.add_step(svc.letter_index, now, traffic);
    }
  }
}

void SimulationEngine::run_probes(net::SimTime step_begin,
                                  atlas::RecordSet& raw) {
  const net::SimTime step_end = step_begin + config_.step;
  for (int s : probed_services_) {
    const auto& svc = deployment_->services()[static_cast<std::size_t>(s)];
    const auto& routes = deployment_->routing().routes(svc.prefix);
    const std::int64_t interval = probe_interval_ms_[static_cast<std::size_t>(s)];
    for (const auto& vp : vps_) {
      // Per-(VP, letter) phase spread across the whole probing interval,
      // so infrequently probed letters (A at 30 min) still cover every
      // analysis bin with a subset of VPs.
      const std::int64_t phase = static_cast<std::int64_t>(
          util::mix64(static_cast<std::uint64_t>(vp.phase_ms) * 131 +
                      static_cast<std::uint64_t>(s)) %
          static_cast<std::uint64_t>(interval));
      // First probe time >= step_begin on this VP's schedule.
      std::int64_t offset = (step_begin.ms - phase) % interval;
      if (offset < 0) offset += interval;
      std::int64_t tp = step_begin.ms + ((interval - offset) % interval);
      for (; tp < step_end.ms; tp += interval) {
        const net::SimTime when(tp);
        if (!config_.probe_window.contains(when)) continue;
        probe_once(vp, s, routes, when, raw);
      }
    }
  }
}

void SimulationEngine::probe_once(const atlas::VantagePoint& vp,
                                  int service_index,
                                  const std::vector<bgp::RouteChoice>& routes,
                                  net::SimTime when, atlas::RecordSet& raw) {
  const auto& svc =
      deployment_->services()[static_cast<std::size_t>(service_index)];
  atlas::ProbeRecord rec;
  rec.vp = static_cast<std::uint32_t>(vp.id);
  rec.t_s = static_cast<std::uint32_t>(when.ms / 1000);
  rec.letter_index = static_cast<std::uint8_t>(service_index);
  rec.outcome = atlas::ProbeOutcome::kTimeout;
  rec.site_id = -1;

  if (vp.hijacked) {
    // A middlebox answers locally: wrong pattern, implausibly fast.
    rec.outcome = atlas::ProbeOutcome::kError;
    rec.rtt_ms = static_cast<std::uint16_t>(2 + rng_.below(4));
    raw.push_back(rec);
    return;
  }

  const auto& route = routes[static_cast<std::size_t>(vp.as_index)];
  if (!route.reachable()) {
    raw.push_back(rec);  // no route: query never arrives
    return;
  }
  auto& site = deployment_->site(route.site_id);

  const std::uint16_t id = static_cast<std::uint16_t>(
      (static_cast<std::uint64_t>(vp.id) * 31 + rec.t_s) & 0xffff);
  const auto query_wire = dns::encode(dns::make_chaos_query(id));
  const auto reply = site.probe(vp.address, query_wire, when, rng_);
  if (!reply.answered) {
    raw.push_back(rec);
    return;
  }
  const double base =
      net::base_rtt_ms(vp.location, site.location()) * rng_.uniform(0.95, 1.1);
  const double rtt = base + reply.extra_delay_ms;
  if (rtt >= atlas::kTimeoutMs) {
    raw.push_back(rec);  // reply arrived after the Atlas timeout
    return;
  }
  rec.rtt_ms = static_cast<std::uint16_t>(
      std::min(rtt, 65535.0));

  const auto response = dns::decode(reply.wire);
  if (!response || response->answers.empty()) {
    rec.outcome = atlas::ProbeOutcome::kError;
    raw.push_back(rec);
    return;
  }
  rec.rcode = static_cast<std::uint8_t>(response->header.rcode);
  const auto txt = response->answers.front().txt_value();
  const auto identity =
      txt ? dns::parse_identity(svc.letter, *txt) : std::nullopt;
  if (!identity) {
    rec.outcome = atlas::ProbeOutcome::kError;
    raw.push_back(rec);
    return;
  }
  const auto it =
      site_by_identity_.find(identity_key(identity->letter, identity->site));
  if (it == site_by_identity_.end()) {
    rec.outcome = atlas::ProbeOutcome::kError;
    raw.push_back(rec);
    return;
  }
  rec.outcome = atlas::ProbeOutcome::kSite;
  rec.site_id = static_cast<std::int16_t>(it->second);
  rec.server = static_cast<std::uint8_t>(identity->server);
  raw.push_back(rec);
}

void SimulationEngine::apply_adaptive_defense(net::SimTime now) {
  // The §2.2 reasoning applied live, per letter: withdraw an overloaded
  // site only while the letter's remaining sites have headroom for its
  // catchment; otherwise keep it up as a degraded absorber. Withdrawn
  // sites see no traffic, so their would-be load is remembered from the
  // moment of withdrawal and slowly decayed — the hysteresis that keeps
  // the controller from flapping (the paper's warning that "the effects
  // of route changes are difficult to predict" is real: without this the
  // controller oscillates every step).
  constexpr double kDecayPerStep = 0.995;
  constexpr net::SimTime kCoolDown = net::SimTime::from_minutes(20);
  if (adaptive_last_offered_.empty()) {
    adaptive_last_offered_.assign(
        static_cast<std::size_t>(deployment_->site_count()), 0.0);
    adaptive_last_change_.assign(
        static_cast<std::size_t>(deployment_->site_count()),
        net::SimTime(-3600'000));
  }
  const auto& services = deployment_->services();
  for (std::size_t s = 0; s < services.size(); ++s) {
    const auto& svc = services[s];
    if (svc.letter_index < 0) continue;  // .nl keeps its own policy
    const auto& load = current_loads_[s];
    std::vector<double> capacity, offered;
    capacity.reserve(svc.site_ids.size());
    offered.reserve(svc.site_ids.size());
    for (const int id : svc.site_ids) {
      const auto& site = deployment_->site(id);
      capacity.push_back(site.spec().capacity_qps);
      const double observed =
          load.attack_qps[static_cast<std::size_t>(id)] +
          load.legit_qps[static_cast<std::size_t>(id)];
      auto& remembered = adaptive_last_offered_[static_cast<std::size_t>(id)];
      if (site.scope() == anycast::SiteScope::kDown || observed < remembered) {
        remembered *= kDecayPerStep;  // withdrawn (or shrinking): decay
      }
      remembered = std::max(remembered, observed);
      offered.push_back(remembered);
    }
    const auto advice =
        anycast::advise_observed(capacity, offered, obs_.get(), svc.letter);
    for (const auto& a : advice) {
      const int id = svc.site_ids[static_cast<std::size_t>(a.site_index)];
      auto& site = deployment_->site(id);
      if (now - adaptive_last_change_[static_cast<std::size_t>(id)] <
          kCoolDown) {
        continue;  // operators do not re-decide every minute
      }
      const auto normal = site.spec().global ? anycast::SiteScope::kGlobal
                                             : anycast::SiteScope::kLocalOnly;
      const auto before = site.scope();
      switch (a.action) {
        case anycast::AdvisedAction::kWithdraw:
          deployment_->apply_scope(id, anycast::SiteScope::kDown, now);
          break;
        case anycast::AdvisedAction::kPartialWithdraw:
          deployment_->apply_scope(
              id,
              site.spec().global ? anycast::SiteScope::kLocalOnly
                                 : anycast::SiteScope::kDown,
              now);
          break;
        case anycast::AdvisedAction::kAbsorb:
        case anycast::AdvisedAction::kNoAction:
          deployment_->apply_scope(id, normal, now);
          break;
      }
      if (site.scope() != before) {
        adaptive_last_change_[static_cast<std::size_t>(id)] = now;
        obs::emit_event(obs_.get(), obs::TraceEventType::kDefenseActivation,
                        now, site.letter(), site.label(),
                        anycast::to_string(a.action) + ": " + a.rationale,
                        a.overload);
      }
    }
  }
}

void SimulationEngine::apply_policy_step(net::SimTime now,
                                         SimulationResult& result) {
  (void)result;
  for (int id = 0; id < deployment_->site_count(); ++id) {
    auto& site = deployment_->site(id);
    const auto action = site.policy_state().step(
        site.outcome().utilization, site.arrival_loss(), now, config_.step,
        rng_);
    switch (action) {
      case anycast::PolicyAction::kNone:
        break;
      case anycast::PolicyAction::kWithdraw: {
        // A letter's last globally announced site never withdraws: the
        // operator keeps it up as a degraded absorber (case 5 of §2.2)
        // rather than blackhole the whole service. Primary/backup letters
        // are exempt: their fallback is administratively down by design.
        const auto& svc_of_site = deployment_->service(site.letter());
        const bool has_backup =
            svc_of_site.letter_index >= 0 &&
            deployment_->letters()[static_cast<std::size_t>(
                svc_of_site.letter_index)].primary_backup;
        if (site.scope() == anycast::SiteScope::kGlobal && !has_backup) {
          int global_sites = 0;
          for (int other : deployment_->service(site.letter()).site_ids) {
            if (deployment_->site(other).scope() ==
                anycast::SiteScope::kGlobal) {
              ++global_sites;
            }
          }
          if (global_sites <= 1) {
            site.policy_state().veto_withdrawal();
            break;
          }
        }
        const bool partial =
            site.policy_state().policy().partial_withdraw && site.spec().global;
        deployment_->apply_scope(id,
                                 partial ? anycast::SiteScope::kLocalOnly
                                         : anycast::SiteScope::kDown,
                                 now);
        break;
      }
      case anycast::PolicyAction::kReannounce:
        deployment_->apply_scope(id,
                                 site.spec().global
                                     ? anycast::SiteScope::kGlobal
                                     : anycast::SiteScope::kLocalOnly,
                                 now);
        break;
    }
  }
}

void SimulationEngine::update_h_root_backup(net::SimTime now) {
  const auto& services = deployment_->services();
  for (const auto& svc : services) {
    if (svc.letter_index < 0) continue;
    const auto& cfg =
        deployment_->letters()[static_cast<std::size_t>(svc.letter_index)];
    if (!cfg.primary_backup || svc.site_ids.size() < 2) continue;
    auto& primary = deployment_->site(svc.site_ids[0]);
    auto& backup = deployment_->site(svc.site_ids[1]);
    const bool primary_up = primary.scope() == anycast::SiteScope::kGlobal;
    if (!primary_up && backup.scope() == anycast::SiteScope::kDown) {
      deployment_->apply_scope(backup.site_id(), anycast::SiteScope::kGlobal,
                               now);
    } else if (primary_up && backup.scope() != anycast::SiteScope::kDown) {
      deployment_->apply_scope(backup.site_id(), anycast::SiteScope::kDown,
                               now);
    }
  }
}

}  // namespace rootstress::sim
