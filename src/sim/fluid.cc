#include "sim/fluid.h"

#include <algorithm>
#include <cstdint>
#include <span>

#include "net/packet.h"

namespace rootstress::sim {

ServiceLoad compute_service_load(const anycast::RootDeployment& deployment,
                                 const anycast::ServiceInfo& service,
                                 const attack::Botnet& botnet,
                                 const attack::LegitTraffic& legit,
                                 double attack_total_qps,
                                 double legit_total_qps) {
  ServiceLoad load;
  compute_service_load_into(deployment, service, botnet, legit,
                            attack_total_qps, legit_total_qps, load);
  return load;
}

void compute_service_load_into(const anycast::RootDeployment& deployment,
                               const anycast::ServiceInfo& service,
                               const attack::Botnet& botnet,
                               const attack::LegitTraffic& legit,
                               double attack_total_qps,
                               double legit_total_qps, ServiceLoad& out) {
  const auto& routing = deployment.routing();
  const auto site_count = static_cast<std::size_t>(deployment.site_count());
  out.attack_qps.resize(site_count + 1);
  out.legit_qps.resize(site_count + 1);
  if (routing.unrouted_slot() == static_cast<std::int32_t>(site_count)) {
    // SoA hot path: per-AS site slots feed branch-free accumulation with
    // routeless traffic landing in the trailing sink lane, drained here.
    const std::span<const std::int32_t> slots = routing.site_of(service.prefix);
    if (attack_total_qps > 0.0) {
      botnet.attack_by_site_into(slots, attack_total_qps, out.attack_qps);
    } else {
      std::fill(out.attack_qps.begin(), out.attack_qps.end(), 0.0);
    }
    legit.legit_by_site_into(slots, legit_total_qps, out.legit_qps);
    out.unrouted_attack = out.attack_qps[site_count];
    out.unrouted_legit = out.legit_qps[site_count];
    out.attack_qps[site_count] = 0.0;
    out.legit_qps[site_count] = 0.0;
    return;
  }
  // Route-based path for routings without a sink slot configured.
  const auto& routes = routing.routes(service.prefix);
  out.unrouted_attack = 0.0;
  out.unrouted_legit = 0.0;
  const std::span<double> attack(out.attack_qps.data(), site_count);
  const std::span<double> legit_span(out.legit_qps.data(), site_count);
  out.attack_qps[site_count] = 0.0;
  out.legit_qps[site_count] = 0.0;
  if (attack_total_qps > 0.0) {
    botnet.attack_by_site_into(routes, attack_total_qps, attack,
                               &out.unrouted_attack);
  } else {
    std::fill(attack.begin(), attack.end(), 0.0);
  }
  legit.legit_by_site_into(routes, legit_total_qps, legit_span,
                           &out.unrouted_legit);
}

double site_uplink_gbps(const anycast::AnycastSite& site, double offered_qps,
                        double query_payload_bytes,
                        double response_payload_bytes,
                        double response_suppression) {
  const double ingress_bps =
      offered_qps *
      static_cast<double>(net::wire_bytes(
          static_cast<std::size_t>(query_payload_bytes))) *
      8.0;
  const double served = std::min(offered_qps, site.spec().capacity_qps);
  const double egress_bps =
      served * (1.0 - std::clamp(response_suppression, 0.0, 1.0)) *
      static_cast<double>(net::wire_bytes(
          static_cast<std::size_t>(response_payload_bytes))) *
      8.0;
  return (ingress_bps + egress_bps) / 1e9;
}

}  // namespace rootstress::sim
