#include "sim/fluid.h"

#include <algorithm>

#include "net/packet.h"

namespace rootstress::sim {

ServiceLoad compute_service_load(const anycast::RootDeployment& deployment,
                                 const anycast::ServiceInfo& service,
                                 const attack::Botnet& botnet,
                                 const attack::LegitTraffic& legit,
                                 double attack_total_qps,
                                 double legit_total_qps) {
  ServiceLoad load;
  const auto& routes = deployment.routing().routes(service.prefix);
  const int site_count = deployment.site_count();
  if (attack_total_qps > 0.0) {
    load.attack_qps = botnet.attack_by_site(routes, attack_total_qps,
                                            site_count, &load.unrouted_attack);
  } else {
    load.attack_qps.assign(static_cast<std::size_t>(site_count), 0.0);
  }
  load.legit_qps = legit.legit_by_site(routes, legit_total_qps, site_count,
                                       &load.unrouted_legit);
  return load;
}

double site_uplink_gbps(const anycast::AnycastSite& site, double offered_qps,
                        double query_payload_bytes,
                        double response_payload_bytes,
                        double response_suppression) {
  const double ingress_bps =
      offered_qps *
      static_cast<double>(net::wire_bytes(
          static_cast<std::size_t>(query_payload_bytes))) *
      8.0;
  const double served = std::min(offered_qps, site.spec().capacity_qps);
  const double egress_bps =
      served * (1.0 - std::clamp(response_suppression, 0.0, 1.0)) *
      static_cast<double>(net::wire_bytes(
          static_cast<std::size_t>(response_payload_bytes))) *
      8.0;
  return (ingress_bps + egress_bps) / 1e9;
}

}  // namespace rootstress::sim
