#include "sim/fluid.h"

#include <algorithm>

#include "net/packet.h"

namespace rootstress::sim {

ServiceLoad compute_service_load(const anycast::RootDeployment& deployment,
                                 const anycast::ServiceInfo& service,
                                 const attack::Botnet& botnet,
                                 const attack::LegitTraffic& legit,
                                 double attack_total_qps,
                                 double legit_total_qps) {
  ServiceLoad load;
  compute_service_load_into(deployment, service, botnet, legit,
                            attack_total_qps, legit_total_qps, load);
  return load;
}

void compute_service_load_into(const anycast::RootDeployment& deployment,
                               const anycast::ServiceInfo& service,
                               const attack::Botnet& botnet,
                               const attack::LegitTraffic& legit,
                               double attack_total_qps,
                               double legit_total_qps, ServiceLoad& out) {
  const auto& routes = deployment.routing().routes(service.prefix);
  const auto site_count =
      static_cast<std::size_t>(deployment.site_count());
  out.attack_qps.resize(site_count);
  out.legit_qps.resize(site_count);
  out.unrouted_attack = 0.0;
  out.unrouted_legit = 0.0;
  if (attack_total_qps > 0.0) {
    botnet.attack_by_site_into(routes, attack_total_qps, out.attack_qps,
                               &out.unrouted_attack);
  } else {
    std::fill(out.attack_qps.begin(), out.attack_qps.end(), 0.0);
  }
  legit.legit_by_site_into(routes, legit_total_qps, out.legit_qps,
                           &out.unrouted_legit);
}

double site_uplink_gbps(const anycast::AnycastSite& site, double offered_qps,
                        double query_payload_bytes,
                        double response_payload_bytes,
                        double response_suppression) {
  const double ingress_bps =
      offered_qps *
      static_cast<double>(net::wire_bytes(
          static_cast<std::size_t>(query_payload_bytes))) *
      8.0;
  const double served = std::min(offered_qps, site.spec().capacity_qps);
  const double egress_bps =
      served * (1.0 - std::clamp(response_suppression, 0.0, 1.0)) *
      static_cast<double>(net::wire_bytes(
          static_cast<std::size_t>(response_payload_bytes))) *
      8.0;
  return (ingress_bps + egress_bps) / 1e9;
}

}  // namespace rootstress::sim
