#include "sim/scenario.h"

#include <cstdlib>
#include <string>

#include "attack/events2015.h"

namespace rootstress::sim {

ScenarioConfig november_2015_scenario(int vp_count, double attack_qps,
                                      bool include_baseline_week) {
  ScenarioConfig config;
  config.population.vp_count = vp_count;
  config.schedule = attack::events_of_november_2015(attack_qps);
  config.start = include_baseline_week ? net::SimTime::from_hours(-7 * 24)
                                       : net::SimTime(0);
  config.end = net::SimTime::from_hours(48);
  config.probe_window =
      net::SimInterval{net::SimTime(0), net::SimTime::from_hours(48)};
  return config;
}

ScenarioConfig quiet_days_scenario(int vp_count) {
  ScenarioConfig config;
  config.population.vp_count = vp_count;
  // No schedule: quiet days. Same deployment/measurement as the event
  // scenario so per-site medians are comparable.
  return config;
}

std::string validate(const ScenarioConfig& config) {
  if (!(config.start < config.end)) {
    return "scenario span is empty (start >= end)";
  }
  if (config.step.ms <= 0) return "step must be positive";
  if (config.bin_width.ms <= 0) return "bin width must be positive";
  if (config.step.ms > config.bin_width.ms) {
    return "step must not exceed the analysis bin width";
  }
  if (config.population.vp_count < 0) return "negative VP count";
  if (config.probe_window.end < config.probe_window.begin) {
    return "probe window ends before it begins";
  }
  if (config.maintenance_flap_per_step < 0.0 ||
      config.maintenance_flap_per_step > 1.0) {
    return "maintenance flap probability must be within [0, 1]";
  }
  if (!(config.deployment.capacity_scale > 0.0)) {
    return "capacity scale must be positive";
  }
  for (const auto& event : config.schedule.events()) {
    if (!(event.when.begin < event.when.end)) {
      return "attack event has a non-positive duration";
    }
    if (event.per_letter_qps < 0.0) return "negative attack rate";
  }
  if (config.playbook.has_value()) {
    if (std::string problem = playbook::validate(*config.playbook);
        !problem.empty()) {
      return "playbook: " + problem;
    }
    if (config.adaptive_defense) {
      return "playbook and adaptive_defense are mutually exclusive "
             "controllers; enable one";
    }
  }
  if (!config.fault_schedule.empty()) {
    if (std::string problem = fault::validate(config.fault_schedule);
        !problem.empty()) {
      return "fault_schedule: " + problem;
    }
  }
  if (config.resolver_profile.has_value()) {
    if (std::string problem =
            resolver::validate_population(*config.resolver_profile);
        !problem.empty()) {
      return "resolver_profile: " + problem;
    }
  }
  return {};
}

int vp_count_from_env(int fallback) {
  const char* env = std::getenv("ROOTSTRESS_VPS");
  if (env == nullptr) return fallback;
  const int value = std::atoi(env);
  return value > 0 ? value : fallback;
}

}  // namespace rootstress::sim
