// Counter-based randomness for Atlas probes.
//
// Probing is the one hot path that runs under the engine's thread pool,
// so its random draws cannot come from the engine's single sequential
// Rng: the draw order would depend on thread interleaving and results
// would differ run to run. Instead every probe derives its own stream
// from the probe's identity — (scenario seed, service, VP, probe time) —
// via stateless mix64 rounds. The draws a probe makes are therefore a
// pure function of that key: bit-identical for any thread count, any
// shard layout, and any execution order.
#pragma once

#include <cstdint>

#include "net/clock.h"
#include "util/rng.h"

namespace rootstress::sim {

/// The seed a probe's stream is keyed on. Exposed (rather than buried in
/// the engine) so tests can assert the purity contract directly.
inline std::uint64_t probe_stream_key(std::uint64_t seed, int service_index,
                                      int vp_id, net::SimTime when) noexcept {
  std::uint64_t key = util::mix64(seed ^ 0x9e3779b97f4a7c15ull);
  key = util::mix64(key ^ (static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(service_index)) *
                           0x100000001b3ull));
  key = util::mix64(key ^ (static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(vp_id)) *
                           0xc2b2ae3d27d4eb4full));
  key = util::mix64(key ^ static_cast<std::uint64_t>(when.ms));
  return key;
}

/// Generator for one probe. Draw order inside a probe is fixed by the
/// probe code path; across probes the streams are independent.
inline util::Rng probe_rng(std::uint64_t seed, int service_index, int vp_id,
                           net::SimTime when) noexcept {
  return util::Rng(probe_stream_key(seed, service_index, vp_id, when));
}

}  // namespace rootstress::sim
