#include "sim/scenario_2016.h"

#include "attack/events2016.h"

namespace rootstress::sim {

ScenarioConfig june_2016_scenario(int vp_count, double attack_qps) {
  ScenarioConfig config;
  config.population.vp_count = vp_count;
  config.schedule = attack::events_of_june_2016(attack_qps);
  config.end = net::SimTime::from_hours(48);
  config.probe_window =
      net::SimInterval{net::SimTime(0), net::SimTime::from_hours(48)};
  return config;
}

}  // namespace rootstress::sim
