#include "sim/scenario_builder.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rootstress::sim {

ScenarioBuilder ScenarioBuilder::november_2015() {
  return ScenarioBuilder(november_2015_scenario());
}

ScenarioBuilder ScenarioBuilder::quiet_days() {
  return ScenarioBuilder(quiet_days_scenario());
}

ScenarioBuilder ScenarioBuilder::events_2016() {
  return ScenarioBuilder(june_2016_scenario());
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  config_.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::threads(int threads) {
  config_.threads = threads;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::telemetry(bool enabled) {
  config_.telemetry = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::deployment(
    anycast::RootDeployment::Config config) {
  config_.deployment = std::move(config);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::capacity_scale(double scale) {
  config_.deployment.capacity_scale = scale;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::topology_stubs(int stub_count) {
  config_.deployment.topology.stub_count = stub_count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::synthetic_topology(int n_ases, int n_sites,
                                                     double tiering) {
  anycast::SyntheticDeployment syn;
  syn.services = 1;
  syn.sites_per_service = n_sites;
  syn.global_fraction = tiering;
  config_.deployment.synthetic = syn;
  config_.deployment.include_nl = false;
  // Size the synthesized hierarchy to ~n_ases total ASes: fixed tier-1
  // clique, tier-2 transit scaled with the target, the rest stubs. The
  // topology synthesizer spreads tier-2s over seven regions; site host
  // ASes (one per site) ride on top.
  bgp::TopologyConfig& topo = config_.deployment.topology;
  constexpr int kRegions = 7;
  topo.tier1_count = 10;
  topo.tier2_per_region = std::clamp(n_ases / 250, 8, 64);
  const int overhead =
      topo.tier1_count + kRegions * topo.tier2_per_region + n_sites;
  topo.stub_count = std::max(64, n_ases - overhead);
  config_.probe_letters = {'A'};
  config_.collect_rssac = false;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::force_policy(anycast::StressPolicy policy) {
  config_.deployment.force_policy = policy;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::adaptive_defense(bool enabled) {
  config_.adaptive_defense = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::playbook(playbook::Playbook playbook) {
  config_.playbook = std::move(playbook);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::rrl_enabled(bool enabled) {
  config_.deployment.rrl_enabled = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::schedule(attack::AttackSchedule schedule) {
  config_.schedule = std::move(schedule);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fault_schedule(fault::FaultSchedule schedule) {
  config_.fault_schedule = std::move(schedule);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::resolver_profile(
    resolver::PopulationConfig profile) {
  config_.resolver_profile = std::move(profile);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::attack_qps(double per_letter_qps) {
  attack_qps_ = per_letter_qps;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::botnet(attack::BotnetConfig config) {
  config_.botnet = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::legit(attack::LegitConfig config) {
  config_.legit = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::maintenance_flap(
    double per_step_probability) {
  config_.maintenance_flap_per_step = per_step_probability;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::span(net::SimTime start, net::SimTime end) {
  config_.start = start;
  config_.end = end;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::duration(net::SimTime length) {
  config_.end = config_.start + length;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::step(net::SimTime step) {
  config_.step = step;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::bin_width(net::SimTime width) {
  config_.bin_width = width;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::include_baseline_week(bool include) {
  include_baseline_week_ = include;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::vp_count(int count) {
  config_.population.vp_count = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::population(atlas::PopulationConfig config) {
  config_.population = config;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::probe_letters(std::vector<char> letters) {
  config_.probe_letters = std::move(letters);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::probe_window(net::SimInterval window) {
  config_.probe_window = window;
  probe_window_set_ = true;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::collect_records(bool enabled) {
  config_.collect_records = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::collect_rssac(bool enabled) {
  config_.collect_rssac = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::enable_collector(bool enabled) {
  config_.enable_collector = enabled;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fluid_only() {
  config_.collect_records = false;
  config_.enable_collector = false;
  config_.collect_rssac = false;
  return *this;
}

ScenarioConfig ScenarioBuilder::resolve() const {
  ScenarioConfig config = config_;
  if (include_baseline_week_ && config.start > net::SimTime::from_hours(-7 * 24)) {
    config.start = net::SimTime::from_hours(-7 * 24);
  }
  if (attack_qps_.has_value()) {
    std::vector<attack::AttackEvent> events = config.schedule.events();
    for (auto& event : events) event.per_letter_qps = *attack_qps_;
    config.schedule = attack::AttackSchedule(std::move(events));
  }
  if (!probe_window_set_) {
    // Clamp the (preset) window into the simulated span so shortening a
    // run does not require restating the window.
    config.probe_window.begin =
        std::max(config.probe_window.begin, config.start);
    config.probe_window.end = std::min(config.probe_window.end, config.end);
    config.probe_window.end =
        std::max(config.probe_window.end, config.probe_window.begin);
  }
  return config;
}

std::string ScenarioBuilder::validate() const {
  const ScenarioConfig config = resolve();
  if (std::string problem = sim::validate(config); !problem.empty()) {
    return problem;
  }
  // Cross-field invariants beyond what the engine has always enforced;
  // each of these mis-simulates silently rather than crashing.
  if (config.bin_width.ms % config.step.ms != 0) {
    return "bin width must be a whole multiple of the step";
  }
  if (config.probe_window.begin < config.start ||
      config.probe_window.end > config.end) {
    return "probe window must lie inside the simulated span";
  }
  return {};
}

ScenarioConfig ScenarioBuilder::build() const {
  if (std::string problem = validate(); !problem.empty()) {
    throw std::invalid_argument("ScenarioBuilder: " + problem);
  }
  return resolve();
}

std::optional<ScenarioConfig> ScenarioBuilder::try_build(
    std::string* error) const {
  std::string problem = validate();
  if (!problem.empty()) {
    if (error != nullptr) *error = std::move(problem);
    return std::nullopt;
  }
  return resolve();
}

}  // namespace rootstress::sim
