#include "bgp/simulator.h"

#include <stdexcept>

#include "obs/runtime.h"
#include "util/logging.h"

namespace rootstress::bgp {

AnycastRouting::AnycastRouting(const AsTopology& topology)
    : topology_(topology) {}

int AnycastRouting::register_prefix(std::string label,
                                    std::vector<AnycastOrigin> origins) {
  Table table;
  table.label = std::move(label);
  table.origins = std::move(origins);
  table.routes = compute_routes(topology_, table.origins);
  tables_.push_back(std::move(table));
  return static_cast<int>(tables_.size()) - 1;
}

std::vector<RouteChange> AnycastRouting::set_announced(int prefix, int site_id,
                                                       bool announced,
                                                       net::SimTime now) {
  Table& table = tables_.at(prefix);
  bool toggled = false;
  for (auto& origin : table.origins) {
    if (origin.site_id == site_id && origin.announced != announced) {
      origin.announced = announced;
      toggled = true;
    }
  }
  if (!toggled) return {};
  if (announced) {
    RS_LOG_INFO << table.label << " site " << site_id << " announced at "
                << now.to_string();
  } else {
    RS_LOG_WARN << table.label << " site " << site_id << " withdrawn at "
                << now.to_string();
  }
  trace_session(table, site_id, announced, /*local_only=*/false, now);
  return recompute(prefix, now);
}

std::vector<RouteChange> AnycastRouting::set_origin_state(int prefix,
                                                          int site_id,
                                                          bool announced,
                                                          bool local_only,
                                                          net::SimTime now) {
  Table& table = tables_.at(prefix);
  bool toggled = false;
  for (auto& origin : table.origins) {
    if (origin.site_id != site_id) continue;
    if (origin.announced != announced || origin.local_only != local_only) {
      origin.announced = announced;
      origin.local_only = local_only;
      toggled = true;
    }
  }
  if (!toggled) return {};
  if (announced) {
    RS_LOG_INFO << table.label << " site " << site_id << " -> "
                << (local_only ? "local-only" : "announced") << " at "
                << now.to_string();
  } else {
    RS_LOG_WARN << table.label << " site " << site_id << " -> withdrawn at "
                << now.to_string();
  }
  trace_session(table, site_id, announced, local_only, now);
  return recompute(prefix, now);
}

std::vector<RouteChange> AnycastRouting::set_prepend(int prefix, int site_id,
                                                     int prepend,
                                                     net::SimTime now) {
  Table& table = tables_.at(prefix);
  const auto value = static_cast<std::uint16_t>(prepend < 0 ? 0 : prepend);
  bool toggled = false;
  for (auto& origin : table.origins) {
    if (origin.site_id == site_id && origin.prepend != value) {
      origin.prepend = value;
      toggled = true;
    }
  }
  if (!toggled) return {};
  RS_LOG_INFO << table.label << " site " << site_id << " prepend -> "
              << value << " at " << now.to_string();
  return recompute(prefix, now);
}

int AnycastRouting::prepend(int prefix, int site_id) const {
  for (const auto& origin : tables_.at(prefix).origins) {
    if (origin.site_id == site_id) return origin.prepend;
  }
  return 0;
}

bool AnycastRouting::announced(int prefix, int site_id) const {
  for (const auto& origin : tables_.at(prefix).origins) {
    if (origin.site_id == site_id) return origin.announced;
  }
  return false;
}

std::vector<RouteChange> AnycastRouting::recompute(int prefix,
                                                   net::SimTime now) {
  Table& table = tables_[prefix];
  std::vector<RouteChoice> fresh = compute_routes(topology_, table.origins);
  std::vector<RouteChange> changes;
  for (int as = 0; as < static_cast<int>(fresh.size()); ++as) {
    if (fresh[as].site_id != table.routes[as].site_id) {
      changes.push_back(RouteChange{now, prefix, as,
                                    table.routes[as].site_id,
                                    fresh[as].site_id});
    }
  }
  table.routes = std::move(fresh);
  if (table.recomputes != nullptr) {
    table.recomputes->add();
    table.changes->add(changes.size());
  }
  if (observer_ && !changes.empty()) observer_(prefix, changes);
  return changes;
}

void AnycastRouting::attach_obs(obs::Runtime* obs) {
  obs_ = obs;
  for (auto& table : tables_) {
    if (obs == nullptr) {
      table.recomputes = nullptr;
      table.changes = nullptr;
      continue;
    }
    obs::Labels labels{{"letter", table.label}};
    table.recomputes = &obs->metrics().counter("bgp.recomputes", labels);
    table.changes = &obs->metrics().counter("bgp.route_changes", labels);
  }
}

void AnycastRouting::trace_session(const Table& table, int site_id,
                                   bool announced, bool local_only,
                                   net::SimTime now) {
  if (obs_ == nullptr) return;
  const char letter = table.label.size() == 1 ? table.label[0] : '\0';
  if (announced) {
    obs_->event(obs::TraceEventType::kBgpSessionRestore, now, letter,
                table.label + "#" + std::to_string(site_id),
                local_only ? "announcement restored (local-only)"
                           : "announcement restored",
                static_cast<double>(site_id));
  } else {
    obs_->event(obs::TraceEventType::kBgpSessionFailure, now, letter,
                table.label + "#" + std::to_string(site_id),
                "all BGP sessions of site torn down",
                static_cast<double>(site_id));
  }
}

}  // namespace rootstress::bgp
