#include "bgp/simulator.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <string_view>

#include "obs/runtime.h"
#include "util/logging.h"

namespace rootstress::bgp {

namespace {

void bucket_insert(std::vector<std::vector<int>>& buckets,
                   std::vector<int>& pos, int site, int as) {
  if (site < 0) return;
  if (static_cast<int>(buckets.size()) <= site) buckets.resize(site + 1);
  pos[as] = static_cast<int>(buckets[site].size());
  buckets[site].push_back(as);
}

void bucket_remove(std::vector<std::vector<int>>& buckets,
                   std::vector<int>& pos, int site, int as) {
  if (site < 0) return;
  std::vector<int>& bucket = buckets[site];
  const int p = pos[as];
  bucket[p] = bucket.back();
  pos[bucket[p]] = p;
  bucket.pop_back();
}

bool customer_direction(const RouteChoice& r) {
  return r.cls == RouteClass::kOrigin || r.cls == RouteClass::kCustomer;
}

}  // namespace

AnycastRouting::AnycastRouting(const AsTopology& topology)
    : topology_(topology) {
#ifdef NDEBUG
  cross_check_interval_ = 256;
#else
  cross_check_interval_ = 1;  // debug builds verify every recompute
#endif
  if (const char* env = std::getenv("ROOTSTRESS_BGP_MODE")) {
    const std::string_view value(env);
    if (value == "full") {
      mode_ = RecomputeMode::kFull;
    } else if (value == "incremental") {
      mode_ = RecomputeMode::kIncremental;
    }
  }
}

int AnycastRouting::register_prefix(std::string label,
                                    std::vector<AnycastOrigin> origins) {
  Table table;
  table.label = std::move(label);
  table.origins = std::move(origins);
  table.origin_host.reserve(table.origins.size());
  for (const AnycastOrigin& origin : table.origins) {
    const auto idx = topology_.index_of(origin.host_as);
    table.origin_host.push_back(idx ? *idx : -1);
  }
  rebuild_aux(table, compute_routing_state(topology_, table.origins));
  tables_.push_back(std::move(table));
  const auto n = static_cast<std::size_t>(topology_.as_count());
  if (up_changed_stamp_.size() < n) {
    up_changed_stamp_.resize(n, 0);
    best_changed_stamp_.resize(n, 0);
    up_queued_.resize(n, 0);
    best_queued_.resize(n, 0);
  }
  return static_cast<int>(tables_.size()) - 1;
}

void AnycastRouting::rebuild_aux(Table& table, RoutingState state) {
  table.routes = std::move(state.best);
  table.up = std::move(state.up);
  table.scoped = std::move(state.scoped);
  const int n = static_cast<int>(table.routes.size());
  table.site_of.resize(n);
  table.up_pos.assign(n, -1);
  table.best_pos.assign(n, -1);
  table.up_bucket.clear();
  table.best_bucket.clear();
  for (int as = 0; as < n; ++as) {
    const int site = table.routes[as].site_id;
    table.site_of[as] = site >= 0 ? site : unrouted_slot_;
    bucket_insert(table.up_bucket, table.up_pos, table.up[as].site_id, as);
    bucket_insert(table.best_bucket, table.best_pos, site, as);
  }
  rebuild_origin_caches(table);
}

void AnycastRouting::rebuild_origin_caches(Table& table) {
  const auto n = table.routes.size();
  table.origin_seed.assign(n, RouteChoice{});
  table.scoped_offer.assign(n, RouteChoice{});
  for (std::size_t i = 0; i < table.origins.size(); ++i) {
    const AnycastOrigin& o = table.origins[i];
    if (!o.announced) continue;
    const int h = table.origin_host[i];
    if (h < 0) continue;
    const net::Asn asn = topology_.info(h).asn;
    const RouteChoice self{RouteClass::kOrigin, o.site_id, o.prepend, asn};
    if (!o.local_only) {
      if (self < table.origin_seed[h]) table.origin_seed[h] = self;
      continue;
    }
    if (self < table.scoped_offer[h]) table.scoped_offer[h] = self;
    for (const Link& link : topology_.links(h)) {
      if (link.rel == Rel::kProvider) continue;  // never export upward
      const RouteClass cls = link.rel == Rel::kCustomer ? RouteClass::kProvider
                                                        : RouteClass::kPeer;
      const RouteChoice cand{cls, o.site_id,
                             static_cast<std::uint16_t>(1 + o.prepend), asn};
      if (cand < table.scoped_offer[link.neighbor]) {
        table.scoped_offer[link.neighbor] = cand;
      }
    }
  }
}

RouteChoice AnycastRouting::compute_origin_seed(const Table& table,
                                                int as) const {
  RouteChoice best{};
  const net::Asn asn = topology_.info(as).asn;
  for (std::size_t i = 0; i < table.origins.size(); ++i) {
    if (table.origin_host[i] != as) continue;
    const AnycastOrigin& o = table.origins[i];
    if (!o.announced || o.local_only) continue;
    const RouteChoice cand{RouteClass::kOrigin, o.site_id, o.prepend, asn};
    if (cand < best) best = cand;
  }
  return best;
}

RouteChoice AnycastRouting::compute_scoped_offer(const Table& table,
                                                 int as) const {
  RouteChoice best{};
  for (std::size_t i = 0; i < table.origins.size(); ++i) {
    const AnycastOrigin& o = table.origins[i];
    if (!o.announced || !o.local_only) continue;
    const int h = table.origin_host[i];
    if (h < 0) continue;
    if (h == as) {
      const RouteChoice self{RouteClass::kOrigin, o.site_id, o.prepend,
                             topology_.info(h).asn};
      if (self < best) best = self;
      continue;
    }
    // `as` receives h's NO_EXPORT announcement unless `as` is h's provider
    // (i.e. h is our customer). Class is from the receiver's point of view.
    for (const Link& link : topology_.links(as)) {
      if (link.neighbor != h || link.rel == Rel::kCustomer) continue;
      const RouteClass cls = link.rel == Rel::kProvider ? RouteClass::kProvider
                                                        : RouteClass::kPeer;
      const RouteChoice cand{cls, o.site_id,
                             static_cast<std::uint16_t>(1 + o.prepend),
                             topology_.info(h).asn};
      if (cand < best) best = cand;
    }
  }
  return best;
}

void AnycastRouting::set_unrouted_slot(std::int32_t slot) {
  if (slot == unrouted_slot_) return;
  for (Table& table : tables_) {
    const int n = static_cast<int>(table.routes.size());
    for (int as = 0; as < n; ++as) {
      if (!table.routes[as].reachable()) table.site_of[as] = slot;
    }
  }
  unrouted_slot_ = slot;
}

std::vector<RouteChange> AnycastRouting::set_announced(int prefix, int site_id,
                                                       bool announced,
                                                       net::SimTime now) {
  return mutate_origin(
      prefix, site_id,
      [announced](AnycastOrigin& origin) {
        if (origin.announced == announced) return false;
        origin.announced = announced;
        return true;
      },
      now,
      [&] {
        const Table& table = tables_[prefix];
        if (announced) {
          RS_LOG_INFO << table.label << " site " << site_id << " announced at "
                      << now.to_string();
        } else {
          RS_LOG_WARN << table.label << " site " << site_id << " withdrawn at "
                      << now.to_string();
        }
        trace_session(table, site_id, announced, /*local_only=*/false, now);
      });
}

std::vector<RouteChange> AnycastRouting::set_origin_state(int prefix,
                                                          int site_id,
                                                          bool announced,
                                                          bool local_only,
                                                          net::SimTime now) {
  return mutate_origin(
      prefix, site_id,
      [announced, local_only](AnycastOrigin& origin) {
        if (origin.announced == announced && origin.local_only == local_only) {
          return false;
        }
        origin.announced = announced;
        origin.local_only = local_only;
        return true;
      },
      now,
      [&] {
        const Table& table = tables_[prefix];
        if (announced) {
          RS_LOG_INFO << table.label << " site " << site_id << " -> "
                      << (local_only ? "local-only" : "announced") << " at "
                      << now.to_string();
        } else {
          RS_LOG_WARN << table.label << " site " << site_id
                      << " -> withdrawn at " << now.to_string();
        }
        trace_session(table, site_id, announced, local_only, now);
      });
}

std::vector<RouteChange> AnycastRouting::set_prepend(int prefix, int site_id,
                                                     int prepend,
                                                     net::SimTime now) {
  const auto value = static_cast<std::uint16_t>(prepend < 0 ? 0 : prepend);
  return mutate_origin(
      prefix, site_id,
      [value](AnycastOrigin& origin) {
        if (origin.prepend == value) return false;
        origin.prepend = value;
        return true;
      },
      now,
      [&] {
        RS_LOG_INFO << tables_[prefix].label << " site " << site_id
                    << " prepend -> " << value << " at " << now.to_string();
      });
}

std::vector<RouteChange> AnycastRouting::mutate_origin(
    int prefix, int site_id, const std::function<bool(AnycastOrigin&)>& fn,
    net::SimTime now, const std::function<void()>& on_toggled) {
  Table& table = tables_.at(prefix);
  bool toggled = false;
  for (AnycastOrigin& origin : table.origins) {
    if (origin.site_id == site_id) toggled |= fn(origin);
  }
  if (!toggled) return {};
  if (on_toggled) on_toggled();
  if (mode_ == RecomputeMode::kFull) return recompute_full(prefix, now);
  return recompute_incremental(prefix, site_id, now);
}

int AnycastRouting::prepend(int prefix, int site_id) const {
  for (const auto& origin : tables_.at(prefix).origins) {
    if (origin.site_id == site_id) return origin.prepend;
  }
  return 0;
}

bool AnycastRouting::announced(int prefix, int site_id) const {
  for (const auto& origin : tables_.at(prefix).origins) {
    if (origin.site_id == site_id) return origin.announced;
  }
  return false;
}

std::vector<RouteChange> AnycastRouting::recompute_full(int prefix,
                                                        net::SimTime now) {
  Table& table = tables_[prefix];
  RoutingState state = compute_routing_state(topology_, table.origins);
  std::vector<RouteChange> changes;
  for (int as = 0; as < static_cast<int>(state.best.size()); ++as) {
    if (state.best[as].site_id != table.routes[as].site_id) {
      changes.push_back(RouteChange{now, prefix, as,
                                    table.routes[as].site_id,
                                    state.best[as].site_id});
    }
  }
  rebuild_aux(table, std::move(state));
  ++table.recompute_seq;
  return finish_recompute(table, prefix, std::move(changes));
}

void AnycastRouting::record_up_change(int as, std::int32_t old_site) {
  if (up_changed_stamp_[as] == generation_) return;
  up_changed_stamp_[as] = generation_;
  up_changed_.push_back(ChangedAs{as, old_site});
}

void AnycastRouting::record_best_change(int as, std::int32_t old_site) {
  if (best_changed_stamp_[as] == generation_) return;
  best_changed_stamp_[as] = generation_;
  best_changed_.push_back(ChangedAs{as, old_site});
}

// Change propagation over the transit hierarchy. Stage 1 (`up`: customer
// routes) is a fixpoint over customer→provider edges; the best layer
// (stages 2/2b/3 folded into one local re-selection) is a fixpoint over
// provider→customer edges plus single-hop peer/NO_EXPORT offers whose
// inputs (stage-1 state, origin caches) are final by the time it runs.
// Both graphs are acyclic for valley-free hierarchies, so worklist
// iteration with *change* (not improvement) propagation converges to the
// unique fixpoint — the same one the full recompute finds. The crucial
// difference from a naive improvement wave: when a parent re-converges,
// its old export ceases to exist, so dependents must re-select even when
// the replacement offer compares worse than their stale route.
std::vector<RouteChange> AnycastRouting::recompute_incremental(
    int prefix, int site_id, net::SimTime now) {
  Table& t = tables_[prefix];
  const int n = static_cast<int>(t.routes.size());
  ++generation_;
  up_changed_.clear();
  best_changed_.clear();

  std::deque<int> up_work;
  std::deque<int> best_work;
  const auto push_up = [&](int as) {
    if (up_queued_[as]) return;
    up_queued_[as] = 1;
    up_work.push_back(as);
  };
  const auto push_best = [&](int as) {
    if (best_queued_[as]) return;
    best_queued_[as] = 1;
    best_work.push_back(as);
  };

  // Refresh the origin-driven caches around S's host ASes. Any AS whose
  // cached candidate moved becomes a worklist seed: origin seeds feed the
  // stage-1 layer, NO_EXPORT offers feed the best layer.
  for (std::size_t i = 0; i < t.origins.size(); ++i) {
    if (t.origins[i].site_id != site_id) continue;
    const int h = t.origin_host[i];
    if (h < 0) continue;
    const RouteChoice seed = compute_origin_seed(t, h);
    if (seed != t.origin_seed[h]) {
      t.origin_seed[h] = seed;
      push_up(h);
    }
    const RouteChoice offer = compute_scoped_offer(t, h);
    if (offer != t.scoped_offer[h]) {
      t.scoped_offer[h] = offer;
      push_best(h);
    }
    for (const Link& link : topology_.links(h)) {
      if (link.rel == Rel::kProvider) continue;  // h never exports upward
      const RouteChoice nb_offer = compute_scoped_offer(t, link.neighbor);
      if (nb_offer != t.scoped_offer[link.neighbor]) {
        t.scoped_offer[link.neighbor] = nb_offer;
        push_best(link.neighbor);
      }
    }
  }

  // Reverse-reachability seeds: every AS currently deriving its stage-1
  // or final route from site S re-selects. (The host seeds above already
  // cascade to these; the index makes the affected set explicit and keeps
  // the engine robust when a cascade path is cut by an earlier change.)
  if (site_id >= 0) {
    if (site_id < static_cast<int>(t.up_bucket.size())) {
      for (int as : t.up_bucket[site_id]) push_up(as);
    }
    if (site_id < static_cast<int>(t.best_bucket.size())) {
      for (int as : t.best_bucket[site_id]) push_best(as);
    }
  }

  // Failsafe: valley-free hierarchies are acyclic, so every AS settles in
  // O(depth) re-selections. A pathological (cyclic) topology falls back
  // to a full recompute instead of looping.
  std::size_t pops = 0;
  const std::size_t pop_budget = 16u * static_cast<std::size_t>(n) + 1024u;
  bool overflow = false;

  // Stage-1 layer: up[x] = min(origin seed, customer exports).
  while (!up_work.empty()) {
    if (++pops > pop_budget) {
      overflow = true;
      break;
    }
    const int x = up_work.front();
    up_work.pop_front();
    up_queued_[x] = 0;
    RouteChoice fresh = t.origin_seed[x];
    for (const Link& link : topology_.links(x)) {
      if (link.rel != Rel::kCustomer) continue;
      const RouteChoice& rn = t.up[link.neighbor];
      if (!customer_direction(rn)) continue;
      const RouteChoice cand{RouteClass::kCustomer, rn.site_id,
                             static_cast<std::uint16_t>(rn.path_len + 1),
                             topology_.info(link.neighbor).asn};
      if (cand < fresh) fresh = cand;
    }
    if (fresh == t.up[x]) continue;
    record_up_change(x, t.up[x].site_id);
    t.up[x] = fresh;
    for (const Link& link : topology_.links(x)) {
      if (link.rel == Rel::kProvider) push_up(link.neighbor);
    }
  }

  // Every stage-1 change invalidates its consumers in the best layer: the
  // AS itself (stage-2 baseline) and its peers (stage-2 offers).
  for (const ChangedAs& e : up_changed_) {
    push_best(e.as);
    for (const Link& link : topology_.links(e.as)) {
      if (link.rel == Rel::kPeer) push_best(link.neighbor);
    }
  }

  // Best layer: best[x] = min(up[x], peer offers, cached NO_EXPORT offer,
  // provider exports), with the same strict-improvement precedence the
  // staged full recompute applies (up ≺ peer ≺ scoped ≺ provider on ties).
  while (!overflow && !best_work.empty()) {
    if (++pops > pop_budget) {
      overflow = true;
      break;
    }
    const int x = best_work.front();
    best_work.pop_front();
    best_queued_[x] = 0;
    RouteChoice fresh = t.up[x];
    char scoped = 0;
    for (const Link& link : topology_.links(x)) {
      if (link.rel != Rel::kPeer) continue;
      const RouteChoice& rn = t.up[link.neighbor];
      if (!customer_direction(rn)) continue;
      const RouteChoice cand{RouteClass::kPeer, rn.site_id,
                             static_cast<std::uint16_t>(rn.path_len + 1),
                             topology_.info(link.neighbor).asn};
      if (cand < fresh) fresh = cand;
    }
    if (t.scoped_offer[x] < fresh) {
      fresh = t.scoped_offer[x];
      scoped = 1;
    }
    for (const Link& link : topology_.links(x)) {
      if (link.rel != Rel::kProvider) continue;
      const RouteChoice& rp = t.routes[link.neighbor];
      if (!rp.reachable() || t.scoped[link.neighbor]) continue;
      const RouteChoice cand{RouteClass::kProvider, rp.site_id,
                             static_cast<std::uint16_t>(rp.path_len + 1),
                             topology_.info(link.neighbor).asn};
      if (cand < fresh) {
        fresh = cand;
        scoped = 0;
      }
    }
    if (fresh == t.routes[x] && scoped == t.scoped[x]) continue;
    record_best_change(x, t.routes[x].site_id);
    t.routes[x] = fresh;
    t.scoped[x] = scoped;
    for (const Link& link : topology_.links(x)) {
      if (link.rel == Rel::kCustomer) push_best(link.neighbor);
    }
  }

  if (t.reselects != nullptr) t.reselects->add(pops);

  if (overflow) {
    // Drain queue flags, then recompute from scratch — diffing against the
    // pre-mutation sites recorded at first change.
    for (const int as : up_work) up_queued_[as] = 0;
    for (const int as : best_work) best_queued_[as] = 0;
    std::vector<std::int32_t> old_site(static_cast<std::size_t>(n));
    for (int as = 0; as < n; ++as) old_site[as] = t.routes[as].site_id;
    for (const ChangedAs& e : best_changed_) old_site[e.as] = e.old_site;
    RoutingState state = compute_routing_state(topology_, t.origins);
    std::vector<RouteChange> changes;
    for (int as = 0; as < n; ++as) {
      if (state.best[as].site_id != old_site[as]) {
        changes.push_back(
            RouteChange{now, prefix, as, old_site[as], state.best[as].site_id});
      }
    }
    rebuild_aux(t, std::move(state));
    ++t.recompute_seq;
    return finish_recompute(t, prefix, std::move(changes));
  }

  // Finalize: repair the reverse-reachability index and the site_of SoA
  // mirror, and emit changes in ascending AS order (matching the full
  // recompute's diff).
  for (const ChangedAs& e : up_changed_) {
    const int new_site = t.up[e.as].site_id;
    if (new_site == e.old_site) continue;
    bucket_remove(t.up_bucket, t.up_pos, e.old_site, e.as);
    bucket_insert(t.up_bucket, t.up_pos, new_site, e.as);
  }
  std::sort(best_changed_.begin(), best_changed_.end(),
            [](const ChangedAs& a, const ChangedAs& b) { return a.as < b.as; });
  std::vector<RouteChange> changes;
  for (const ChangedAs& e : best_changed_) {
    const int new_site = t.routes[e.as].site_id;
    if (new_site == e.old_site) continue;
    bucket_remove(t.best_bucket, t.best_pos, e.old_site, e.as);
    bucket_insert(t.best_bucket, t.best_pos, new_site, e.as);
    t.site_of[e.as] = new_site >= 0 ? new_site : unrouted_slot_;
    changes.push_back(RouteChange{now, prefix, e.as, e.old_site, new_site});
  }
  ++t.recompute_seq;
  if (cross_check_interval_ > 0 &&
      t.recompute_seq % static_cast<std::uint64_t>(cross_check_interval_) ==
          0) {
    cross_check(t);
  }
  return finish_recompute(t, prefix, std::move(changes));
}

std::vector<RouteChange> AnycastRouting::finish_recompute(
    Table& table, int prefix, std::vector<RouteChange> changes) {
  if (table.recomputes != nullptr) {
    table.recomputes->add();
    table.changes->add(changes.size());
  }
  if (observer_ && !changes.empty()) observer_(prefix, changes);
  return changes;
}

void AnycastRouting::cross_check(const Table& table) const {
  const RoutingState full = compute_routing_state(topology_, table.origins);
  if (full.best != table.routes || full.up != table.up ||
      full.scoped != table.scoped) {
    throw std::logic_error(
        "incremental BGP recompute diverged from full recompute for prefix " +
        table.label);
  }
}

void AnycastRouting::attach_obs(obs::Runtime* obs) {
  obs_ = obs;
  for (auto& table : tables_) {
    if (obs == nullptr) {
      table.recomputes = nullptr;
      table.changes = nullptr;
      table.reselects = nullptr;
      continue;
    }
    obs::Labels labels{{"letter", table.label}};
    table.recomputes = &obs->metrics().counter("bgp.recomputes", labels);
    table.changes = &obs->metrics().counter("bgp.route_changes", labels);
    table.reselects =
        &obs->metrics().counter("bgp.incremental_reselects", labels);
  }
}

void AnycastRouting::trace_session(const Table& table, int site_id,
                                   bool announced, bool local_only,
                                   net::SimTime now) {
  if (obs_ == nullptr) return;
  const char letter = table.label.size() == 1 ? table.label[0] : '\0';
  if (announced) {
    obs_->event(obs::TraceEventType::kBgpSessionRestore, now, letter,
                table.label + "#" + std::to_string(site_id),
                local_only ? "announcement restored (local-only)"
                           : "announcement restored",
                static_cast<double>(site_id));
  } else {
    obs_->event(obs::TraceEventType::kBgpSessionFailure, now, letter,
                table.label + "#" + std::to_string(site_id),
                "all BGP sessions of site torn down",
                static_cast<double>(site_id));
  }
}

}  // namespace rootstress::bgp
