// Policy routing computation: which anycast site each AS routes to.
//
// Implements the standard three-stage Gao-Rexford model used by AS-level
// simulators: (1) customer routes propagate up transit edges from the
// origins, (2) peer routes cross a single peering edge, (3) provider
// routes propagate down transit edges. Preference at every AS is
// customer > peer > provider, then shortest AS path, then deterministic
// tiebreaks. Local-only origins (NO_EXPORT/NOPEER sites, §2.1) reach only
// the host AS's direct neighbors.
#pragma once

#include <span>
#include <vector>

#include "bgp/route.h"
#include "bgp/topology.h"

namespace rootstress::bgp {

/// Computes, for every AS in `topo`, its chosen route toward the anycast
/// prefix announced by `origins`. Withdrawn origins (announced == false)
/// contribute nothing. Returns one RouteChoice per dense AS index.
std::vector<RouteChoice> compute_routes(const AsTopology& topo,
                                        std::span<const AnycastOrigin> origins);

}  // namespace rootstress::bgp
