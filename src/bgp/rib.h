// Policy routing computation: which anycast site each AS routes to.
//
// Implements the standard three-stage Gao-Rexford model used by AS-level
// simulators: (1) customer routes propagate up transit edges from the
// origins, (2) peer routes cross a single peering edge, (3) provider
// routes propagate down transit edges. Preference at every AS is
// customer > peer > provider, then shortest AS path, then deterministic
// tiebreaks. Local-only origins (NO_EXPORT/NOPEER sites, §2.1) reach only
// the host AS's direct neighbors.
#pragma once

#include <span>
#include <vector>

#include "bgp/route.h"
#include "bgp/topology.h"

namespace rootstress::bgp {

/// Full routing fixed point for one prefix. `best` is the chosen route
/// per dense AS index (what compute_routes returns). `up` and `scoped`
/// expose the internal stage state that incremental recomputation must
/// persist between mutations:
///  - `up[as]` is the stage-1 customer-direction route (kOrigin or
///    kCustomer, kNone when the AS has no customer path). An AS whose
///    final best was superseded by a peer/provider/scoped route still
///    exports its stage-1 route upward, so `best` alone is not enough to
///    reconstruct what an AS offers its providers and peers.
///  - `scoped[as]` is nonzero when `best[as]` came from a local-only
///    (NO_EXPORT) announcement and must not be re-exported down.
struct RoutingState {
  std::vector<RouteChoice> best;
  std::vector<RouteChoice> up;
  std::vector<char> scoped;
};

/// Computes the complete routing fixed point (best + stage internals)
/// for the anycast prefix announced by `origins`. Withdrawn origins
/// (announced == false) contribute nothing.
RoutingState compute_routing_state(const AsTopology& topo,
                                   std::span<const AnycastOrigin> origins);

/// Computes, for every AS in `topo`, its chosen route toward the anycast
/// prefix announced by `origins`. Withdrawn origins (announced == false)
/// contribute nothing. Returns one RouteChoice per dense AS index.
std::vector<RouteChoice> compute_routes(const AsTopology& topo,
                                        std::span<const AnycastOrigin> origins);

}  // namespace rootstress::bgp
