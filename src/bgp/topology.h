// AS-level Internet topology with business relationships.
//
// The simulator routes over a synthesized provider/peer/customer graph:
// a tier-1 clique, regional tier-2 transit ASes, and stub ASes (eyeball
// networks hosting vantage points, plus dedicated host ASes for anycast
// sites). Region-aware attachment makes catchments geographically
// coherent, which the paper's RTT analyses depend on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/route.h"
#include "net/asn.h"
#include "net/geo.h"
#include "util/rng.h"

namespace rootstress::bgp {

/// Role of an AS in the synthesized hierarchy.
enum class AsTier : std::uint8_t { kTier1, kTier2, kStub };

/// One adjacency from the owning AS.
struct Link {
  int neighbor = -1;  ///< dense index of the neighbor AS
  Rel rel = Rel::kPeer;  ///< what the neighbor is *to me*
};

/// Static AS attributes.
struct AsInfo {
  net::Asn asn{};
  AsTier tier = AsTier::kStub;
  net::GeoPoint location{};
  std::string region;  ///< "EU", "NA", ...
};

/// Parameters for topology synthesis.
struct TopologyConfig {
  int tier1_count = 10;
  int tier2_per_region = 12;
  int stub_count = 1200;
  int providers_per_tier2 = 3;   ///< tier-1 uplinks per tier-2
  int peers_per_tier2 = 4;       ///< same-region tier-2 peerings
  int providers_per_stub = 2;    ///< tier-2 uplinks per stub
  /// Fraction of a stub's uplinks forced into the stub's own region.
  double regional_attachment = 0.85;
  std::uint64_t seed = 1;
};

/// The AS graph. ASes are addressed by dense index internally; the
/// Asn <-> index mapping is exposed for interfaces that speak ASNs.
class AsTopology {
 public:
  AsTopology() = default;

  /// Adds an AS; returns its dense index. ASNs must be unique.
  int add_as(AsInfo info);

  /// Adds a provider->customer transit edge (by dense index).
  void add_transit(int provider, int customer);

  /// Adds a settlement-free peering (by dense index).
  void add_peering(int a, int b);

  int as_count() const noexcept { return static_cast<int>(infos_.size()); }
  const AsInfo& info(int index) const noexcept { return infos_[index]; }
  std::span<const Link> links(int index) const noexcept { return links_[index]; }

  /// Dense index for an ASN; nullopt if unknown.
  std::optional<int> index_of(net::Asn asn) const;

  /// Total directed link entries (2x the undirected edge count).
  std::size_t link_entry_count() const noexcept;

  /// All stub-tier AS indices (candidate VP homes).
  std::vector<int> stub_indices() const;

  /// All tier-1 AS indices.
  std::vector<int> tier1_indices() const;

  /// Tier-2 AS indices in `region` (candidate site upstreams).
  std::vector<int> tier2_in_region(std::string_view region) const;

  /// Synthesizes a hierarchical, region-structured topology.
  static AsTopology synthesize(const TopologyConfig& config);

  /// Adds a multihomed edge AS in `region` near `location` (used for
  /// anycast site host ASes); returns its dense index. The AS is attached
  /// to `upstreams` same-region tier-2 providers (fewer if the region is
  /// small).
  int add_edge_as(net::Asn asn, const std::string& region,
                  net::GeoPoint location, int upstreams, util::Rng& rng);

 private:
  std::vector<AsInfo> infos_;
  std::vector<std::vector<Link>> links_;
};

}  // namespace rootstress::bgp
