// Catchment accounting: which ASes (and how many) each site serves.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/route.h"
#include "bgp/topology.h"

namespace rootstress::bgp {

/// Number of ASes routed to each site id. Index = site id; ASes with no
/// route are counted in `unreachable`.
struct CatchmentSizes {
  std::vector<int> per_site;
  int unreachable = 0;
};

/// Computes per-site AS counts from a route table. `site_count` sizes the
/// output vector (site ids must be < site_count).
CatchmentSizes catchment_sizes(const std::vector<RouteChoice>& routes,
                               int site_count);

/// Struct-of-arrays variant over AnycastRouting::site_of(): entries
/// outside [0, site_count) — the -1 default and the sink-slot convention
/// alike — count as unreachable.
CatchmentSizes catchment_sizes(std::span<const std::int32_t> site_of,
                               int site_count);

/// Groups dense AS indices by the site they route to (-1 key holds
/// unreachable ASes).
std::unordered_map<int, std::vector<int>> ases_by_site(
    const std::vector<RouteChoice>& routes);

/// Weighted catchment: sums `weight[as]` per site (e.g. VPs or query load
/// per AS). `weights` must have one entry per AS.
std::vector<double> weighted_catchment(const std::vector<RouteChoice>& routes,
                                       const std::vector<double>& weights,
                                       int site_count);

/// Reconstructs the AS-level path from `from_as` (dense index) to the
/// anycast origin its route leads to, by following each hop's `via`
/// pointer — the simulator's analogue of a traceroute, usable to
/// cross-validate CHAOS catchment mapping the way the paper's cited
/// methodology does. Returns dense AS indices, `from_as` first, origin
/// last; empty when `from_as` has no route (or on an inconsistent
/// table).
std::vector<int> reconstruct_path(const AsTopology& topo,
                                  const std::vector<RouteChoice>& routes,
                                  int from_as);

}  // namespace rootstress::bgp
