#include "bgp/rib.h"

#include <deque>
#include <queue>

namespace rootstress::bgp {

namespace {

/// True when `candidate` is strictly preferred over `incumbent`.
bool better(const RouteChoice& candidate, const RouteChoice& incumbent) {
  return candidate < incumbent;
}

}  // namespace

RoutingState compute_routing_state(const AsTopology& topo,
                                   std::span<const AnycastOrigin> origins) {
  const int n = topo.as_count();
  RoutingState state;
  state.best.resize(n);
  std::vector<RouteChoice>& best = state.best;

  // --- Stage 1: customer routes, BFS up transit edges from global origins.
  // `frontier` holds ASes whose customer-class route may still export
  // upward. Origins of local-only sites are handled separately below.
  std::deque<int> frontier;
  for (const auto& origin : origins) {
    if (!origin.announced || origin.local_only) continue;
    const auto idx = topo.index_of(origin.host_as);
    if (!idx) continue;
    // Prepend hops count into the seed path length, so every path through
    // this origin looks `prepend` hops longer than it is.
    RouteChoice self{RouteClass::kOrigin, origin.site_id, origin.prepend,
                     topo.info(*idx).asn};
    if (better(self, best[*idx])) {
      best[*idx] = self;
      frontier.push_back(*idx);
    }
  }
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop_front();
    const RouteChoice ru = best[u];
    if (ru.cls != RouteClass::kOrigin && ru.cls != RouteClass::kCustomer) {
      continue;  // superseded since enqueue
    }
    for (const Link& link : topo.links(u)) {
      if (link.rel != Rel::kProvider) continue;  // export up only
      RouteChoice cand{RouteClass::kCustomer, ru.site_id,
                       static_cast<std::uint16_t>(ru.path_len + 1),
                       topo.info(u).asn};
      if (better(cand, best[link.neighbor])) {
        best[link.neighbor] = cand;
        frontier.push_back(link.neighbor);
      }
    }
  }
  // Snapshot the customer-direction fixed point: this is what every AS
  // exports to its providers and peers regardless of later stages.
  state.up = best;

  // --- Stage 2: peer routes, one peering hop from any customer/origin
  // route. Peer routes are not re-exported to peers or providers, so a
  // single pass suffices.
  std::vector<RouteChoice> peer_candidates(n);
  for (int u = 0; u < n; ++u) {
    const RouteChoice& ru = best[u];
    if (ru.cls != RouteClass::kOrigin && ru.cls != RouteClass::kCustomer) {
      continue;
    }
    for (const Link& link : topo.links(u)) {
      if (link.rel != Rel::kPeer) continue;
      RouteChoice cand{RouteClass::kPeer, ru.site_id,
                       static_cast<std::uint16_t>(ru.path_len + 1),
                       topo.info(u).asn};
      if (better(cand, peer_candidates[link.neighbor])) {
        peer_candidates[link.neighbor] = cand;
      }
    }
  }
  for (int u = 0; u < n; ++u) {
    if (peer_candidates[u].reachable() && better(peer_candidates[u], best[u])) {
      best[u] = peer_candidates[u];
    }
  }

  // --- Stage 2b: local-only origins. The host AS originates; direct
  // neighbors receive the route (classed by their relationship to the
  // host) but never re-export it. `scoped` marks ASes whose current best
  // route is scope-limited so stage 3 will not propagate it onward.
  state.scoped.assign(n, 0);
  std::vector<char>& scoped = state.scoped;
  for (const auto& origin : origins) {
    if (!origin.announced || !origin.local_only) continue;
    const auto idx = topo.index_of(origin.host_as);
    if (!idx) continue;
    RouteChoice self{RouteClass::kOrigin, origin.site_id, origin.prepend,
                     topo.info(*idx).asn};
    if (better(self, best[*idx])) {
      best[*idx] = self;
      scoped[*idx] = 1;
    }
    for (const Link& link : topo.links(*idx)) {
      // Local-site announcements go to IXP peers and customers only —
      // not to transit providers. (Handing a NO_EXPORT route to a transit
      // provider would make that provider's best path unexportable and
      // hide the service from its whole customer cone.)
      if (link.rel == Rel::kProvider) continue;
      const RouteClass cls = link.rel == Rel::kCustomer ? RouteClass::kProvider
                                                        : RouteClass::kPeer;
      RouteChoice cand{cls, origin.site_id,
                       static_cast<std::uint16_t>(1 + origin.prepend),
                       topo.info(*idx).asn};
      if (better(cand, best[link.neighbor])) {
        best[link.neighbor] = cand;
        scoped[link.neighbor] = 1;
      }
    }
  }

  // --- Stage 3: provider routes, shortest-first down transit edges from
  // every routed AS. Dijkstra-style so parents settle before children.
  using Item = std::pair<std::uint16_t, int>;  // (candidate child len, parent)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  for (int u = 0; u < n; ++u) {
    if (best[u].reachable() && !scoped[u]) {
      queue.emplace(static_cast<std::uint16_t>(best[u].path_len + 1), u);
    }
  }
  while (!queue.empty()) {
    const auto [child_len, u] = queue.top();
    queue.pop();
    const RouteChoice ru = best[u];
    if (!ru.reachable() || ru.path_len + 1 != child_len || scoped[u]) {
      continue;  // stale entry, or a scope-limited route
    }
    for (const Link& link : topo.links(u)) {
      if (link.rel != Rel::kCustomer) continue;  // export down only
      RouteChoice cand{RouteClass::kProvider, ru.site_id, child_len,
                       topo.info(u).asn};
      if (better(cand, best[link.neighbor])) {
        best[link.neighbor] = cand;
        scoped[link.neighbor] = 0;  // now holds a globally exportable route
        queue.emplace(static_cast<std::uint16_t>(child_len + 1),
                      link.neighbor);
      }
    }
  }
  return state;
}

std::vector<RouteChoice> compute_routes(
    const AsTopology& topo, std::span<const AnycastOrigin> origins) {
  return std::move(compute_routing_state(topo, origins).best);
}

}  // namespace rootstress::bgp
