#include "bgp/topology.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace rootstress::bgp {

namespace {
// Region weights for stub placement: roughly where the Internet's edge
// networks (and RIPE Atlas probes) are. Europe is deliberately heavy;
// the Atlas population layer adds further bias on top.
struct RegionWeight {
  const char* region;
  double weight;
};
constexpr RegionWeight kRegionWeights[] = {
    {"EU", 0.40}, {"NA", 0.25}, {"AS", 0.15}, {"SA", 0.07},
    {"OC", 0.05}, {"ME", 0.04}, {"AF", 0.04},
};

const net::Location& random_location_in(std::string_view region,
                                        util::Rng& rng) {
  const auto all = net::all_locations();
  // Reservoir-sample a location from the region.
  const net::Location* chosen = &all[0];
  std::size_t seen = 0;
  for (const auto& loc : all) {
    if (loc.region != region) continue;
    ++seen;
    if (rng.below(seen) == 0) chosen = &loc;
  }
  return *chosen;
}
}  // namespace

int AsTopology::add_as(AsInfo info) {
  infos_.push_back(std::move(info));
  links_.emplace_back();
  return static_cast<int>(infos_.size()) - 1;
}

void AsTopology::add_transit(int provider, int customer) {
  links_[provider].push_back(Link{customer, Rel::kCustomer});
  links_[customer].push_back(Link{provider, Rel::kProvider});
}

void AsTopology::add_peering(int a, int b) {
  links_[a].push_back(Link{b, Rel::kPeer});
  links_[b].push_back(Link{a, Rel::kPeer});
}

std::optional<int> AsTopology::index_of(net::Asn asn) const {
  for (int i = 0; i < as_count(); ++i) {
    if (infos_[i].asn == asn) return i;
  }
  return std::nullopt;
}

std::size_t AsTopology::link_entry_count() const noexcept {
  std::size_t n = 0;
  for (const auto& l : links_) n += l.size();
  return n;
}

std::vector<int> AsTopology::stub_indices() const {
  std::vector<int> out;
  for (int i = 0; i < as_count(); ++i) {
    if (infos_[i].tier == AsTier::kStub) out.push_back(i);
  }
  return out;
}

std::vector<int> AsTopology::tier1_indices() const {
  std::vector<int> out;
  for (int i = 0; i < as_count(); ++i) {
    if (infos_[i].tier == AsTier::kTier1) out.push_back(i);
  }
  return out;
}

std::vector<int> AsTopology::tier2_in_region(std::string_view region) const {
  std::vector<int> out;
  for (int i = 0; i < as_count(); ++i) {
    if (infos_[i].tier == AsTier::kTier2 && infos_[i].region == region) {
      out.push_back(i);
    }
  }
  return out;
}

AsTopology AsTopology::synthesize(const TopologyConfig& config) {
  AsTopology topo;
  util::Rng rng(config.seed);
  std::uint32_t next_asn = 100;

  // Tier-1 clique, spread across major regions.
  std::vector<int> tier1;
  for (int i = 0; i < config.tier1_count; ++i) {
    const auto& rw = kRegionWeights[i % 3];  // EU/NA/AS backbone spread
    const auto& loc = random_location_in(rw.region, rng);
    tier1.push_back(topo.add_as(AsInfo{net::Asn(next_asn++), AsTier::kTier1,
                                       loc.point, rw.region}));
  }
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      topo.add_peering(tier1[i], tier1[j]);
    }
  }

  // Regional tier-2 transit providers.
  std::unordered_map<std::string, std::vector<int>> tier2_by_region;
  for (const auto& rw : kRegionWeights) {
    for (int i = 0; i < config.tier2_per_region; ++i) {
      const auto& loc = random_location_in(rw.region, rng);
      const int idx = topo.add_as(AsInfo{net::Asn(next_asn++), AsTier::kTier2,
                                         loc.point, rw.region});
      tier2_by_region[rw.region].push_back(idx);
      // Uplinks to distinct tier-1s.
      std::unordered_set<int> chosen;
      while (static_cast<int>(chosen.size()) <
             std::min<int>(config.providers_per_tier2,
                           static_cast<int>(tier1.size()))) {
        chosen.insert(tier1[rng.below(tier1.size())]);
      }
      for (int provider : chosen) topo.add_transit(provider, idx);
    }
    // Same-region tier-2 peering mesh (sparse).
    auto& regional = tier2_by_region[rw.region];
    for (std::size_t i = 0; i < regional.size(); ++i) {
      for (int p = 0; p < config.peers_per_tier2; ++p) {
        const std::size_t j = rng.below(regional.size());
        if (j != i && j > i) topo.add_peering(regional[i], regional[j]);
      }
    }
  }

  // Stub (eyeball) ASes.
  std::vector<double> weights;
  for (const auto& rw : kRegionWeights) weights.push_back(rw.weight);
  for (int s = 0; s < config.stub_count; ++s) {
    const auto& rw = kRegionWeights[rng.weighted(weights)];
    const auto& loc = random_location_in(rw.region, rng);
    const int idx = topo.add_as(AsInfo{net::Asn(next_asn++), AsTier::kStub,
                                       loc.point, rw.region});
    std::unordered_set<int> chosen;
    for (int u = 0; u < config.providers_per_stub; ++u) {
      const bool regional = rng.chance(config.regional_attachment);
      const std::vector<int>* pool = &tier2_by_region[rw.region];
      if (!regional || pool->empty()) {
        const auto& other = kRegionWeights[rng.weighted(weights)];
        if (!tier2_by_region[other.region].empty()) {
          pool = &tier2_by_region[other.region];
        }
      }
      if (pool->empty()) continue;
      chosen.insert((*pool)[rng.below(pool->size())]);
    }
    for (int provider : chosen) topo.add_transit(provider, idx);
  }
  return topo;
}

int AsTopology::add_edge_as(net::Asn asn, const std::string& region,
                            net::GeoPoint location, int upstreams,
                            util::Rng& rng) {
  if (index_of(asn).has_value()) {
    throw std::invalid_argument("duplicate ASN in add_edge_as");
  }
  const int idx = add_as(AsInfo{asn, AsTier::kStub, location, region});
  auto pool = tier2_in_region(region);
  if (pool.empty()) {
    // Fall back to any tier-2 (tiny custom topologies).
    for (int i = 0; i < as_count(); ++i) {
      if (infos_[i].tier == AsTier::kTier2) pool.push_back(i);
    }
  }
  if (pool.empty()) return idx;
  std::unordered_set<int> chosen;
  const int want = std::min<int>(upstreams, static_cast<int>(pool.size()));
  while (static_cast<int>(chosen.size()) < want) {
    chosen.insert(pool[rng.below(pool.size())]);
  }
  for (int provider : chosen) add_transit(provider, idx);
  return idx;
}

}  // namespace rootstress::bgp
