#include "bgp/route.h"

namespace rootstress::bgp {

std::string to_string(Rel rel) {
  switch (rel) {
    case Rel::kProvider: return "provider";
    case Rel::kPeer: return "peer";
    case Rel::kCustomer: return "customer";
  }
  return "?";
}

std::string to_string(RouteClass cls) {
  switch (cls) {
    case RouteClass::kOrigin: return "origin";
    case RouteClass::kCustomer: return "customer";
    case RouteClass::kPeer: return "peer";
    case RouteClass::kProvider: return "provider";
    case RouteClass::kNone: return "none";
  }
  return "?";
}

}  // namespace rootstress::bgp
