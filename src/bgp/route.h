// BGP route vocabulary for the AS-level simulator.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "net/asn.h"
#include "net/ipv4.h"

namespace rootstress::bgp {

/// Business relationship of a neighbor from the local AS's perspective.
enum class Rel : std::uint8_t {
  kProvider,  ///< neighbor is my transit provider
  kPeer,      ///< settlement-free peer
  kCustomer,  ///< neighbor buys transit from me
};

/// Where the best route was learned from, in Gao-Rexford preference order.
/// Lower enumerator = more preferred.
enum class RouteClass : std::uint8_t {
  kOrigin = 0,    ///< this AS originates the prefix (hosts a site)
  kCustomer = 1,  ///< learned from a customer
  kPeer = 2,      ///< learned from a peer
  kProvider = 3,  ///< learned from a provider
  kNone = 4,      ///< no route
};

std::string to_string(Rel rel);
std::string to_string(RouteClass cls);

/// The route one AS holds toward an anycast prefix. `site_id` identifies
/// which anycast site the route leads to — the quantity that defines the
/// site's catchment.
struct RouteChoice {
  RouteClass cls = RouteClass::kNone;
  int site_id = -1;              ///< winning origin site, -1 if unreachable
  std::uint16_t path_len = 0;    ///< AS-path length from this AS to origin
  net::Asn via{};                ///< neighbor the route was learned from

  bool reachable() const noexcept { return cls != RouteClass::kNone; }

  /// Total preference order: class, then path length, then deterministic
  /// tiebreaks (lower via-ASN, then lower site id).
  friend constexpr auto operator<=>(const RouteChoice& a,
                                    const RouteChoice& b) noexcept {
    if (auto c = a.cls <=> b.cls; c != 0) return c;
    if (auto c = a.path_len <=> b.path_len; c != 0) return c;
    if (auto c = a.via.value <=> b.via.value; c != 0) return c;
    return a.site_id <=> b.site_id;
  }
  friend constexpr bool operator==(const RouteChoice&,
                                   const RouteChoice&) noexcept = default;
};

/// An anycast origin: one site announcing the shared prefix from its host
/// AS. `local_only` models BGP-scoped sites (NO_EXPORT/NOPEER): the route
/// reaches only the host AS's direct neighbors and is not re-exported.
struct AnycastOrigin {
  int site_id = -1;
  net::Asn host_as{};
  bool announced = true;
  bool local_only = false;
  /// AS-path prepend hops on this origin's announcement. Lengthens the
  /// apparent path, shrinking the site's catchment without withdrawing it
  /// (the classic traffic-engineering nudge).
  std::uint16_t prepend = 0;
};

}  // namespace rootstress::bgp
