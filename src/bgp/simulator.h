// Dynamic anycast routing: announce/withdraw events and their effects.
//
// AnycastRouting owns one route table per registered prefix (one per root
// letter plus .nl) over a shared topology. Site announcements toggle over
// time — explicit withdrawals, BGP session failures under load, and
// recoveries — and every recomputation yields the list of per-AS route
// changes, which feed both the measurement layer (site flips, §3.4) and
// the route collector (Fig 9).
//
// Recomputation is incremental by default: each table persists the full
// Gao-Rexford stage state (stage-1 customer routes, final bests, scope
// flags, per-AS origin-seed and NO_EXPORT-offer caches) plus a
// reverse-reachability index from each origin site to the ASes currently
// routing via it. A mutation of site S re-selects only the ASes whose
// inputs actually changed: worklist change-propagation over the acyclic
// transit hierarchy — the stage-1 `up` layer relaxes customer→provider,
// then the best layer relaxes provider→customer — seeded from S's host
// ASes, S's reverse-reachability buckets, and any AS whose scoped-offer
// cache moved. Every value CHANGE (improvement or degradation) re-enqueues
// the ASes that consume it, so stale routes via re-converged parents are
// re-selected rather than kept. The result is bit-identical to a full
// recompute — enforced by periodic (debug builds: every-step)
// cross-checks.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bgp/rib.h"
#include "bgp/route.h"
#include "bgp/topology.h"
#include "net/clock.h"

namespace rootstress::obs {
class Counter;
class Runtime;
}  // namespace rootstress::obs

namespace rootstress::bgp {

/// One AS's route to one prefix changed.
struct RouteChange {
  net::SimTime time{};
  int prefix = -1;     ///< prefix id from register_prefix
  int as_index = -1;
  int old_site = -1;   ///< -1 = unreachable
  int new_site = -1;
};

/// How AnycastRouting reacts to origin mutations.
enum class RecomputeMode {
  kFull,         ///< recompute every AS from scratch on every mutation
  kIncremental,  ///< delta propagation over the affected set (default)
};

/// Multi-prefix dynamic routing over a shared topology. Not thread-safe:
/// mutations must be serialized (the engine only mutates routing in its
/// serial phases).
class AnycastRouting {
 public:
  /// The topology must outlive the router. Topology must be final before
  /// the first register_prefix. Honors ROOTSTRESS_BGP_MODE=full|incremental.
  explicit AnycastRouting(const AsTopology& topology);

  /// Registers an anycast prefix (e.g. one root letter) with its origin
  /// set; returns the prefix id. Routes are computed immediately.
  int register_prefix(std::string label, std::vector<AnycastOrigin> origins);

  int prefix_count() const noexcept { return static_cast<int>(tables_.size()); }
  const std::string& label(int prefix) const { return tables_[prefix].label; }

  /// Current route of every AS (dense index) for `prefix`.
  const std::vector<RouteChoice>& routes(int prefix) const {
    return tables_[prefix].routes;
  }

  /// Struct-of-arrays view of the catchment: the winning site id per
  /// dense AS index, kept in lockstep with routes(). Unreachable ASes
  /// hold `unrouted_slot()` (default -1); set_unrouted_slot lets the
  /// fluid kernels point them at a trailing sink lane instead so the
  /// per-AS aggregation loop is branch-free.
  std::span<const std::int32_t> site_of(int prefix) const {
    return tables_[prefix].site_of;
  }

  /// Remaps the value stored in site_of() for unreachable ASes (applies
  /// to current and future entries). Typically the global site count.
  void set_unrouted_slot(std::int32_t slot);
  std::int32_t unrouted_slot() const noexcept { return unrouted_slot_; }

  /// The origins of `prefix` (site announce state included).
  const std::vector<AnycastOrigin>& origins(int prefix) const {
    return tables_[prefix].origins;
  }

  /// Sets whether `site_id` of `prefix` is announced. When the state
  /// changes, routes are recomputed and the resulting per-AS changes are
  /// returned (and also delivered to the observer, if any).
  std::vector<RouteChange> set_announced(int prefix, int site_id,
                                         bool announced, net::SimTime now);

  /// Sets the full origin state of a site: announced and whether the
  /// announcement is BGP-scoped to direct neighbors (partial withdrawal).
  /// Recomputes and returns changes when anything toggled.
  std::vector<RouteChange> set_origin_state(int prefix, int site_id,
                                            bool announced, bool local_only,
                                            net::SimTime now);

  /// Sets the AS-path prepend on `site_id`'s announcement of `prefix`
  /// (traffic engineering: longer apparent path, smaller catchment).
  /// Recomputes and returns changes when the value actually moved.
  std::vector<RouteChange> set_prepend(int prefix, int site_id, int prepend,
                                       net::SimTime now);

  /// Single entry point for all origin mutations: applies `fn` to every
  /// origin of `site_id`, and — when fn reports a change for at least one
  /// origin — invokes `on_toggled` (logging/tracing hook, may be null)
  /// and recomputes routes per the active RecomputeMode.
  std::vector<RouteChange> mutate_origin(
      int prefix, int site_id, const std::function<bool(AnycastOrigin&)>& fn,
      net::SimTime now, const std::function<void()>& on_toggled = nullptr);

  /// Current prepend of a site's origin (0 if the site is unknown).
  int prepend(int prefix, int site_id) const;

  /// Observer for route changes (the collector). Called once per
  /// recomputation with all changes of that recomputation.
  using Observer = std::function<void(int prefix,
                                      const std::vector<RouteChange>&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// True if the site currently announces.
  bool announced(int prefix, int site_id) const;

  /// Recomputation strategy. kIncremental (the default) is bit-identical
  /// to kFull; kFull exists for cross-checking and benchmarking.
  void set_mode(RecomputeMode mode) noexcept { mode_ = mode; }
  RecomputeMode mode() const noexcept { return mode_; }

  /// Every `interval`-th incremental recompute is verified against a full
  /// compute_routing_state (0 disables; 1 = every step). Defaults to 1 in
  /// debug builds and 256 in release builds. Divergence throws
  /// std::logic_error.
  void set_cross_check_interval(int interval) noexcept {
    cross_check_interval_ = interval;
  }

  /// Attaches a telemetry runtime (nullable): session failures/restores
  /// become trace events, recomputations and per-AS route changes become
  /// counters. Call after every prefix is registered.
  void attach_obs(obs::Runtime* obs);

 private:
  struct Table {
    std::string label;
    std::vector<AnycastOrigin> origins;
    std::vector<int> origin_host;        ///< dense index per origin (-1 unknown)
    std::vector<RouteChoice> routes;     ///< final best per AS
    std::vector<RouteChoice> up;         ///< stage-1 customer route per AS
    std::vector<char> scoped;            ///< best is NO_EXPORT-scoped
    std::vector<std::int32_t> site_of;   ///< routes[as].site_id (SoA mirror)
    /// Per-AS caches of the two origin-driven candidate groups, so local
    /// re-selection never scans the origin list: the best global
    /// self-origination seed (stage 1) and the best NO_EXPORT offer from
    /// a local-only origin at this AS or a direct neighbor (stage 2b).
    std::vector<RouteChoice> origin_seed;
    std::vector<RouteChoice> scoped_offer;
    // Reverse-reachability index: per site, the ASes whose stage-1 route
    // (up_bucket) or final best (best_bucket) leads to it, with per-AS
    // positions for O(1) swap-removal.
    std::vector<std::vector<int>> up_bucket;
    std::vector<std::vector<int>> best_bucket;
    std::vector<int> up_pos;
    std::vector<int> best_pos;
    std::uint64_t recompute_seq = 0;
    obs::Counter* recomputes = nullptr;
    obs::Counter* changes = nullptr;
    obs::Counter* reselects = nullptr;
  };

  std::vector<RouteChange> recompute_full(int prefix, net::SimTime now);
  std::vector<RouteChange> recompute_incremental(int prefix, int site_id,
                                                 net::SimTime now);
  std::vector<RouteChange> finish_recompute(Table& table, int prefix,
                                            std::vector<RouteChange> changes);
  void rebuild_aux(Table& table, RoutingState state);
  void rebuild_origin_caches(Table& table);
  RouteChoice compute_origin_seed(const Table& table, int as) const;
  RouteChoice compute_scoped_offer(const Table& table, int as) const;
  void cross_check(const Table& table) const;
  void trace_session(const Table& table, int site_id, bool announced,
                     bool local_only, net::SimTime now);

  struct ChangedAs {
    int as = -1;
    std::int32_t old_site = -1;
  };

  // Scratch for incremental recomputation (mutations are serialized, so
  // one set shared by all tables). Epoch-stamped marks avoid O(n) clears.
  void record_up_change(int as, std::int32_t old_site);
  void record_best_change(int as, std::int32_t old_site);

  const AsTopology& topology_;
  std::vector<Table> tables_;
  Observer observer_;
  obs::Runtime* obs_ = nullptr;
  RecomputeMode mode_ = RecomputeMode::kIncremental;
  int cross_check_interval_ = 0;  // resolved in ctor
  std::int32_t unrouted_slot_ = -1;

  std::uint32_t generation_ = 0;
  std::vector<std::uint32_t> up_changed_stamp_;
  std::vector<std::uint32_t> best_changed_stamp_;
  std::vector<ChangedAs> up_changed_;
  std::vector<ChangedAs> best_changed_;
  std::vector<char> up_queued_;
  std::vector<char> best_queued_;
};

}  // namespace rootstress::bgp
