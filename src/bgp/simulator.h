// Dynamic anycast routing: announce/withdraw events and their effects.
//
// AnycastRouting owns one route table per registered prefix (one per root
// letter plus .nl) over a shared topology. Site announcements toggle over
// time — explicit withdrawals, BGP session failures under load, and
// recoveries — and every recomputation yields the list of per-AS route
// changes, which feed both the measurement layer (site flips, §3.4) and
// the route collector (Fig 9).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bgp/rib.h"
#include "bgp/route.h"
#include "bgp/topology.h"
#include "net/clock.h"

namespace rootstress::obs {
class Counter;
class Runtime;
}  // namespace rootstress::obs

namespace rootstress::bgp {

/// One AS's route to one prefix changed.
struct RouteChange {
  net::SimTime time{};
  int prefix = -1;     ///< prefix id from register_prefix
  int as_index = -1;
  int old_site = -1;   ///< -1 = unreachable
  int new_site = -1;
};

/// Multi-prefix dynamic routing over a shared topology.
class AnycastRouting {
 public:
  /// The topology must outlive the router.
  explicit AnycastRouting(const AsTopology& topology);

  /// Registers an anycast prefix (e.g. one root letter) with its origin
  /// set; returns the prefix id. Routes are computed immediately.
  int register_prefix(std::string label, std::vector<AnycastOrigin> origins);

  int prefix_count() const noexcept { return static_cast<int>(tables_.size()); }
  const std::string& label(int prefix) const { return tables_[prefix].label; }

  /// Current route of every AS (dense index) for `prefix`.
  const std::vector<RouteChoice>& routes(int prefix) const {
    return tables_[prefix].routes;
  }

  /// The origins of `prefix` (site announce state included).
  const std::vector<AnycastOrigin>& origins(int prefix) const {
    return tables_[prefix].origins;
  }

  /// Sets whether `site_id` of `prefix` is announced. When the state
  /// changes, routes are recomputed and the resulting per-AS changes are
  /// returned (and also delivered to the observer, if any).
  std::vector<RouteChange> set_announced(int prefix, int site_id,
                                         bool announced, net::SimTime now);

  /// Sets the full origin state of a site: announced and whether the
  /// announcement is BGP-scoped to direct neighbors (partial withdrawal).
  /// Recomputes and returns changes when anything toggled.
  std::vector<RouteChange> set_origin_state(int prefix, int site_id,
                                            bool announced, bool local_only,
                                            net::SimTime now);

  /// Sets the AS-path prepend on `site_id`'s announcement of `prefix`
  /// (traffic engineering: longer apparent path, smaller catchment).
  /// Recomputes and returns changes when the value actually moved.
  std::vector<RouteChange> set_prepend(int prefix, int site_id, int prepend,
                                       net::SimTime now);

  /// Current prepend of a site's origin (0 if the site is unknown).
  int prepend(int prefix, int site_id) const;

  /// Observer for route changes (the collector). Called once per
  /// recomputation with all changes of that recomputation.
  using Observer = std::function<void(int prefix,
                                      const std::vector<RouteChange>&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// True if the site currently announces.
  bool announced(int prefix, int site_id) const;

  /// Attaches a telemetry runtime (nullable): session failures/restores
  /// become trace events, recomputations and per-AS route changes become
  /// counters. Call after every prefix is registered.
  void attach_obs(obs::Runtime* obs);

 private:
  struct Table {
    std::string label;
    std::vector<AnycastOrigin> origins;
    std::vector<RouteChoice> routes;
    obs::Counter* recomputes = nullptr;
    obs::Counter* changes = nullptr;
  };

  std::vector<RouteChange> recompute(int prefix, net::SimTime now);
  void trace_session(const Table& table, int site_id, bool announced,
                     bool local_only, net::SimTime now);

  const AsTopology& topology_;
  std::vector<Table> tables_;
  Observer observer_;
  obs::Runtime* obs_ = nullptr;
};

}  // namespace rootstress::bgp
