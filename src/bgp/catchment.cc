#include "bgp/catchment.h"

#include "bgp/topology.h"

namespace rootstress::bgp {

CatchmentSizes catchment_sizes(const std::vector<RouteChoice>& routes,
                               int site_count) {
  CatchmentSizes out;
  out.per_site.assign(static_cast<std::size_t>(site_count), 0);
  for (const auto& route : routes) {
    if (route.site_id >= 0 && route.site_id < site_count) {
      ++out.per_site[static_cast<std::size_t>(route.site_id)];
    } else {
      ++out.unreachable;
    }
  }
  return out;
}

CatchmentSizes catchment_sizes(std::span<const std::int32_t> site_of,
                               int site_count) {
  CatchmentSizes out;
  out.per_site.assign(static_cast<std::size_t>(site_count), 0);
  for (const std::int32_t site : site_of) {
    if (site >= 0 && site < site_count) {
      ++out.per_site[static_cast<std::size_t>(site)];
    } else {
      ++out.unreachable;
    }
  }
  return out;
}

std::unordered_map<int, std::vector<int>> ases_by_site(
    const std::vector<RouteChoice>& routes) {
  std::unordered_map<int, std::vector<int>> out;
  for (int as = 0; as < static_cast<int>(routes.size()); ++as) {
    out[routes[as].site_id].push_back(as);
  }
  return out;
}

std::vector<int> reconstruct_path(const AsTopology& topo,
                                  const std::vector<RouteChoice>& routes,
                                  int from_as) {
  std::vector<int> path;
  int current = from_as;
  // path_len bounds the walk; an inconsistent table aborts cleanly.
  for (int hop = 0; hop < 256; ++hop) {
    if (current < 0 || current >= static_cast<int>(routes.size())) return {};
    const RouteChoice& route = routes[static_cast<std::size_t>(current)];
    if (!route.reachable()) return {};
    path.push_back(current);
    if (route.cls == RouteClass::kOrigin) return path;
    const auto next = topo.index_of(route.via);
    if (!next || *next == current) return {};
    current = *next;
  }
  return {};
}

std::vector<double> weighted_catchment(const std::vector<RouteChoice>& routes,
                                       const std::vector<double>& weights,
                                       int site_count) {
  std::vector<double> out(static_cast<std::size_t>(site_count), 0.0);
  for (std::size_t as = 0; as < routes.size() && as < weights.size(); ++as) {
    const int site = routes[as].site_id;
    if (site >= 0 && site < site_count) {
      out[static_cast<std::size_t>(site)] += weights[as];
    }
  }
  return out;
}

}  // namespace rootstress::bgp
