#include "bgp/collector.h"

#include <algorithm>

#include "obs/runtime.h"

namespace rootstress::bgp {

RouteCollector::RouteCollector(const AsTopology& topo,
                               const CollectorConfig& config, int prefix_count,
                               net::SimTime start, net::SimTime bin_width,
                               std::size_t bins)
    : ambient_visibility_(config.ambient_visibility), rng_(config.seed) {
  std::vector<int> na_stubs, other_stubs;
  for (int i = 0; i < topo.as_count(); ++i) {
    if (topo.info(i).tier != AsTier::kStub) continue;
    (topo.info(i).region == "NA" ? na_stubs : other_stubs).push_back(i);
  }
  is_peer_.assign(static_cast<std::size_t>(topo.as_count()), 0);
  for (int p = 0; p < config.peer_count; ++p) {
    const bool na = rng_.chance(config.na_bias);
    const auto& pool = (na && !na_stubs.empty()) || other_stubs.empty()
                           ? na_stubs
                           : other_stubs;
    if (pool.empty()) break;
    const int as = pool[rng_.below(pool.size())];
    if (!is_peer_[static_cast<std::size_t>(as)]) {
      is_peer_[static_cast<std::size_t>(as)] = 1;
      peers_.push_back(as);
    }
  }
  series_.reserve(static_cast<std::size_t>(prefix_count));
  for (int i = 0; i < prefix_count; ++i) {
    series_.emplace_back(start.ms, bin_width.ms, bins);
  }
}

void RouteCollector::observe(int prefix,
                             const std::vector<RouteChange>& changes) {
  if (prefix < 0 || prefix >= static_cast<int>(series_.size()) ||
      changes.empty()) {
    return;
  }
  auto& series = series_[static_cast<std::size_t>(prefix)];
  const net::SimTime t = changes.front().time;
  // Peers whose own best path moved log an update each.
  std::uint64_t observations = 0;
  for (const auto& change : changes) {
    if (change.as_index >= 0 &&
        change.as_index < static_cast<int>(is_peer_.size()) &&
        is_peer_[static_cast<std::size_t>(change.as_index)]) {
      ++observations;
    }
  }
  // Full-feed churn: each peer independently logs a sample of the other
  // changes (path attribute updates that do not move its own best site).
  // Normalized by 100 changed-ASes so a full-table event registers each
  // peer a handful of times rather than once per changed AS.
  const double ambient_mean = ambient_visibility_ *
                              static_cast<double>(changes.size()) *
                              static_cast<double>(peers_.size()) / 100.0;
  observations += rng_.poisson(ambient_mean);
  if (updates_ != nullptr && observations > 0) updates_->add(observations);
  for (std::uint64_t i = 0; i < observations; ++i) series.count_event(t.ms);
}

void RouteCollector::attach_obs(obs::Runtime* obs) {
  if (obs == nullptr) {
    updates_ = nullptr;
    return;
  }
  updates_ = &obs->metrics().counter("bgp.collector.updates",
                                     {{"component", "collector"}});
  obs->metrics()
      .gauge("bgp.collector.peers", {{"component", "collector"}})
      .set(static_cast<double>(peers_.size()));
}

}  // namespace rootstress::bgp
