// BGPmon-style route-update collector.
//
// The paper counts route changes per letter in 10-minute bins from 152
// BGPmon peers (Fig 9). Our collector peers at a configurable set of ASes
// (US-biased by default, as the paper notes for BGPmon) and counts, per
// prefix and bin, the update observations those peers would log: its own
// best-path changes plus a sampled share of the churn elsewhere in the
// table (full-feed peers see AS-path attribute updates for changes that do
// not move their own best site).
#pragma once

#include <vector>

#include "bgp/simulator.h"
#include "bgp/topology.h"
#include "util/rng.h"
#include "util/time_series.h"

namespace rootstress::bgp {

/// Collector configuration.
struct CollectorConfig {
  int peer_count = 152;
  /// Probability a peer logs an update for a route change that does not
  /// affect the peer's own best path (full-feed attribute churn).
  double ambient_visibility = 0.02;
  /// Fraction of peers placed in NA stubs (the paper suspects its BGPmon
  /// peers are mostly U.S.-based).
  double na_bias = 0.7;
  std::uint64_t seed = 7;
};

/// Counts route-change observations per prefix in time bins.
class RouteCollector {
 public:
  /// Chooses peer ASes from `topo` stubs and prepares one series per
  /// prefix. `prefix_count` series of `bins` x `bin_ms` starting at
  /// `start`.
  RouteCollector(const AsTopology& topo, const CollectorConfig& config,
                 int prefix_count, net::SimTime start, net::SimTime bin_width,
                 std::size_t bins);

  /// Feeds one recomputation's changes (call from AnycastRouting's
  /// observer).
  void observe(int prefix, const std::vector<RouteChange>& changes);

  /// Per-bin observation counts for `prefix`.
  const util::BinnedSeries& series(int prefix) const {
    return series_[static_cast<std::size_t>(prefix)];
  }

  const std::vector<int>& peer_ases() const noexcept { return peers_; }

  /// Attaches a telemetry runtime (nullable): logged update observations
  /// become the "bgp.collector.updates" counter, and the peer count is
  /// published as a gauge.
  void attach_obs(obs::Runtime* obs);

 private:
  std::vector<int> peers_;
  std::vector<char> is_peer_;  ///< dense AS index -> peer?
  std::vector<util::BinnedSeries> series_;
  double ambient_visibility_;
  util::Rng rng_;
  obs::Counter* updates_ = nullptr;
};

}  // namespace rootstress::bgp
