#include "resolver/enduser.h"

#include <algorithm>

#include "obs/runtime.h"
#include "resolver/cache.h"
#include "resolver/selection.h"
#include "util/time_series.h"

namespace rootstress::resolver {

RootServiceView::RootServiceView(const sim::SimulationResult& result,
                                 double default_rtt_ms) {
  start_ = result.start;
  bin_width_ = result.bin_width;
  end_ = result.end;
  bins_ = static_cast<std::size_t>((end_ - start_).ms / bin_width_.ms);
  success_.assign(kLetterCount, std::vector<double>(bins_, 1.0));
  rtt_.assign(kLetterCount, std::vector<double>(bins_, default_rtt_ms));

  // Success probability from the fluid legit series.
  for (int letter = 0; letter < kLetterCount; ++letter) {
    const char c = static_cast<char>('A' + letter);
    const int s = result.service_index(c);
    if (s < 0) continue;
    const auto& served =
        result.service_served_legit_qps[static_cast<std::size_t>(s)];
    const auto& failed =
        result.service_failed_legit_qps[static_cast<std::size_t>(s)];
    for (std::size_t b = 0; b < bins_ && b < served.bin_count(); ++b) {
      const double sv = served.mean(b);
      const double fl = failed.mean(b);
      if (sv + fl > 0.0) {
        success_[static_cast<std::size_t>(letter)][b] = sv / (sv + fl);
      }
    }
  }

  // RTT medians from probe records where available.
  std::vector<std::vector<util::BinnedSeries>> samples;
  samples.reserve(kLetterCount);
  for (int letter = 0; letter < kLetterCount; ++letter) {
    samples.emplace_back();
    samples.back().emplace_back(start_.ms, bin_width_.ms, bins_,
                                /*keep_samples=*/true);
  }
  for (const auto& record : result.records) {
    if (record.outcome != atlas::ProbeOutcome::kSite) continue;
    if (record.letter_index >= kLetterCount) continue;
    samples[record.letter_index][0].add(record.time().ms,
                                        static_cast<double>(record.rtt_ms));
  }
  for (int letter = 0; letter < kLetterCount; ++letter) {
    for (std::size_t b = 0; b < bins_; ++b) {
      const double median = samples[static_cast<std::size_t>(letter)][0].median(b);
      if (median > 0.0) rtt_[static_cast<std::size_t>(letter)][b] = median;
    }
  }
}

std::size_t RootServiceView::bin_of(net::SimTime t) const {
  if (t < start_) return 0;
  const auto bin = static_cast<std::size_t>((t - start_).ms / bin_width_.ms);
  return std::min(bin, bins_ - 1);
}

double RootServiceView::success_probability(int letter, net::SimTime t) const {
  if (letter < 0 || letter >= kLetterCount || bins_ == 0) return 1.0;
  return success_[static_cast<std::size_t>(letter)][bin_of(t)];
}

double RootServiceView::rtt_ms(int letter, net::SimTime t) const {
  if (letter < 0 || letter >= kLetterCount || bins_ == 0) return 60.0;
  return rtt_[static_cast<std::size_t>(letter)][bin_of(t)];
}

EndUserSeries simulate_end_users(const sim::SimulationResult& result,
                                 const EndUserConfig& config) {
  const RootServiceView view(result);
  util::Rng rng(config.seed);

  const std::size_t bins = view.bins();
  EndUserSeries series;
  series.strategy = config.strategy;
  series.failure_rate.assign(bins, 0.0);
  series.mean_latency_ms.assign(bins, 0.0);
  series.root_query_rate.assign(bins, 0.0);

  std::vector<std::uint64_t> queries_per_bin(bins, 0);
  std::vector<std::uint64_t> failures_per_bin(bins, 0);
  std::vector<std::uint64_t> root_queries_per_bin(bins, 0);
  std::vector<double> latency_sum(bins, 0.0);
  std::vector<std::uint64_t> latency_count(bins, 0);

  std::uint64_t total_queries = 0, total_failures = 0, cache_hits = 0;

  const double span_hours = (view.end() - view.start()).seconds() / 3600.0;
  for (int r = 0; r < config.resolvers; ++r) {
    LetterSelector selector(config.strategy, r);
    TtlCache cache(static_cast<std::size_t>(config.name_space) * 2);
    util::Rng local = rng.fork(static_cast<std::uint64_t>(r));

    // Poisson arrivals across the span.
    const double expected =
        config.root_lookups_per_hour * span_hours;
    const auto n_queries = local.poisson(expected);
    for (std::uint64_t q = 0; q < n_queries; ++q) {
      const net::SimTime when(
          view.start().ms +
          static_cast<std::int64_t>(local.uniform() *
                                    static_cast<double>(
                                        (view.end() - view.start()).ms)));
      const auto bin = static_cast<std::size_t>(
          (when - view.start()).ms / result.bin_width.ms);
      if (bin >= bins) continue;
      ++queries_per_bin[bin];
      ++total_queries;

      const std::uint64_t name =
          local.below(static_cast<std::uint64_t>(config.name_space));
      if (config.enable_cache && cache.hit(name, when)) {
        ++cache_hits;
        latency_sum[bin] += 1.0;  // answered locally, ~negligible
        ++latency_count[bin];
        continue;
      }

      bool resolved = false;
      double latency = 0.0;
      for (int attempt = 0; attempt < config.max_attempts; ++attempt) {
        const int letter = selector.pick(attempt, local);
        const double p = view.success_probability(letter, when);
        const double rtt = view.rtt_ms(letter, when);
        ++root_queries_per_bin[bin];
        if (local.chance(p) && rtt < config.per_try_timeout_ms) {
          latency += rtt;
          selector.report(letter, true, rtt);
          resolved = true;
          break;
        }
        latency += config.per_try_timeout_ms;  // waited out the timeout
        selector.report(letter, false, 0.0);
      }
      if (resolved) {
        if (config.enable_cache) {
          cache.put(name, when, config.referral_ttl);
        }
        latency_sum[bin] += latency;
        ++latency_count[bin];
      } else {
        ++failures_per_bin[bin];
        ++total_failures;
      }
    }
  }

  for (std::size_t b = 0; b < bins; ++b) {
    if (queries_per_bin[b] > 0) {
      series.failure_rate[b] =
          static_cast<double>(failures_per_bin[b]) / queries_per_bin[b];
      series.root_query_rate[b] =
          static_cast<double>(root_queries_per_bin[b]) / queries_per_bin[b];
    }
    if (latency_count[b] > 0) {
      series.mean_latency_ms[b] = latency_sum[b] / latency_count[b];
    }
  }
  series.overall_failure_rate =
      total_queries > 0
          ? static_cast<double>(total_failures) / total_queries
          : 0.0;
  series.cache_hit_rate =
      total_queries > 0 ? static_cast<double>(cache_hits) / total_queries
                        : 0.0;

  if (config.obs != nullptr) {
    std::uint64_t root_queries = 0;
    for (const std::uint64_t n : root_queries_per_bin) root_queries += n;
    const obs::Labels labels{{"component", "enduser"},
                             {"strategy", to_string(config.strategy)}};
    auto& metrics = config.obs->metrics();
    metrics.counter("enduser.client_queries", labels).add(total_queries);
    metrics.counter("enduser.root_queries", labels).add(root_queries);
    metrics.counter("enduser.failures", labels).add(total_failures);
    metrics.counter("enduser.cache_hits", labels).add(cache_hits);
  }
  return series;
}

}  // namespace rootstress::resolver
