#include "resolver/cache.h"

#include <algorithm>

namespace rootstress::resolver {

namespace {

/// std:: heap algorithms build max-heaps; ordering by *later* expiry
/// keeps the entry closest to expiry on top.
bool expires_later(const net::SimTime a, const net::SimTime b) noexcept {
  return a > b;
}

}  // namespace

TtlCache::TtlCache(std::size_t capacity) : capacity_(capacity) {}

bool TtlCache::hit(std::uint64_t key, net::SimTime now) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (now < it->second) {
      ++hits_;
      return true;
    }
    // Expired: release the slot immediately instead of letting a dead
    // entry pin capacity (and force a live eviction) until sweep().
    entries_.erase(it);
    ++expirations_;
  }
  ++misses_;
  return false;
}

void TtlCache::put(std::uint64_t key, net::SimTime now, net::SimTime ttl) {
  if (capacity_ == 0) return;  // a zero-capacity cache stores nothing
  if (entries_.size() >= capacity_ && !entries_.contains(key)) {
    evict_one();
  }
  const net::SimTime expiry = now + ttl;
  entries_[key] = expiry;
  heap_.push_back(HeapEntry{expiry, key});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return expires_later(a.expiry, b.expiry);
                 });
  maybe_compact();
}

void TtlCache::evict_one() {
  const auto later = [](const HeapEntry& a, const HeapEntry& b) {
    return expires_later(a.expiry, b.expiry);
  };
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    const auto it = entries_.find(top.key);
    // Stale records (the entry was refreshed to a later expiry, or
    // already erased by hit()/sweep()) are skipped; a match is the live
    // entry closest to expiry.
    if (it != entries_.end() && it->second == top.expiry) {
      entries_.erase(it);
      return;
    }
  }
  // Every live entry has a heap record, so an exhausted heap means an
  // empty map; nothing to evict.
}

void TtlCache::maybe_compact() {
  if (heap_.size() <= 2 * entries_.size() + 32) return;
  heap_.clear();
  for (const auto& [key, expiry] : entries_) {
    heap_.push_back(HeapEntry{expiry, key});
  }
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return expires_later(a.expiry, b.expiry);
                 });
}

void TtlCache::sweep(net::SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second <= now) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rootstress::resolver
