#include "resolver/cache.h"

#include <algorithm>

namespace rootstress::resolver {

TtlCache::TtlCache(std::size_t capacity) : capacity_(capacity) {}

bool TtlCache::hit(std::uint64_t key, net::SimTime now) const {
  const auto it = entries_.find(key);
  if (it != entries_.end() && now < it->second) {
    ++hits_;
    return true;
  }
  ++misses_;
  return false;
}

void TtlCache::put(std::uint64_t key, net::SimTime now, net::SimTime ttl) {
  if (entries_.size() >= capacity_ && !entries_.contains(key)) {
    // Evict the entry closest to expiry.
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second < victim->second) victim = it;
    }
    entries_.erase(victim);
  }
  entries_[key] = now + ttl;
}

void TtlCache::sweep(net::SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second <= now) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rootstress::resolver
