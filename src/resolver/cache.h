// Resolver-side DNS cache.
//
// The paper attributes the absence of end-user-visible failures to
// caching and retry (§2.3, §6): top-level referrals carry multi-day TTLs,
// so resolvers rarely need the root at all. This is the cache that makes
// that argument quantitative.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/clock.h"

namespace rootstress::resolver {

/// A TTL cache keyed by name hash (the value is implicit: we only track
/// whether the referral is still valid).
class TtlCache {
 public:
  /// `capacity` bounds memory; inserting beyond it evicts the entry
  /// closest to expiry.
  explicit TtlCache(std::size_t capacity = 10000);

  /// True if `key` is cached and fresh at `now`.
  bool hit(std::uint64_t key, net::SimTime now) const;

  /// Inserts/refreshes `key` until now + ttl.
  void put(std::uint64_t key, net::SimTime now, net::SimTime ttl);

  /// Drops expired entries (called opportunistically).
  void sweep(net::SimTime now);

  std::size_t size() const noexcept { return entries_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, net::SimTime> entries_;  ///< expiry
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace rootstress::resolver
