// Resolver-side DNS cache.
//
// The paper attributes the absence of end-user-visible failures to
// caching and retry (§2.3, §6): top-level referrals carry multi-day TTLs,
// so resolvers rarely need the root at all. This is the cache that makes
// that argument quantitative.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/clock.h"

namespace rootstress::resolver {

/// A TTL cache keyed by name hash (the value is implicit: we only track
/// whether the referral is still valid).
class TtlCache {
 public:
  /// `capacity` bounds memory; inserting beyond it evicts the entry
  /// closest to expiry. A zero capacity stores nothing (every lookup
  /// misses) instead of invoking UB on the empty map.
  explicit TtlCache(std::size_t capacity = 10000);

  /// True if `key` is cached and fresh at `now`. An entry found expired
  /// is erased on the spot (counted in expirations()) so stale entries
  /// never pin capacity until the next sweep().
  bool hit(std::uint64_t key, net::SimTime now);

  /// Inserts/refreshes `key` until now + ttl.
  void put(std::uint64_t key, net::SimTime now, net::SimTime ttl);

  /// Drops expired entries (called opportunistically).
  void sweep(net::SimTime now);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  /// Entries erased because a lookup found them expired.
  std::uint64_t expirations() const noexcept { return expirations_; }

 private:
  /// One eviction-order record. The heap is lazy: a record whose expiry
  /// no longer matches the live entry (refreshed or already erased) is
  /// skipped when popped, so put() stays amortized O(log n) instead of
  /// the old O(n) full scan.
  struct HeapEntry {
    net::SimTime expiry{};
    std::uint64_t key = 0;
  };

  /// Erases the live entry closest to expiry (min-heap pop, skipping
  /// stale records).
  void evict_one();
  /// Rebuilds the heap from the live entries when stale records dominate
  /// (amortized O(1) per operation).
  void maybe_compact();

  std::size_t capacity_;
  std::unordered_map<std::uint64_t, net::SimTime> entries_;  ///< expiry
  std::vector<HeapEntry> heap_;  ///< min-heap on expiry, lazily pruned
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace rootstress::resolver
