// In-loop recursive-resolver population: the client side of the paper's
// muted-user-impact argument (§2.3, §6), stepped inside the engine.
//
// A ResolverPopulation models a fleet of recursive resolvers sitting
// between end users and the root: each resolver owns a TTL referral
// cache (multi-day TTLs mean most client queries never reach the root at
// all), a LetterSelector for failover across the thirteen letters, and a
// hyperbolic share of the client demand (a few busy resolvers carry most
// of the load — the paper's resolver-pool skew). Every engine step the
// population receives the letters' *live* answered fractions and queue
// delays, draws this step's client queries, and resolves them through
// cache -> pick -> retry, producing the user-experience series
// (resolution success, added latency, cache hit ratio, retries) that the
// server-side series cannot express.
//
// Determinism contract (same pattern as sim/probe_rng.h): every resolver
// draws from a counter-based RNG stream keyed on (seed, resolver, step),
// resolvers are partitioned into a FIXED shard layout independent of the
// thread count, each shard accumulates into its own buffers, and shards
// merge serially in shard order — so the EndUserReport digest is
// bit-identical at any thread count. The population only *reads* the
// fluid step's published outputs; server-side results are bit-identical
// with the population on or off.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "net/clock.h"
#include "obs/json.h"
#include "resolver/cache.h"
#include "resolver/selection.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace rootstress::resolver {

/// Everything that shapes a resolver population's behaviour. Pure data
/// (Playbook idiom): build by hand, validate_population() checks it,
/// population_fingerprint() keys the campaign cache on its content.
struct PopulationConfig {
  /// Display label (campaign axis labels, logs). Not fingerprinted.
  std::string name = "default";
  Strategy strategy = Strategy::kSrtt;
  /// Modeled recursive resolvers. Each stands for a slice of the real
  /// resolver pool; per-resolver demand is skewed (see demand_skew).
  int resolvers = 256;
  /// Mean client queries per resolver-hour before skew; a resolver's
  /// actual rate is this times its hyperbolic demand weight.
  double root_lookups_per_hour = 60.0;
  /// TTL of a cached referral (the paper's §6: TLD referrals carry
  /// multi-day TTLs; 24h is a conservative floor).
  net::SimTime referral_ttl = net::SimTime::from_hours(24);
  /// Distinct query names per resolver (controls the cache hit rate).
  int name_space = 500;
  /// Hyperbolic demand skew: resolver r's weight is 1/(r+1)^skew,
  /// normalized to mean 1. 0 = uniform demand; 1 = classic Zipf-ish
  /// head-heavy pool.
  double demand_skew = 1.0;
  /// Attempts per uncached query (first try + retries).
  int max_attempts = 3;
  /// An attempt slower than this counts as failed (client-side timer).
  double per_try_timeout_ms = 1500.0;
  bool enable_cache = true;
  /// Per-resolver cache capacity; 0 disables storage outright.
  std::size_t cache_capacity = 1000;

  bool operator==(const PopulationConfig&) const = default;
};

/// Empty when the config is usable, else the first problem (the engine
/// rejects invalid profiles with std::invalid_argument carrying this).
std::string validate_population(const PopulationConfig& config);

/// Canonical content fingerprint for the campaign cache. The name is a
/// display label and is excluded (same convention as playbook / fault).
obs::JsonValue population_fingerprint(const PopulationConfig& config);

/// The population's user-experience series: per-bin counters plus
/// aggregates. Pure data, bit-identical at any thread count.
struct EndUserReport {
  bool enabled = false;       ///< false = the run had no population
  std::int64_t start_ms = 0;  ///< first bin's left edge
  std::int64_t bin_ms = 0;    ///< analysis bin width

  /// Per-bin counters (all sized to the run's bin count when enabled).
  std::vector<std::uint64_t> client_queries;  ///< user lookups issued
  std::vector<std::uint64_t> cache_hits;      ///< answered from cache
  std::vector<std::uint64_t> root_queries;    ///< attempts sent rootward
  std::vector<std::uint64_t> retries;         ///< attempts beyond the first
  std::vector<std::uint64_t> failures;        ///< queries with no answer
  std::vector<double> latency_sum_ms;         ///< total client-side latency

  /// Whole-run aggregates. NaN when no client queries were issued.
  double success_rate() const noexcept;
  double cache_hit_rate() const noexcept;
  double retries_per_query() const noexcept;
  /// Mean client-observed latency per query (cache hits included).
  double added_latency_ms() const noexcept;
  /// Resolution success over [begin_ms, end_ms) only (duel windows).
  double success_rate_between(std::int64_t begin_ms,
                              std::int64_t end_ms) const noexcept;

  /// Order-sensitive FNV-1a over geometry and every counter/sum bit
  /// pattern: one integer the determinism gates compare across thread
  /// counts.
  std::uint64_t digest() const noexcept;
};

/// The live population. Constructed by the engine when the scenario sets
/// a resolver profile; step() runs once per engine step, after the fluid
/// pass published the letters' served/failed loads.
class ResolverPopulation {
 public:
  /// `seed` is the scenario seed (streams are derived per resolver/step);
  /// [start, end) at `step_width` defines the step grid, `bin_width` the
  /// report's bin geometry.
  ResolverPopulation(const PopulationConfig& config, std::uint64_t seed,
                     net::SimTime start, net::SimTime end,
                     net::SimTime step_width, net::SimTime bin_width);

  /// Per-letter inputs for one step, read from the fluid pass's published
  /// state: success[i] = the letter's legit answered fraction this step,
  /// rtt_ms[i] = base RTT plus the letter's offered-weighted queue delay.
  /// `demand_scale` couples flash crowds (fault legit surges) into client
  /// demand. Internally parallel over the fixed shard layout; call from a
  /// serial engine phase.
  void step(net::SimTime t, const std::array<double, kLetterCount>& success,
            const std::array<double, kLetterCount>& rtt_ms,
            double demand_scale, util::ThreadPool& pool);

  /// Last step's totals (timeline recording reads these right after
  /// step()).
  struct StepTotals {
    std::uint64_t client_queries = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t root_queries = 0;
    std::uint64_t retries = 0;
    std::uint64_t failures = 0;
    double latency_sum_ms = 0.0;
  };
  const StepTotals& last_step() const noexcept { return last_step_; }

  const EndUserReport& report() const noexcept { return report_; }
  const PopulationConfig& config() const noexcept { return config_; }
  int shard_count() const noexcept { return shard_count_; }

 private:
  struct ResolverState {
    LetterSelector selector;
    TtlCache cache;
    double demand_weight = 1.0;
  };

  /// Shard-local accumulator for one step (merged serially in shard
  /// order; shards own disjoint resolver ranges).
  struct ShardTotals {
    std::uint64_t client_queries = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t root_queries = 0;
    std::uint64_t retries = 0;
    std::uint64_t failures = 0;
    double latency_sum_ms = 0.0;
  };

  PopulationConfig config_;
  std::uint64_t seed_ = 0;
  net::SimTime start_{};
  net::SimTime step_width_{};
  double queries_per_step_ = 0.0;  ///< mean per resolver before weighting
  /// Fixed shard layout: independent of the thread count so the merge
  /// order (and therefore every sum) is bit-identical at any concurrency.
  int shard_count_ = 1;
  std::vector<ResolverState> resolvers_;
  std::vector<ShardTotals> shard_totals_;
  std::uint64_t step_index_ = 0;
  StepTotals last_step_{};
  EndUserReport report_;
};

}  // namespace rootstress::resolver
