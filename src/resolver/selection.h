// Authority-server (root letter) selection strategies.
//
// Recursive resolvers choose which letter to query and fail over between
// them; the paper cites Yu et al.'s finding that implementations prefer
// low-RTT servers with occasional exploration (§3.2.2 [63]) and leaves
// the interaction with failures as future work. Three strategies span
// the design space:
//   kUniform  - pick uniformly at random each query (worst-case spread)
//   kFixed    - always the same letter until it fails (sticky)
//   kSrtt     - BIND-style smoothed-RTT preference with decay/exploration
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/rng.h"

namespace rootstress::resolver {

inline constexpr int kLetterCount = 13;

enum class Strategy {
  kUniform,
  kFixed,
  kSrtt,
};

std::string to_string(Strategy strategy);

/// Per-resolver selection state.
class LetterSelector {
 public:
  /// `fixed_preference` seeds kFixed's (and kSrtt's initial) choice.
  LetterSelector(Strategy strategy, int fixed_preference);

  /// Picks the letter for the next attempt; `attempt` counts retries
  /// within one query (0 = first try). Retries never repeat the previous
  /// failed letter.
  int pick(int attempt, util::Rng& rng);

  /// Feedback after an attempt: observed RTT for successes; failures
  /// penalize the letter so it is avoided for a while.
  void report(int letter, bool success, double rtt_ms);

  Strategy strategy() const noexcept { return strategy_; }
  /// The smoothed RTT table (kSrtt), exposed for tests.
  double srtt(int letter) const { return srtt_ms_[static_cast<std::size_t>(letter)]; }

 private:
  Strategy strategy_;
  int fixed_preference_;
  int last_pick_ = -1;
  std::array<double, kLetterCount> srtt_ms_{};
};

}  // namespace rootstress::resolver
