#include "resolver/selection.h"

#include <algorithm>

namespace rootstress::resolver {

namespace {
constexpr double kInitialSrttMs = 80.0;
constexpr double kFailurePenaltyMs = 2000.0;
constexpr double kSmoothing = 0.3;       // new sample weight
constexpr double kDecayOthers = 0.98;    // unqueried letters slowly recover
constexpr double kExploreChance = 0.05;  // BIND-like occasional probing
}  // namespace

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kUniform: return "uniform";
    case Strategy::kFixed: return "fixed";
    case Strategy::kSrtt: return "srtt";
  }
  return "?";
}

LetterSelector::LetterSelector(Strategy strategy, int fixed_preference)
    : strategy_(strategy),
      // Floor-mod: C++ % is negative for negative inputs, and pick()'s
      // result is used as an array index by every caller.
      fixed_preference_(((fixed_preference % kLetterCount) + kLetterCount) %
                        kLetterCount) {
  srtt_ms_.fill(kInitialSrttMs);
  // Seed the preference epsilon-faster so kSrtt's first pick honours
  // `fixed_preference` instead of herding every fresh resolver onto the
  // all-equal tie-break at letter 0 (A-root). One real sample replaces
  // the seed immediately (kSmoothing pulls hard toward observations).
  srtt_ms_[static_cast<std::size_t>(fixed_preference_)] =
      kInitialSrttMs * 0.99;
}

int LetterSelector::pick(int attempt, util::Rng& rng) {
  int choice = 0;
  switch (strategy_) {
    case Strategy::kUniform:
      choice = static_cast<int>(rng.below(kLetterCount));
      break;
    case Strategy::kFixed:
      choice = attempt == 0
                   ? fixed_preference_
                   : static_cast<int>(rng.below(kLetterCount));
      break;
    case Strategy::kSrtt: {
      if (rng.chance(kExploreChance)) {
        choice = static_cast<int>(rng.below(kLetterCount));
        break;
      }
      choice = 0;
      for (int letter = 1; letter < kLetterCount; ++letter) {
        if (srtt_ms_[static_cast<std::size_t>(letter)] <
            srtt_ms_[static_cast<std::size_t>(choice)]) {
          choice = letter;
        }
      }
      break;
    }
  }
  if (attempt > 0 && choice == last_pick_) {
    choice = (choice + 1 + static_cast<int>(rng.below(kLetterCount - 1))) %
             kLetterCount;
  }
  last_pick_ = choice;
  return choice;
}

void LetterSelector::report(int letter, bool success, double rtt_ms) {
  if (letter < 0 || letter >= kLetterCount) return;
  auto& srtt = srtt_ms_[static_cast<std::size_t>(letter)];
  const double sample = success ? rtt_ms : kFailurePenaltyMs;
  srtt = (1.0 - kSmoothing) * srtt + kSmoothing * sample;
  // Letters we are not using decay toward being retried eventually.
  for (int other = 0; other < kLetterCount; ++other) {
    if (other != letter) {
      srtt_ms_[static_cast<std::size_t>(other)] *= kDecayOthers;
      srtt_ms_[static_cast<std::size_t>(other)] =
          std::max(5.0, srtt_ms_[static_cast<std::size_t>(other)]);
    }
  }
}

}  // namespace rootstress::resolver
