#include "resolver/population.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace rootstress::resolver {

namespace {

/// Answering from the local cache still costs the client a hop.
constexpr double kCacheAnswerMs = 1.0;

/// Pools below this size step their shards inline instead of through the
/// thread pool (see the dispatch-cost note in step()).
constexpr int kParallelResolverThreshold = 4096;

/// Counter-based stream key for (seed, resolver, step): the same
/// chained-mix construction as sim/probe_rng.h, so a resolver's draws
/// depend only on its identity and the step — never on which thread ran
/// it or what other resolvers drew.
std::uint64_t resolver_stream_key(std::uint64_t seed, int resolver,
                                  std::uint64_t step) noexcept {
  std::uint64_t key = util::mix64(seed ^ 0x9e3779b97f4a7c15ull);
  key = util::mix64(
      key ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(resolver)) *
             0x100000001b3ull));
  key = util::mix64(key ^ (step * 0xc2b2ae3d27d4eb4full));
  return key;
}

void fnv_bytes(std::uint64_t& hash, const void* data,
               std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
}

template <typename T>
void fnv_value(std::uint64_t& hash, const T& value) noexcept {
  fnv_bytes(hash, &value, sizeof(value));
}

}  // namespace

std::string validate_population(const PopulationConfig& config) {
  if (config.resolvers < 1) return "resolver population must be positive";
  if (config.resolvers > 1'000'000) {
    return "resolver population above 1e6 (each resolver models a pool "
           "slice; scale demand instead)";
  }
  if (!(config.root_lookups_per_hour >= 0.0)) {
    return "root lookups per hour must be non-negative";
  }
  if (config.referral_ttl.ms <= 0) return "referral TTL must be positive";
  if (config.name_space < 1) return "name space must be positive";
  if (!(config.demand_skew >= 0.0)) return "demand skew must be non-negative";
  if (config.max_attempts < 1) return "max attempts must be at least 1";
  if (!(config.per_try_timeout_ms > 0.0)) {
    return "per-try timeout must be positive";
  }
  return {};
}

obs::JsonValue population_fingerprint(const PopulationConfig& config) {
  obs::JsonValue doc = obs::JsonValue::object();
  // `name` is a display label, deliberately absent (playbook/fault idiom).
  doc.set("strategy", obs::JsonValue(to_string(config.strategy)));
  doc.set("resolvers", obs::JsonValue(config.resolvers));
  doc.set("root_lookups_per_hour",
          obs::JsonValue(config.root_lookups_per_hour));
  doc.set("referral_ttl_ms", obs::JsonValue(config.referral_ttl.ms));
  doc.set("name_space", obs::JsonValue(config.name_space));
  doc.set("demand_skew", obs::JsonValue(config.demand_skew));
  doc.set("max_attempts", obs::JsonValue(config.max_attempts));
  doc.set("per_try_timeout_ms", obs::JsonValue(config.per_try_timeout_ms));
  doc.set("enable_cache", obs::JsonValue(config.enable_cache));
  doc.set("cache_capacity",
          obs::JsonValue(static_cast<std::uint64_t>(config.cache_capacity)));
  return doc;
}

double EndUserReport::success_rate() const noexcept {
  std::uint64_t queries = 0, failed = 0;
  for (const std::uint64_t q : client_queries) queries += q;
  for (const std::uint64_t f : failures) failed += f;
  if (queries == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(queries - failed) / static_cast<double>(queries);
}

double EndUserReport::cache_hit_rate() const noexcept {
  std::uint64_t queries = 0, hits = 0;
  for (const std::uint64_t q : client_queries) queries += q;
  for (const std::uint64_t h : cache_hits) hits += h;
  if (queries == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(hits) / static_cast<double>(queries);
}

double EndUserReport::retries_per_query() const noexcept {
  std::uint64_t queries = 0, retried = 0;
  for (const std::uint64_t q : client_queries) queries += q;
  for (const std::uint64_t r : retries) retried += r;
  if (queries == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(retried) / static_cast<double>(queries);
}

double EndUserReport::added_latency_ms() const noexcept {
  std::uint64_t queries = 0;
  double latency = 0.0;
  for (const std::uint64_t q : client_queries) queries += q;
  for (const double l : latency_sum_ms) latency += l;
  if (queries == 0) return std::numeric_limits<double>::quiet_NaN();
  return latency / static_cast<double>(queries);
}

double EndUserReport::success_rate_between(std::int64_t begin_ms,
                                           std::int64_t end_ms) const noexcept {
  std::uint64_t queries = 0, failed = 0;
  for (std::size_t bin = 0; bin < client_queries.size(); ++bin) {
    const std::int64_t left = start_ms + static_cast<std::int64_t>(bin) * bin_ms;
    if (left + bin_ms <= begin_ms || left >= end_ms) continue;
    queries += client_queries[bin];
    failed += failures[bin];
  }
  if (queries == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(queries - failed) / static_cast<double>(queries);
}

std::uint64_t EndUserReport::digest() const noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  fnv_value(hash, enabled);
  fnv_value(hash, start_ms);
  fnv_value(hash, bin_ms);
  const std::uint64_t bins = client_queries.size();
  fnv_value(hash, bins);
  for (std::size_t b = 0; b < client_queries.size(); ++b) {
    fnv_value(hash, client_queries[b]);
    fnv_value(hash, cache_hits[b]);
    fnv_value(hash, root_queries[b]);
    fnv_value(hash, retries[b]);
    fnv_value(hash, failures[b]);
    fnv_value(hash, std::bit_cast<std::uint64_t>(latency_sum_ms[b]));
  }
  return hash;
}

ResolverPopulation::ResolverPopulation(const PopulationConfig& config,
                                       std::uint64_t seed, net::SimTime start,
                                       net::SimTime end,
                                       net::SimTime step_width,
                                       net::SimTime bin_width)
    : config_(config), seed_(seed), start_(start), step_width_(step_width) {
  queries_per_step_ =
      config_.root_lookups_per_hour / 3600.0 * step_width.seconds();

  // Fixed shard layout: enough shards for any sane pool to spread across,
  // never a function of the thread count. parallel_for only decides which
  // worker runs which shard; the shard -> resolver mapping and the merge
  // order below are constants of the config.
  shard_count_ = std::min(64, config_.resolvers);
  shard_totals_.resize(static_cast<std::size_t>(shard_count_));

  // Hyperbolic demand weights, normalized to mean 1 so the configured
  // per-resolver rate stays the pool mean for any skew.
  std::vector<double> weights(static_cast<std::size_t>(config_.resolvers));
  double total = 0.0;
  for (int r = 0; r < config_.resolvers; ++r) {
    weights[static_cast<std::size_t>(r)] =
        std::pow(static_cast<double>(r + 1), -config_.demand_skew);
    total += weights[static_cast<std::size_t>(r)];
  }
  const double norm =
      total > 0.0 ? static_cast<double>(config_.resolvers) / total : 1.0;

  resolvers_.reserve(static_cast<std::size_t>(config_.resolvers));
  for (int r = 0; r < config_.resolvers; ++r) {
    // `r` as the fixed preference spreads fresh kSrtt/kFixed resolvers
    // across letters instead of herding the pool (satellite 2's bug).
    resolvers_.push_back(ResolverState{
        LetterSelector(config_.strategy, r),
        TtlCache(config_.enable_cache ? config_.cache_capacity : 0),
        weights[static_cast<std::size_t>(r)] * norm});
  }

  const std::int64_t span = end.ms - start.ms;
  const std::size_t bins = span > 0
                               ? static_cast<std::size_t>(
                                     (span + bin_width.ms - 1) / bin_width.ms)
                               : 0;
  report_.enabled = true;
  report_.start_ms = start.ms;
  report_.bin_ms = bin_width.ms;
  report_.client_queries.assign(bins, 0);
  report_.cache_hits.assign(bins, 0);
  report_.root_queries.assign(bins, 0);
  report_.retries.assign(bins, 0);
  report_.failures.assign(bins, 0);
  report_.latency_sum_ms.assign(bins, 0.0);
}

void ResolverPopulation::step(net::SimTime t,
                              const std::array<double, kLetterCount>& success,
                              const std::array<double, kLetterCount>& rtt_ms,
                              double demand_scale, util::ThreadPool& pool) {
  const std::uint64_t step_index = step_index_++;
  const std::size_t n = resolvers_.size();
  const auto shards = static_cast<std::size_t>(shard_count_);

  const auto run_shard = [&](std::size_t shard) {
    ShardTotals& totals = shard_totals_[shard];
    totals = ShardTotals{};
    // Contiguous resolver ranges per shard; each resolver's state is
    // touched only by its (fixed) shard, and draws come from the
    // resolver's own stream.
    const std::size_t begin = n * shard / shards;
    const std::size_t end = n * (shard + 1) / shards;
    for (std::size_t r = begin; r < end; ++r) {
      ResolverState& state = resolvers_[r];
      util::Rng rng(resolver_stream_key(seed_, static_cast<int>(r),
                                        step_index));
      const double mean =
          queries_per_step_ * state.demand_weight * demand_scale;
      const std::uint64_t queries = mean > 0.0 ? rng.poisson(mean) : 0;
      for (std::uint64_t q = 0; q < queries; ++q) {
        ++totals.client_queries;
        const std::uint64_t name =
            rng.below(static_cast<std::uint64_t>(config_.name_space));
        if (config_.enable_cache && state.cache.hit(name, t)) {
          ++totals.cache_hits;
          totals.latency_sum_ms += kCacheAnswerMs;
          continue;
        }
        bool answered = false;
        double latency = 0.0;
        for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
          const int letter = state.selector.pick(attempt, rng);
          ++totals.root_queries;
          if (attempt > 0) ++totals.retries;
          const auto li = static_cast<std::size_t>(letter);
          const double rtt = rtt_ms[li];
          if (rng.chance(success[li]) && rtt < config_.per_try_timeout_ms) {
            latency += rtt;
            state.selector.report(letter, true, rtt);
            if (config_.enable_cache) {
              state.cache.put(name, t, config_.referral_ttl);
            }
            answered = true;
            break;
          }
          latency += config_.per_try_timeout_ms;
          state.selector.report(letter, false, rtt);
        }
        if (!answered) ++totals.failures;
        totals.latency_sum_ms += latency;
      }
    }
  };

  // Pool dispatch costs microseconds per call — real money over hundreds
  // of thousands of engine steps when each shard only draws a handful of
  // queries. Small pools run their shards inline; the per-shard code and
  // the serial merge below are identical either way, so the report
  // cannot depend on this choice.
  if (config_.resolvers >= kParallelResolverThreshold) {
    pool.parallel_for(shards, run_shard);
  } else {
    for (std::size_t shard = 0; shard < shards; ++shard) run_shard(shard);
  }

  // Serial merge in shard order: the floating-point accumulation order is
  // a constant of the shard layout, never of the thread count.
  const std::size_t bin =
      report_.bin_ms > 0 && t.ms >= report_.start_ms
          ? static_cast<std::size_t>((t.ms - report_.start_ms) /
                                     report_.bin_ms)
          : report_.client_queries.size();
  last_step_ = StepTotals{};
  for (const ShardTotals& totals : shard_totals_) {
    last_step_.client_queries += totals.client_queries;
    last_step_.cache_hits += totals.cache_hits;
    last_step_.root_queries += totals.root_queries;
    last_step_.retries += totals.retries;
    last_step_.failures += totals.failures;
    last_step_.latency_sum_ms += totals.latency_sum_ms;
  }
  if (bin < report_.client_queries.size()) {
    report_.client_queries[bin] += last_step_.client_queries;
    report_.cache_hits[bin] += last_step_.cache_hits;
    report_.root_queries[bin] += last_step_.root_queries;
    report_.retries[bin] += last_step_.retries;
    report_.failures[bin] += last_step_.failures;
    report_.latency_sum_ms[bin] += last_step_.latency_sum_ms;
  }
}

}  // namespace rootstress::resolver
