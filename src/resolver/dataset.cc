#include "resolver/dataset.h"

#include <cmath>

#include "obs/exporters.h"
#include "obs/json.h"

namespace rootstress::resolver {

namespace {

/// Hotness samples per bin: a 10-minute bin over a 20-minute 50%-duty
/// pulse is hot for some offsets and quiet for others; 16 samples bound
/// the miss window to bin/16 (well under any schedule's pulse widths).
constexpr int kLabelSamples = 16;

bool attack_inside(const sim::ScenarioConfig& config, net::SimTime begin,
                   net::SimTime end) {
  const std::int64_t span = end.ms - begin.ms;
  if (span <= 0) return config.fault_schedule.attack_hot(begin, config.schedule);
  for (int i = 0; i < kLabelSamples; ++i) {
    const net::SimTime t(begin.ms + span * i / kLabelSamples);
    if (config.fault_schedule.attack_hot(t, config.schedule)) return true;
  }
  return false;
}

bool surge_overlaps(const sim::ScenarioConfig& config, net::SimTime begin,
                    net::SimTime end) {
  for (const auto& surge : config.fault_schedule.legit_surges) {
    if (surge.window.begin < end && begin < surge.window.end) return true;
  }
  return false;
}

}  // namespace

std::string dataset_label(const sim::ScenarioConfig& config, net::SimTime begin,
                          net::SimTime end) {
  // Priority attack > flash_crowd > legit: a surge colliding with a pulse
  // is still an attack bin (the detector's hard case is labeled by the
  // dominant ground truth).
  if (attack_inside(config, begin, end)) return "attack";
  if (surge_overlaps(config, begin, end)) return "flash_crowd";
  return "legit";
}

std::string labeled_dataset_lines(const sim::ScenarioConfig& config,
                                  const sim::SimulationResult& result) {
  std::string out;
  if (result.service_offered_qps.empty()) return out;
  const std::size_t bins = result.service_offered_qps.front().bin_count();
  const std::int64_t bin_ms = result.bin_width.ms;
  out.reserve(bins * (result.letter_chars.size() + 1) * 160);

  for (std::size_t bin = 0; bin < bins; ++bin) {
    const std::int64_t left =
        result.service_offered_qps.front().bin_start(bin);
    const net::SimTime begin(left);
    const net::SimTime end(left + bin_ms);
    const std::string label = dataset_label(config, begin, end);

    for (std::size_t s = 0; s < result.letter_chars.size(); ++s) {
      const double served_legit = result.service_served_legit_qps[s].mean(bin);
      const double failed_legit = result.service_failed_legit_qps[s].mean(bin);
      const double legit_total = served_legit + failed_legit;
      obs::JsonValue doc = obs::JsonValue::object();
      doc.set("type", obs::JsonValue("letter_bin"));
      doc.set("bin", obs::JsonValue(static_cast<std::uint64_t>(bin)));
      doc.set("t_ms", obs::JsonValue(left));
      doc.set("letter",
              obs::JsonValue(std::string(1, result.letter_chars[s])));
      doc.set("label", obs::JsonValue(label));
      doc.set("offered_qps",
              obs::JsonValue(result.service_offered_qps[s].mean(bin)));
      doc.set("served_qps",
              obs::JsonValue(result.service_served_qps[s].mean(bin)));
      doc.set("served_legit_qps", obs::JsonValue(served_legit));
      doc.set("failed_legit_qps", obs::JsonValue(failed_legit));
      doc.set("answered_fraction",
              obs::JsonValue(legit_total > 0.0 ? served_legit / legit_total
                                               : 1.0));
      out += doc.dump();
      out += '\n';
    }

    const auto& eu = result.enduser;
    if (eu.enabled && bin < eu.client_queries.size()) {
      const std::uint64_t queries = eu.client_queries[bin];
      obs::JsonValue doc = obs::JsonValue::object();
      doc.set("type", obs::JsonValue("enduser_bin"));
      doc.set("bin", obs::JsonValue(static_cast<std::uint64_t>(bin)));
      doc.set("t_ms", obs::JsonValue(left));
      doc.set("label", obs::JsonValue(label));
      doc.set("client_queries", obs::JsonValue(queries));
      doc.set("cache_hits", obs::JsonValue(eu.cache_hits[bin]));
      doc.set("root_queries", obs::JsonValue(eu.root_queries[bin]));
      doc.set("retries", obs::JsonValue(eu.retries[bin]));
      doc.set("failures", obs::JsonValue(eu.failures[bin]));
      doc.set("mean_latency_ms",
              obs::JsonValue(queries > 0
                                 ? eu.latency_sum_ms[bin] /
                                       static_cast<double>(queries)
                                 : 0.0));
      doc.set("success_rate",
              obs::JsonValue(
                  queries > 0
                      ? static_cast<double>(queries - eu.failures[bin]) /
                            static_cast<double>(queries)
                      : 1.0));
      out += doc.dump();
      out += '\n';
    }
  }
  return out;
}

bool write_labeled_dataset(const std::string& path,
                           const sim::ScenarioConfig& config,
                           const sim::SimulationResult& result) {
  return obs::write_text_file(path, labeled_dataset_lines(config, result));
}

}  // namespace rootstress::resolver
