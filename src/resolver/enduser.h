// End-user impact experiment (§5 future work made concrete).
//
// "A full evaluation of Root DNS performance needs to consider the
// effects of caching and how recursive resolvers select and failover
// across different anycast services" — this module does exactly that:
// it replays client workloads through recursive resolvers (cache +
// selection strategy + retry) against the per-letter service quality a
// SimulationResult recorded, and reports what end users would have seen
// during the events.
#pragma once

#include <vector>

#include "resolver/selection.h"
#include "sim/engine.h"

namespace rootstress::obs {
class Runtime;
}  // namespace rootstress::obs

namespace rootstress::resolver {

/// Per-(letter, bin) service quality extracted from a simulation: the
/// probability a root query is answered and the median RTT when it is.
class RootServiceView {
 public:
  /// Builds the view from a result's fluid series (success probability)
  /// and probe records (RTT; falls back to `default_rtt_ms` for bins
  /// without samples).
  explicit RootServiceView(const sim::SimulationResult& result,
                           double default_rtt_ms = 60.0);

  double success_probability(int letter, net::SimTime t) const;
  double rtt_ms(int letter, net::SimTime t) const;

  net::SimTime start() const noexcept { return start_; }
  net::SimTime end() const noexcept { return end_; }
  std::size_t bins() const noexcept { return bins_; }

 private:
  std::size_t bin_of(net::SimTime t) const;

  net::SimTime start_{};
  net::SimTime bin_width_{};
  net::SimTime end_{};
  std::size_t bins_ = 0;
  // [letter][bin]
  std::vector<std::vector<double>> success_;
  std::vector<std::vector<double>> rtt_;
};

/// Experiment parameters.
struct EndUserConfig {
  Strategy strategy = Strategy::kSrtt;
  int resolvers = 300;
  /// Client queries per resolver per hour that *would* need the root if
  /// uncached (cold-cache rate).
  double root_lookups_per_hour = 60.0;
  /// Referral TTL (real root NS TTLs are 6 days; resolvers often clamp).
  net::SimTime referral_ttl = net::SimTime::from_hours(24);
  /// Distinct query names per resolver (controls cache hit rate).
  int name_space = 500;
  int max_attempts = 3;
  double per_try_timeout_ms = 1500.0;
  bool enable_cache = true;
  std::uint64_t seed = 31;
  /// Optional telemetry runtime: records aggregate enduser.* counters
  /// (client queries, root queries, failures, cache hits). Nullable.
  obs::Runtime* obs = nullptr;
};

/// Per-bin outcome across all simulated resolvers.
struct EndUserSeries {
  Strategy strategy;
  std::vector<double> failure_rate;     ///< queries failing all retries
  std::vector<double> mean_latency_ms;  ///< successful root lookups
  std::vector<double> root_query_rate;  ///< root queries per client query
  double overall_failure_rate = 0.0;
  double cache_hit_rate = 0.0;
};

/// Runs the experiment against a recorded simulation.
EndUserSeries simulate_end_users(const sim::SimulationResult& result,
                                 const EndUserConfig& config);

}  // namespace rootstress::resolver
