// Labeled dataset export for ML detection work.
//
// "Distributed Pulse-Wave Simulator for DDoS Dataset Generation"
// (PAPERS.md) frames the missing artifact for detection research:
// per-bin traffic records with ground-truth labels. The simulator knows
// its own ground truth — the fault schedule and base attack schedule are
// the label source — so the exporter emits JSON-lines records, one per
// (bin, letter) plus one per bin for the end-user population when a run
// carried one, each tagged attack / flash_crowd / legit:
//
//   {"type":"letter_bin","bin":41,"t_ms":24600000,"letter":"K",
//    "label":"attack","offered_qps":5.1e6,"served_qps":8.3e5,
//    "served_legit_qps":2.6e4,"failed_legit_qps":6.1e3,
//    "answered_fraction":0.81}
//   {"type":"enduser_bin","bin":41,"t_ms":24600000,"label":"attack",
//    "client_queries":812,"cache_hits":640,"root_queries":260,
//    "retries":71,"failures":9,"mean_latency_ms":212.4,
//    "success_rate":0.989}
//
// Labels: a bin is "attack" when the attack is hot (fault envelope
// on-portion or base event active) anywhere inside it, else
// "flash_crowd" when a legit surge window overlaps it, else "legit".
// Hotness is sampled at several evenly spaced offsets per bin so short
// pulses inside a wide bin still label it.
#pragma once

#include <string>

#include "sim/engine.h"
#include "sim/scenario.h"

namespace rootstress::resolver {

/// The ground-truth label of [begin, end) under `config`'s schedules.
std::string dataset_label(const sim::ScenarioConfig& config,
                          net::SimTime begin, net::SimTime end);

/// The full dataset as JSON-lines text (deterministic: bin-major, letter
/// order within a bin, the enduser record last).
std::string labeled_dataset_lines(const sim::ScenarioConfig& config,
                                  const sim::SimulationResult& result);

/// Writes the dataset to `path` atomically (obs::write_text_file: temp +
/// rename). Returns false when the write failed.
bool write_labeled_dataset(const std::string& path,
                           const sim::ScenarioConfig& config,
                           const sim::SimulationResult& result);

}  // namespace rootstress::resolver
