// Per-letter reachability (Fig 3) and observed-site counts (Table 2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "atlas/binning.h"
#include "sim/engine.h"

namespace rootstress::analysis {

/// One letter's reachability series: VPs with successful queries per bin.
struct LetterReachability {
  char letter = '?';
  std::vector<int> successful_per_bin;
  int min_vps = 0;          ///< worst bin during the inspected range
  std::size_t min_bin = 0;
  double scale = 1.0;       ///< applied multiplier (A's cadence correction)
};

/// Computes the Fig 3 series for one letter's grid. When `scale_for_cadence`
/// is set and the letter was probed less often than the bin width allows
/// full coverage (A-Root's 30-minute cadence), counts are scaled by the
/// coverage ratio, as the paper does for A.
LetterReachability reachability_series(const atlas::LetterBins& bins,
                                       char letter,
                                       double probe_interval_s = 240.0,
                                       bool scale_for_cadence = false);

/// Distinct sites of `service_index` seen in the records — the paper's
/// Table 2 "sites observed" column.
int observed_site_count(const atlas::RecordSet& records, int service_index);

/// Restricts min search to bins inside [from_bin, to_bin]; returns
/// (min, argmin).
std::pair<int, std::size_t> min_in_range(const std::vector<int>& series,
                                         std::size_t from_bin,
                                         std::size_t to_bin);

}  // namespace rootstress::analysis
