#include "analysis/letter_flips.h"

#include "attack/events2015.h"
#include "util/stats.h"

namespace rootstress::analysis {

LetterFlipEvidence letter_flip_evidence(const sim::SimulationResult& result,
                                        char letter) {
  LetterFlipEvidence out;
  out.letter = letter;
  const int s = result.service_index(letter);
  if (s < 0) return out;
  const auto& served = result.service_served_qps[static_cast<std::size_t>(s)];

  std::vector<double> quiet, event1, event2;
  for (std::size_t b = 0; b < served.bin_count(); ++b) {
    if (served.count(b) == 0) continue;
    const net::SimTime begin(served.bin_start(b));
    if (begin.ms < 0) continue;  // baseline days are not "quiet 48h" bins
    const net::SimTime end(begin.ms + served.bin_ms());
    const double qps = served.mean(b);
    if (attack::kEvent1.begin < end && begin < attack::kEvent1.end) {
      event1.push_back(qps);
    } else if (attack::kEvent2.begin < end && begin < attack::kEvent2.end) {
      event2.push_back(qps);
    } else {
      quiet.push_back(qps);
    }
  }
  out.quiet_qps = util::mean(quiet);
  out.event1_qps = util::mean(event1);
  out.event2_qps = util::mean(event2);
  if (out.quiet_qps > 0.0) {
    out.event1_ratio = out.event1_qps / out.quiet_qps;
    out.event2_ratio = out.event2_qps / out.quiet_qps;
  }

  // Unique-source ratios need baseline days in the accumulator.
  const int li = s;  // letter indices coincide with service indices A..M
  double base_ips = 0.0;
  int base_days = 0;
  for (int d = -7; d <= -1; ++d) {
    if (!result.rssac.has(li, d)) continue;
    base_ips += result.rssac.metrics(li, d).unique_sources(result.resolver_pool);
    ++base_days;
  }
  if (base_days > 0 && base_ips > 0.0) {
    base_ips /= base_days;
    out.uniques_day0_ratio =
        result.rssac.metrics(li, 0).unique_sources(result.resolver_pool) /
        base_ips;
    out.uniques_day1_ratio =
        result.rssac.metrics(li, 1).unique_sources(result.resolver_pool) /
        base_ips;
  }
  return out;
}

}  // namespace rootstress::analysis
