#include "analysis/correlation.h"

namespace rootstress::analysis {

SitesVsReachability sites_vs_min_reachability(
    std::vector<LetterPoint> points) {
  SitesVsReachability out;
  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const auto& point : points) {
    xs.push_back(static_cast<double>(point.sites));
    ys.push_back(static_cast<double>(point.min_vps));
  }
  out.points = std::move(points);
  out.fit = util::linear_fit(xs, ys);
  return out;
}

}  // namespace rootstress::analysis
