// Collateral-damage detection (§3.6, Figs 14-15).
//
// End-to-end evidence only, as in the paper: service dips on
// not-attacked services whose timing lines up with the events — D-Root
// sites losing VPs, and .nl anycast sites whose query rates collapse.
#pragma once

#include <string>
#include <vector>

#include "atlas/binning.h"
#include "sim/engine.h"

namespace rootstress::analysis {

/// A not-attacked site showing an event-correlated dip.
struct CollateralSite {
  int site_id = -1;
  std::string label;
  double median_vps = 0.0;
  std::vector<int> vps_per_bin;
  double worst_fraction = 1.0;  ///< min / median during the event windows
};

/// D-Root-style selection (Fig 14): sites of `letter` with at least
/// `min_vps` median VPs whose reachability dropped by at least
/// `min_dip` (fraction) during any event bin. `event_bins` lists the bin
/// indices covered by the events.
std::vector<CollateralSite> collateral_sites(
    const atlas::LetterBins& bins, const sim::SimulationResult& result,
    char letter, const std::vector<std::size_t>& event_bins, double min_dip,
    double min_vps);

/// One .nl anycast site's normalized query-rate series (Fig 15). Labels
/// are anonymized as the paper's are.
struct NlSeries {
  std::string anonymized_label;
  double median_qps = 0.0;
  std::vector<double> normalized_qps;  ///< served q/s per bin / median
};

/// Query-rate series for the .nl sites co-located with root letters.
std::vector<NlSeries> nl_query_rates(const sim::SimulationResult& result);

/// Bin indices overlapping the 2015 events for a result's binning.
std::vector<std::size_t> event_bins_2015(const sim::SimulationResult& result);

}  // namespace rootstress::analysis
