// Per-site catchment time series (Fig 6, Fig 14 input).
#pragma once

#include <string>
#include <vector>

#include "atlas/binning.h"
#include "sim/engine.h"

namespace rootstress::analysis {

/// VPs mapped to one site over time.
struct SiteSeries {
  int site_id = -1;
  std::string label;
  double median = 0.0;
  std::vector<int> vps_per_bin;
  /// Bins where reachability dropped below the median (the paper's red
  /// "critical moments").
  std::vector<std::size_t> critical_bins;
};

/// Catchment series for every site of `letter`, sorted by median
/// descending. `critical_fraction` marks bins below that fraction of the
/// median as critical (the paper highlights bins below the median).
std::vector<SiteSeries> site_catchment_series(
    const atlas::LetterBins& bins, const sim::SimulationResult& result,
    char letter, double critical_fraction = 1.0);

}  // namespace rootstress::analysis
