#include "analysis/behavior.h"

#include <algorithm>

#include "analysis/rtt.h"
#include "util/stats.h"

namespace rootstress::analysis {

std::string to_string(SiteBehavior behavior) {
  switch (behavior) {
    case SiteBehavior::kUnaffected: return "unaffected";
    case SiteBehavior::kWithdrew: return "withdrew";
    case SiteBehavior::kDegradedAbsorber: return "degraded-absorber";
    case SiteBehavior::kReceiver: return "receiver";
    case SiteBehavior::kLowVisibility: return "low-visibility";
  }
  return "?";
}

std::vector<SiteBehaviorReport> classify_sites(
    const atlas::LetterBins& bins, const atlas::RecordSet& records,
    const sim::SimulationResult& result, char letter,
    const std::vector<std::size_t>& event_bins,
    const BehaviorThresholds& thresholds) {
  const int service = result.service_index(letter);
  std::vector<SiteBehaviorReport> reports;

  for (const int site_id : result.sites_of(letter)) {
    SiteBehaviorReport report;
    report.site_id = site_id;
    report.label = result.sites[static_cast<std::size_t>(site_id)].label;

    std::vector<double> series;
    series.reserve(bins.bin_count());
    for (std::size_t b = 0; b < bins.bin_count(); ++b) {
      series.push_back(static_cast<double>(bins.vps_at_site(b, site_id)));
    }
    report.median_vps = util::median(series);
    if (report.median_vps < thresholds.min_median_vps) {
      report.behavior = SiteBehavior::kLowVisibility;
      reports.push_back(std::move(report));
      continue;
    }

    double lo = 1e18, hi = 0.0;
    int collapsed_bins = 0, counted_bins = 0;
    for (const std::size_t b : event_bins) {
      if (b >= series.size()) continue;
      lo = std::min(lo, series[b]);
      hi = std::max(hi, series[b]);
      ++counted_bins;
      if (series[b] < thresholds.withdrew_below * report.median_vps) {
        ++collapsed_bins;
      }
    }
    report.event_min_fraction = lo / report.median_vps;
    report.event_max_fraction = hi / report.median_vps;
    const bool sustained_collapse =
        counted_bins > 0 &&
        static_cast<double>(collapsed_bins) / counted_bins >=
            thresholds.withdrew_sustain;

    // RTT evidence from records: quiet vs. event medians at this site.
    RttFilter filter;
    filter.service_index = service;
    filter.site_id = site_id;
    std::vector<double> quiet_rtt, event_rtt;
    for (const auto& record : records) {
      if (record.letter_index != service ||
          record.outcome != atlas::ProbeOutcome::kSite ||
          record.site_id != site_id) {
        continue;
      }
      const std::size_t b = bins.bin_of(record.time());
      const bool in_event =
          std::find(event_bins.begin(), event_bins.end(), b) !=
          event_bins.end();
      (in_event ? event_rtt : quiet_rtt)
          .push_back(static_cast<double>(record.rtt_ms));
    }
    report.rtt_quiet_ms = util::median(quiet_rtt);
    report.rtt_event_ms = util::median(event_rtt);

    // Decision ladder, most specific first. A sustained collapse reads
    // as withdrawal even when a handful of slow replies survive (that is
    // how the paper reads E-AMS: "completely unavailable").
    if (sustained_collapse) {
      report.behavior = SiteBehavior::kWithdrew;
    } else if (report.rtt_quiet_ms > 0.0 && report.rtt_event_ms >
               thresholds.rtt_inflation * report.rtt_quiet_ms) {
      report.behavior = SiteBehavior::kDegradedAbsorber;
    } else if (report.event_min_fraction <
               thresholds.absorber_loss_fraction) {
      // Partially down but still answering: absorbing with loss.
      report.behavior = SiteBehavior::kDegradedAbsorber;
    } else if (report.event_max_fraction > thresholds.receiver_above) {
      report.behavior = SiteBehavior::kReceiver;
    } else {
      report.behavior = SiteBehavior::kUnaffected;
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

BehaviorInventory inventory(const std::vector<SiteBehaviorReport>& reports,
                            char letter) {
  BehaviorInventory inv;
  inv.letter = letter;
  for (const auto& report : reports) {
    switch (report.behavior) {
      case SiteBehavior::kUnaffected: ++inv.unaffected; break;
      case SiteBehavior::kWithdrew: ++inv.withdrew; break;
      case SiteBehavior::kDegradedAbsorber: ++inv.absorbers; break;
      case SiteBehavior::kReceiver: ++inv.receivers; break;
      case SiteBehavior::kLowVisibility: ++inv.low_visibility; break;
    }
  }
  return inv;
}

}  // namespace rootstress::analysis
