// RTT analyses: median RTT series for letters (Fig 4), sites (Fig 7), and
// servers (Fig 13).
#pragma once

#include <vector>

#include "atlas/record.h"
#include "net/clock.h"

namespace rootstress::analysis {

/// Selects which records contribute to an RTT series. -1/0 = no filter.
struct RttFilter {
  int service_index = -1;
  int site_id = -1;
  int server = 0;  ///< 1-based; 0 = all servers
};

/// Median RTT (ms) of successful replies per bin; 0 for empty bins.
std::vector<double> median_rtt_series(const atlas::RecordSet& records,
                                      const RttFilter& filter,
                                      net::SimTime start, net::SimTime width,
                                      std::size_t bins);

/// Overall median RTT of successful replies matching `filter` in
/// [from, to); 0 when no samples.
double median_rtt_in(const atlas::RecordSet& records, const RttFilter& filter,
                     net::SimTime from, net::SimTime to);

}  // namespace rootstress::analysis
