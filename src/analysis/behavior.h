// Observed-behaviour classification: which §2.2 policy did each site
// *actually* exhibit?
//
// The paper infers policies from observables — catchment shrinkage
// (withdrawal), sustained-but-degraded service (absorption), catchment
// growth (receiving displaced clients), or nothing. This module encodes
// those inference rules so a whole deployment can be inventoried
// automatically from measurement data alone (no ground-truth policy
// access), the way an outside observer must.
#pragma once

#include <string>
#include <vector>

#include "atlas/binning.h"
#include "atlas/record.h"
#include "sim/engine.h"

namespace rootstress::analysis {

/// The behaviour classes visible from outside.
enum class SiteBehavior {
  kUnaffected,        ///< catchment and RTT steady through the events
  kWithdrew,          ///< catchment collapsed toward zero during events
  kDegradedAbsorber,  ///< stayed reachable with elevated RTT or partial loss
  kReceiver,          ///< grew: absorbed displaced catchments
  kLowVisibility,     ///< too few VPs to say anything (below threshold)
};

std::string to_string(SiteBehavior behavior);

/// One site's classification with the evidence.
struct SiteBehaviorReport {
  int site_id = -1;
  std::string label;
  SiteBehavior behavior = SiteBehavior::kLowVisibility;
  double median_vps = 0.0;
  double event_min_fraction = 1.0;  ///< min catchment/median inside events
  double event_max_fraction = 1.0;  ///< max catchment/median inside events
  double rtt_quiet_ms = 0.0;
  double rtt_event_ms = 0.0;
};

/// Classification thresholds (tuned to the paper's qualitative labels).
struct BehaviorThresholds {
  double min_median_vps = 5.0;       ///< below: kLowVisibility
  double withdrew_below = 0.25;      ///< event catchment under this fraction
  /// Fraction of event bins that must sit below `withdrew_below` for a
  /// sustained collapse to be read as withdrawal (few slow survivors do
  /// not save the classification).
  double withdrew_sustain = 0.5;
  double receiver_above = 1.30;      ///< event catchment over this fraction
  double rtt_inflation = 3.0;        ///< event/quiet RTT ratio for absorber
  double absorber_loss_fraction = 0.6;  ///< or catchment partially down
};

/// Classifies every site of `letter` from its grid, probe records, and
/// the event windows (`event_bins`).
std::vector<SiteBehaviorReport> classify_sites(
    const atlas::LetterBins& bins, const atlas::RecordSet& records,
    const sim::SimulationResult& result, char letter,
    const std::vector<std::size_t>& event_bins,
    const BehaviorThresholds& thresholds = {});

/// Aggregated counts per behaviour for one letter.
struct BehaviorInventory {
  char letter = '?';
  int unaffected = 0;
  int withdrew = 0;
  int absorbers = 0;
  int receivers = 0;
  int low_visibility = 0;
};

BehaviorInventory inventory(const std::vector<SiteBehaviorReport>& reports,
                            char letter);

}  // namespace rootstress::analysis
