// Empirical distributions: CDFs and quantile summaries.
//
// Used to compare RTT populations before/during events (the style of
// analysis the paper's related work applies to root latency) and by the
// ablation benches to summarize sweeps.
#pragma once

#include <span>
#include <vector>

namespace rootstress::analysis {

/// An empirical CDF over a sample.
class EmpiricalCdf {
 public:
  /// Copies and sorts the sample. Empty samples are allowed (every query
  /// returns 0).
  explicit EmpiricalCdf(std::span<const double> sample);

  /// P(X <= x) in [0, 1].
  double at(double x) const noexcept;

  /// The q-quantile (q in [0,1], linear interpolation).
  double quantile(double q) const noexcept;

  std::size_t size() const noexcept { return sorted_.size(); }
  double min() const noexcept { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double max() const noexcept { return sorted_.empty() ? 0.0 : sorted_.back(); }

  /// Evenly spaced (x, P) points for plotting, `points` >= 2.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Kolmogorov-Smirnov distance between two samples — a single number for
/// "did this distribution shift?" (0 = identical, 1 = disjoint).
double ks_distance(const EmpiricalCdf& a, const EmpiricalCdf& b) noexcept;

}  // namespace rootstress::analysis
