// Proximity analysis: does anycast route clients to a nearby site?
//
// Prior work the paper builds on (Fan et al., Ballani et al.) shows BGP
// often routes anycast clients past their geographically closest site.
// This module quantifies it for a simulated run: per successful probe,
// the propagation-RTT inflation of the *chosen* site over the best
// *announced* site of that letter — and how the distribution shifts when
// withdrawals displace catchments during the events.
#pragma once

#include <vector>

#include "analysis/distributions.h"
#include "atlas/record.h"
#include "net/clock.h"
#include "sim/engine.h"

namespace rootstress::analysis {

/// Inflation samples for one letter in one time window.
struct ProximitySample {
  std::vector<double> inflation_ms;  ///< chosen-site RTT minus best-site RTT
  double median_ms = 0.0;
  double p90_ms = 0.0;
  /// Fraction of probes already at their geographically best site
  /// (inflation < 1 ms).
  double optimal_fraction = 0.0;
};

/// Computes inflation for every successful probe of `letter` inside
/// [from, to). The "best" site considers all of the letter's sites (the
/// analysis cannot know announcement state from measurements alone, as
/// in the real study).
ProximitySample proximity_inflation(const sim::SimulationResult& result,
                                    char letter, net::SimTime from,
                                    net::SimTime to);

}  // namespace rootstress::analysis
