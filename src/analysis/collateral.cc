#include "analysis/collateral.h"

#include <algorithm>

#include "attack/events2015.h"
#include "util/stats.h"

namespace rootstress::analysis {

std::vector<CollateralSite> collateral_sites(
    const atlas::LetterBins& bins, const sim::SimulationResult& result,
    char letter, const std::vector<std::size_t>& event_bins, double min_dip,
    double min_vps) {
  std::vector<CollateralSite> out;
  for (const int site_id : result.sites_of(letter)) {
    std::vector<double> series;
    series.reserve(bins.bin_count());
    for (std::size_t b = 0; b < bins.bin_count(); ++b) {
      series.push_back(static_cast<double>(bins.vps_at_site(b, site_id)));
    }
    const double median = util::median(series);
    if (median < min_vps) continue;
    double worst = 1.0;
    for (const std::size_t b : event_bins) {
      if (b < series.size()) {
        worst = std::min(worst, series[b] / median);
      }
    }
    if (worst > 1.0 - min_dip) continue;
    CollateralSite site;
    site.site_id = site_id;
    site.label = result.sites[static_cast<std::size_t>(site_id)].label;
    site.median_vps = median;
    site.worst_fraction = worst;
    site.vps_per_bin.reserve(series.size());
    for (double v : series) site.vps_per_bin.push_back(static_cast<int>(v));
    out.push_back(std::move(site));
  }
  std::sort(out.begin(), out.end(),
            [](const CollateralSite& a, const CollateralSite& b) {
              return a.worst_fraction < b.worst_fraction;
            });
  return out;
}

std::vector<NlSeries> nl_query_rates(const sim::SimulationResult& result) {
  std::vector<NlSeries> out;
  int counter = 0;
  for (const auto& site : result.sites) {
    if (site.letter != 'N') continue;
    if (site.facility < 0) continue;  // only co-located sites (the victims)
    const auto& series =
        result.site_served_qps[static_cast<std::size_t>(site.site_id)];
    std::vector<double> values;
    values.reserve(series.bin_count());
    for (std::size_t b = 0; b < series.bin_count(); ++b) {
      values.push_back(series.mean(b));
    }
    NlSeries nl;
    nl.anonymized_label = "anycast site " + std::to_string(++counter);
    nl.median_qps = util::median(values);
    nl.normalized_qps.reserve(values.size());
    for (double v : values) {
      nl.normalized_qps.push_back(nl.median_qps > 0.0 ? v / nl.median_qps
                                                      : 0.0);
    }
    out.push_back(std::move(nl));
  }
  return out;
}

std::vector<std::size_t> event_bins_2015(const sim::SimulationResult& result) {
  std::vector<std::size_t> bins;
  const std::size_t total = static_cast<std::size_t>(
      (result.end - result.start).ms / result.bin_width.ms);
  for (std::size_t b = 0; b < total; ++b) {
    const net::SimTime begin(result.start.ms +
                             static_cast<std::int64_t>(b) *
                                 result.bin_width.ms);
    const net::SimTime end = begin + result.bin_width;
    const bool in_event1 =
        attack::kEvent1.begin < end && begin < attack::kEvent1.end;
    const bool in_event2 =
        attack::kEvent2.begin < end && begin < attack::kEvent2.end;
    if (in_event1 || in_event2) bins.push_back(b);
  }
  return bins;
}

}  // namespace rootstress::analysis
