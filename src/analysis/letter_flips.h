// Letter-flip evidence (§3.2.2): resolvers retrying non-attacked letters.
//
// The paper observes that L-Root — not attacked — saw a 1.66x query-rate
// increase during the second event and a 6-13x jump in unique sources,
// evidence of recursive resolvers failing over between letters.
#pragma once

#include "sim/engine.h"

namespace rootstress::analysis {

/// Evidence row for one letter.
struct LetterFlipEvidence {
  char letter = '?';
  double quiet_qps = 0.0;        ///< served q/s outside event windows
  double event1_qps = 0.0;       ///< served q/s inside event 1
  double event2_qps = 0.0;       ///< served q/s inside event 2
  double event1_ratio = 0.0;     ///< event1 / quiet
  double event2_ratio = 0.0;     ///< event2 / quiet (the paper's 1.66x)
  double uniques_day0_ratio = 0.0;  ///< day-0 unique IPs / baseline mean
  double uniques_day1_ratio = 0.0;
};

/// Computes the evidence for one letter from the fluid series and RSSAC
/// accumulator. Requires the scenario to have covered baseline days when
/// unique-ratio fields are wanted (0 otherwise).
LetterFlipEvidence letter_flip_evidence(const sim::SimulationResult& result,
                                        char letter);

}  // namespace rootstress::analysis
