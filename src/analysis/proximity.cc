#include "analysis/proximity.h"

#include <algorithm>

#include "net/geo.h"
#include "util/stats.h"

namespace rootstress::analysis {

ProximitySample proximity_inflation(const sim::SimulationResult& result,
                                    char letter, net::SimTime from,
                                    net::SimTime to) {
  ProximitySample sample;
  const int service = result.service_index(letter);
  if (service < 0) return sample;
  const auto site_ids = result.sites_of(letter);
  if (site_ids.empty()) return sample;

  // Pre-compute, per VP, the best propagation RTT to any site of the
  // letter (cached: many probes per VP).
  std::vector<double> best_rtt(result.vps.size(), -1.0);
  auto best_for = [&](std::uint32_t vp) {
    double& cached = best_rtt[vp];
    if (cached < 0.0) {
      cached = 1e18;
      for (const int id : site_ids) {
        cached = std::min(
            cached, net::base_rtt_ms(
                        result.vps[vp].location,
                        result.sites[static_cast<std::size_t>(id)].location));
      }
    }
    return cached;
  };

  int optimal = 0;
  for (const auto& record : result.records) {
    if (record.letter_index != service ||
        record.outcome != atlas::ProbeOutcome::kSite || record.site_id < 0) {
      continue;
    }
    const net::SimTime t = record.time();
    if (t < from || !(t < to)) continue;
    if (record.vp >= result.vps.size()) continue;
    const double chosen = net::base_rtt_ms(
        result.vps[record.vp].location,
        result.sites[static_cast<std::size_t>(record.site_id)].location);
    const double inflation = std::max(0.0, chosen - best_for(record.vp));
    sample.inflation_ms.push_back(inflation);
    if (inflation < 1.0) ++optimal;
  }
  if (!sample.inflation_ms.empty()) {
    sample.median_ms = util::median(sample.inflation_ms);
    sample.p90_ms = util::percentile(sample.inflation_ms, 90.0);
    sample.optimal_fraction =
        static_cast<double>(optimal) /
        static_cast<double>(sample.inflation_ms.size());
  }
  return sample;
}

}  // namespace rootstress::analysis
