#include "analysis/event_size.h"

#include <algorithm>

#include "rssac/report.h"

namespace rootstress::analysis {

namespace {

double gbps(double mqs, double payload_bytes, double header_bytes) {
  return mqs * 1e6 * (payload_bytes + header_bytes) * 8.0 / 1e9;
}

/// Payload size inferred from the bin that grew most vs. baseline (bin
/// center), the paper's identification method.
double inferred_payload(const util::FixedBinHistogram& day,
                        const util::FixedBinHistogram& baseline) {
  const std::size_t bin = day.mode_bin_above(baseline);
  return day.bin_lo(bin) + day.bin_width() / 2.0;
}

void accumulate(EventCell& acc, const EventCell& cell) {
  acc.dq_mqs += cell.dq_mqs;
  acc.dq_gbps += cell.dq_gbps;
  acc.dr_mqs += cell.dr_mqs;
  acc.dr_gbps += cell.dr_gbps;
}

EventCell scale(const EventCell& cell, double factor) {
  EventCell out = cell;
  out.dq_mqs *= factor;
  out.dq_gbps *= factor;
  out.dr_mqs *= factor;
  out.dr_gbps *= factor;
  out.ips_m = 0.0;
  out.ips_ratio = 0.0;
  return out;
}

}  // namespace

EventSizeEstimate estimate_event_size(const sim::SimulationResult& result,
                                      const EventSizeParams& params) {
  EventSizeEstimate table;
  const auto& acc = result.rssac;
  const double pool = result.resolver_pool;
  const int baseline_days =
      params.baseline_last_day - params.baseline_first_day + 1;

  int attacked_reporting = 0;
  EventCell reference_day0, reference_day1;

  for (const auto& pub : result.rssac_publishers) {
    const int li = pub.letter_index;
    // Baselines: mean of the 7 prior days.
    double base_q = 0.0, base_r = 0.0, base_ips = 0.0;
    util::FixedBinHistogram base_qsizes(16.0, 64);
    util::FixedBinHistogram base_rsizes(16.0, 64);
    for (int d = params.baseline_first_day; d <= params.baseline_last_day;
         ++d) {
      const auto& m = acc.metrics(li, d);
      base_q += m.queries;
      base_r += m.responses;
      base_ips += m.unique_sources(pool);
      base_qsizes.merge(m.query_sizes);
      base_rsizes.merge(m.response_sizes);
    }
    base_q /= baseline_days;
    base_r /= baseline_days;
    base_ips /= baseline_days;

    EventSizeRow row;
    row.letter = pub.letter;
    row.baseline_mqs = base_q / 86400.0 / 1e6;
    row.baseline_ips_m = base_ips / 1e6;

    const double durations[2] = {params.event0_duration_s,
                                 params.event1_duration_s};
    for (int day = 0; day <= 1; ++day) {
      const auto& m = acc.metrics(li, day);
      EventCell cell;
      const double q_payload = inferred_payload(m.query_sizes, base_qsizes);
      const double r_payload = inferred_payload(m.response_sizes, base_rsizes);
      cell.dq_mqs = std::max(0.0, m.queries - base_q) / durations[day] / 1e6;
      cell.dr_mqs = std::max(0.0, m.responses - base_r) / durations[day] / 1e6;
      cell.dq_gbps = gbps(cell.dq_mqs, q_payload, params.header_bytes);
      cell.dr_gbps = gbps(cell.dr_mqs, r_payload, params.header_bytes);
      cell.ips_m = m.unique_sources(pool) / 1e6;
      cell.ips_ratio = base_ips > 0.0 ? m.unique_sources(pool) / base_ips : 0.0;
      if (day == 0) {
        row.day0 = cell;
        if (pub.letter == params.reference_letter) {
          table.query_payload_day0 = q_payload;
          table.response_payload = r_payload;
        }
      } else {
        row.day1 = cell;
        if (pub.letter == params.reference_letter) {
          table.query_payload_day1 = q_payload;
        }
      }
    }
    // Attacked? We infer it the way the paper does: a letter whose event
    // days show a large query multiple over baseline was attacked.
    row.attacked =
        row.day0.dq_mqs > 1.2 * row.baseline_mqs && row.baseline_mqs >= 0.0 &&
        row.day0.dq_mqs > 0.01;
    if (row.attacked) {
      ++attacked_reporting;
      accumulate(table.lower_day0, row.day0);
      accumulate(table.lower_day1, row.day1);
      if (row.letter == params.reference_letter) {
        reference_day0 = row.day0;
        reference_day1 = row.day1;
      }
    }
    table.rows.push_back(row);
  }

  if (attacked_reporting > 0) {
    const double scale_factor =
        static_cast<double>(params.attacked_letter_count) /
        static_cast<double>(attacked_reporting);
    table.scaled_day0 = scale(table.lower_day0, scale_factor);
    table.scaled_day1 = scale(table.lower_day1, scale_factor);
  }
  table.upper_day0 =
      scale(reference_day0, static_cast<double>(params.attacked_letter_count));
  table.upper_day1 =
      scale(reference_day1, static_cast<double>(params.attacked_letter_count));
  return table;
}

}  // namespace rootstress::analysis
