// Site-flip analyses (§3.4): flip counting (Fig 8), flip destination /
// origin matrices (Fig 10), and per-VP site-choice strips (Fig 11).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "atlas/binning.h"
#include "util/rng.h"

namespace rootstress::analysis {

/// Site flips per bin: a flip is a VP whose bin cell is a site different
/// from the previous site it was observed at (both cells are sites; bins
/// without data or with errors do not end a VP's "current site").
std::vector<int> site_flips_per_bin(const atlas::LetterBins& bins);

/// Total flips over the grid.
int total_site_flips(const atlas::LetterBins& bins);

/// Where VPs that sat at `origin_site` at `from_bin` were observed during
/// (from_bin, to_bin]: site id -> VP count. Key -1 aggregates VPs that
/// never reached any site in the window (Fig 10 left half).
std::map<int, int> flip_destinations(const atlas::LetterBins& bins,
                                     int origin_site, std::size_t from_bin,
                                     std::size_t to_bin);

/// Where VPs newly observed at `dest_site` during (from_bin, to_bin] had
/// been at `from_bin`: site id -> VP count (Fig 10 right half).
std::map<int, int> flip_origins(const atlas::LetterBins& bins, int dest_site,
                                std::size_t from_bin, std::size_t to_bin);

/// One VP's site-choice strip (Fig 11): one char per bin.
///   letters assigned by the caller for sites of interest,
///   '.' = some other site, 'x' = timeout/error, ' ' = no data.
struct VpStrip {
  int vp = -1;
  std::string states;
};

/// Builds strips for up to `sample` VPs whose first observed site is one
/// of `start_sites`. `site_chars` maps sites of interest to display
/// characters. Deterministic sampling via `rng`.
std::vector<VpStrip> vp_strips(const atlas::LetterBins& bins,
                               const std::vector<int>& start_sites,
                               const std::map<int, char>& site_chars,
                               std::size_t sample, util::Rng& rng);

}  // namespace rootstress::analysis
