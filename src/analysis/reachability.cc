#include "analysis/reachability.h"

#include <algorithm>
#include <unordered_set>

namespace rootstress::analysis {

LetterReachability reachability_series(const atlas::LetterBins& bins,
                                       char letter, double probe_interval_s,
                                       bool scale_for_cadence) {
  LetterReachability out;
  out.letter = letter;
  const double bin_s = bins.bin_width().seconds();
  if (scale_for_cadence && probe_interval_s > bin_s) {
    out.scale = probe_interval_s / bin_s;
  }
  out.successful_per_bin.reserve(bins.bin_count());
  int min_vps = INT32_MAX;
  for (std::size_t b = 0; b < bins.bin_count(); ++b) {
    const int raw = bins.successful_vps(b);
    const int scaled = static_cast<int>(raw * out.scale + 0.5);
    out.successful_per_bin.push_back(scaled);
    if (scaled < min_vps) {
      min_vps = scaled;
      out.min_bin = b;
    }
  }
  out.min_vps = min_vps == INT32_MAX ? 0 : min_vps;
  return out;
}

int observed_site_count(const atlas::RecordSet& records, int service_index) {
  std::unordered_set<int> sites;
  for (const auto& record : records) {
    if (record.letter_index == service_index &&
        record.outcome == atlas::ProbeOutcome::kSite && record.site_id >= 0) {
      sites.insert(record.site_id);
    }
  }
  return static_cast<int>(sites.size());
}

std::pair<int, std::size_t> min_in_range(const std::vector<int>& series,
                                         std::size_t from_bin,
                                         std::size_t to_bin) {
  int best = INT32_MAX;
  std::size_t arg = from_bin;
  for (std::size_t b = from_bin; b <= to_bin && b < series.size(); ++b) {
    if (series[b] < best) {
      best = series[b];
      arg = b;
    }
  }
  return {best == INT32_MAX ? 0 : best, arg};
}

}  // namespace rootstress::analysis
