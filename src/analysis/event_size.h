// Event-size estimation (Table 3, §3.1).
//
// Reproduces the paper's method end to end: define the baseline as the
// mean of the seven days before the event; identify attack payload sizes
// from the RSSAC 16-byte size bins that grew; convert daily deltas to
// rates over the event duration; and derive lower, scaled, and upper
// bounds (the upper bound accepts A-Root's full metering and assumes all
// attacked letters received equal traffic).
#pragma once

#include <vector>

#include "sim/engine.h"

namespace rootstress::analysis {

/// One (letter, event-day) estimate.
struct EventCell {
  double dq_mqs = 0.0;    ///< delta queries, Mq/s over the event window
  double dq_gbps = 0.0;
  double ips_m = 0.0;     ///< unique sources that day, millions
  double ips_ratio = 0.0; ///< vs. the baseline mean
  double dr_mqs = 0.0;    ///< delta responses
  double dr_gbps = 0.0;
};

/// One reporting letter's row.
struct EventSizeRow {
  char letter = '?';
  EventCell day0;  ///< Nov 30 (160-minute event)
  EventCell day1;  ///< Dec 1 (60-minute event)
  double baseline_mqs = 0.0;
  double baseline_ips_m = 0.0;
  bool attacked = true;  ///< non-attacked reporters are excluded from bounds
};

/// The whole table.
struct EventSizeEstimate {
  std::vector<EventSizeRow> rows;
  EventCell lower_day0, lower_day1;    ///< sum of attacked reporters
  EventCell scaled_day0, scaled_day1;  ///< lower scaled to all attacked
  EventCell upper_day0, upper_day1;    ///< A-quality metering for all
  double query_payload_day0 = 0.0;     ///< inferred from size-bin growth
  double query_payload_day1 = 0.0;
  double response_payload = 0.0;
};

/// Parameters of the estimation.
struct EventSizeParams {
  int baseline_first_day = -7;
  int baseline_last_day = -1;
  double event0_duration_s = 160.0 * 60.0;
  double event1_duration_s = 60.0 * 60.0;
  int attacked_letter_count = 10;  ///< letters under attack (D, L, M spared)
  /// Per-packet overhead added to DNS payload for bitrates (the paper
  /// adds 40 bytes for IP/UDP/framing).
  double header_bytes = 40.0;
  /// The letter whose metering is trusted for the upper bound.
  char reference_letter = 'A';
};

/// Runs the estimation over a SimulationResult that covered the baseline
/// week plus the two event days (scenario start at -7 days).
EventSizeEstimate estimate_event_size(const sim::SimulationResult& result,
                                      const EventSizeParams& params = {});

}  // namespace rootstress::analysis
