#include "analysis/rtt.h"

#include "util/stats.h"
#include "util/time_series.h"

namespace rootstress::analysis {

namespace {
bool matches(const atlas::ProbeRecord& record, const RttFilter& filter) {
  if (record.outcome != atlas::ProbeOutcome::kSite) return false;
  if (filter.service_index >= 0 && record.letter_index != filter.service_index) {
    return false;
  }
  if (filter.site_id >= 0 && record.site_id != filter.site_id) return false;
  if (filter.server > 0 && record.server != filter.server) return false;
  return true;
}
}  // namespace

std::vector<double> median_rtt_series(const atlas::RecordSet& records,
                                      const RttFilter& filter,
                                      net::SimTime start, net::SimTime width,
                                      std::size_t bins) {
  util::BinnedSeries series(start.ms, width.ms, bins, /*keep_samples=*/true);
  for (const auto& record : records) {
    if (matches(record, filter)) {
      series.add(record.time().ms, static_cast<double>(record.rtt_ms));
    }
  }
  std::vector<double> medians(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) medians[b] = series.median(b);
  return medians;
}

double median_rtt_in(const atlas::RecordSet& records, const RttFilter& filter,
                     net::SimTime from, net::SimTime to) {
  std::vector<double> samples;
  for (const auto& record : records) {
    if (!matches(record, filter)) continue;
    const net::SimTime t = record.time();
    if (from <= t && t < to) {
      samples.push_back(static_cast<double>(record.rtt_ms));
    }
  }
  return util::median(samples);
}

}  // namespace rootstress::analysis
