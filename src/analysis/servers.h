// Per-server breakdowns within one site (§3.5, Figs 12-13).
#pragma once

#include <vector>

#include "atlas/record.h"
#include "net/clock.h"
#include "sim/engine.h"

namespace rootstress::analysis {

/// One server's visibility over time.
struct ServerSeries {
  int server = 0;  ///< 1-based
  std::vector<int> replies_per_bin;
  std::vector<double> median_rtt_per_bin;  ///< 0 for empty bins
};

/// Reachability and RTT per server of `site_id`, over `bins` x `width`
/// bins starting at `start`.
std::vector<ServerSeries> server_breakdown(const atlas::RecordSet& records,
                                           const sim::SimulationResult& result,
                                           int site_id, net::SimTime start,
                                           net::SimTime width,
                                           std::size_t bins);

}  // namespace rootstress::analysis
