#include "analysis/servers.h"

#include "util/time_series.h"

namespace rootstress::analysis {

std::vector<ServerSeries> server_breakdown(const atlas::RecordSet& records,
                                           const sim::SimulationResult& result,
                                           int site_id, net::SimTime start,
                                           net::SimTime width,
                                           std::size_t bins) {
  const int servers =
      result.sites[static_cast<std::size_t>(site_id)].servers;
  std::vector<util::BinnedSeries> rtt;
  rtt.reserve(static_cast<std::size_t>(servers));
  std::vector<std::vector<int>> replies(
      static_cast<std::size_t>(servers), std::vector<int>(bins, 0));
  for (int s = 0; s < servers; ++s) {
    rtt.emplace_back(start.ms, width.ms, bins, /*keep_samples=*/true);
  }
  for (const auto& record : records) {
    if (record.outcome != atlas::ProbeOutcome::kSite ||
        record.site_id != site_id || record.server < 1 ||
        record.server > servers) {
      continue;
    }
    const auto offset = (record.time() - start).ms;
    if (offset < 0) continue;
    const auto bin = static_cast<std::size_t>(offset / width.ms);
    if (bin >= bins) continue;
    ++replies[static_cast<std::size_t>(record.server - 1)][bin];
    rtt[static_cast<std::size_t>(record.server - 1)].add(
        record.time().ms, static_cast<double>(record.rtt_ms));
  }
  std::vector<ServerSeries> out;
  out.reserve(static_cast<std::size_t>(servers));
  for (int s = 0; s < servers; ++s) {
    ServerSeries series;
    series.server = s + 1;
    series.replies_per_bin = std::move(replies[static_cast<std::size_t>(s)]);
    series.median_rtt_per_bin.reserve(bins);
    for (std::size_t b = 0; b < bins; ++b) {
      series.median_rtt_per_bin.push_back(
          rtt[static_cast<std::size_t>(s)].median(b));
    }
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace rootstress::analysis
