// Per-site catchment stability (Fig 5): min and max VPs per bin
// normalized to the site's median over the observation.
#pragma once

#include <string>
#include <vector>

#include "atlas/binning.h"
#include "sim/engine.h"

namespace rootstress::analysis {

/// One site's stability summary.
struct SiteStability {
  int site_id = -1;
  std::string label;
  double median_vps = 0.0;
  int min_vps = 0;
  int max_vps = 0;
  /// min/median and max/median; 0 when the median is 0.
  double min_norm = 0.0;
  double max_norm = 0.0;
  bool below_threshold = false;  ///< fewer than the stability-threshold VPs
};

/// The paper's stability threshold: sites whose median catchment holds
/// fewer VPs are flagged (their normalized swings are unreliable).
/// Scaled populations scale the threshold proportionally.
double stability_threshold(int vp_count, int paper_vp_count = 9363,
                           double paper_threshold = 20.0);

/// Computes stability for every site of `letter`, sorted by median VPs
/// descending (the paper's ordering in Figs 5/6).
std::vector<SiteStability> site_stability(const atlas::LetterBins& bins,
                                          const sim::SimulationResult& result,
                                          char letter, double threshold);

}  // namespace rootstress::analysis
