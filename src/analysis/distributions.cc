#include "analysis/distributions.h"

#include <algorithm>
#include <cmath>

namespace rootstress::analysis {

EmpiricalCdf::EmpiricalCdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const noexcept {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points < 2) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

double ks_distance(const EmpiricalCdf& a, const EmpiricalCdf& b) noexcept {
  if (a.size() == 0 || b.size() == 0) return 0.0;
  // Evaluate |Fa - Fb| at every observed point of both samples.
  double worst = 0.0;
  for (const auto* cdf : {&a, &b}) {
    const std::size_t n = cdf->size();
    for (std::size_t i = 0; i < n; ++i) {
      const double q = static_cast<double>(i) / static_cast<double>(n);
      const double x = cdf->quantile(q);
      worst = std::max(worst, std::fabs(a.at(x) - b.at(x)));
    }
  }
  return worst;
}

}  // namespace rootstress::analysis
