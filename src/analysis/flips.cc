#include "analysis/flips.h"

#include <algorithm>

namespace rootstress::analysis {

std::vector<int> site_flips_per_bin(const atlas::LetterBins& bins) {
  std::vector<int> flips(bins.bin_count(), 0);
  for (int vp = 0; vp < bins.vp_count(); ++vp) {
    int current = -1;
    for (std::size_t b = 0; b < bins.bin_count(); ++b) {
      const std::int16_t cell = bins.cell(vp, b);
      if (cell < 0) continue;  // errors/timeouts don't end the tenure
      if (current >= 0 && cell != current) ++flips[b];
      current = cell;
    }
  }
  return flips;
}

int total_site_flips(const atlas::LetterBins& bins) {
  const auto per_bin = site_flips_per_bin(bins);
  int total = 0;
  for (int f : per_bin) total += f;
  return total;
}

namespace {
/// The site a VP was at in `bin`, or -1 when the bin holds no site.
int site_at(const atlas::LetterBins& bins, int vp, std::size_t bin) {
  const std::int16_t cell = bins.cell(vp, bin);
  return cell >= 0 ? cell : -1;
}
}  // namespace

std::map<int, int> flip_destinations(const atlas::LetterBins& bins,
                                     int origin_site, std::size_t from_bin,
                                     std::size_t to_bin) {
  std::map<int, int> destinations;
  for (int vp = 0; vp < bins.vp_count(); ++vp) {
    if (site_at(bins, vp, from_bin) != origin_site) continue;
    // First different site the VP lands on inside the window.
    int landed = -1;
    for (std::size_t b = from_bin + 1; b <= to_bin && b < bins.bin_count();
         ++b) {
      const int site = site_at(bins, vp, b);
      if (site >= 0 && site != origin_site) {
        landed = site;
        break;
      }
    }
    ++destinations[landed];
  }
  return destinations;
}

std::map<int, int> flip_origins(const atlas::LetterBins& bins, int dest_site,
                                std::size_t from_bin, std::size_t to_bin) {
  std::map<int, int> origins;
  for (int vp = 0; vp < bins.vp_count(); ++vp) {
    if (site_at(bins, vp, from_bin) == dest_site) continue;  // not new
    bool arrived = false;
    for (std::size_t b = from_bin + 1; b <= to_bin && b < bins.bin_count();
         ++b) {
      if (site_at(bins, vp, b) == dest_site) {
        arrived = true;
        break;
      }
    }
    if (arrived) ++origins[site_at(bins, vp, from_bin)];
  }
  return origins;
}

std::vector<VpStrip> vp_strips(const atlas::LetterBins& bins,
                               const std::vector<int>& start_sites,
                               const std::map<int, char>& site_chars,
                               std::size_t sample, util::Rng& rng) {
  // Candidates: VPs whose first observed site is a start site.
  std::vector<int> candidates;
  for (int vp = 0; vp < bins.vp_count(); ++vp) {
    for (std::size_t b = 0; b < bins.bin_count(); ++b) {
      const std::int16_t cell = bins.cell(vp, b);
      if (cell < 0) continue;
      if (std::find(start_sites.begin(), start_sites.end(), cell) !=
          start_sites.end()) {
        candidates.push_back(vp);
      }
      break;  // only the first observed site decides
    }
  }
  rng.shuffle(candidates);
  if (candidates.size() > sample) candidates.resize(sample);
  std::sort(candidates.begin(), candidates.end());

  std::vector<VpStrip> strips;
  strips.reserve(candidates.size());
  for (int vp : candidates) {
    VpStrip strip;
    strip.vp = vp;
    strip.states.reserve(bins.bin_count());
    for (std::size_t b = 0; b < bins.bin_count(); ++b) {
      const std::int16_t cell = bins.cell(vp, b);
      if (cell == atlas::LetterBins::kNoData) {
        strip.states += ' ';
      } else if (cell < 0) {
        strip.states += 'x';
      } else if (const auto it = site_chars.find(cell);
                 it != site_chars.end()) {
        strip.states += it->second;
      } else {
        strip.states += '.';
      }
    }
    strips.push_back(std::move(strip));
  }
  return strips;
}

}  // namespace rootstress::analysis
