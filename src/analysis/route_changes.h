// BGP route-change counting at the collector (Fig 9).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.h"

namespace rootstress::analysis {

/// Per-bin route-change observations at the collector for one service.
std::vector<std::uint64_t> collector_changes_per_bin(
    const sim::SimulationResult& result, char letter);

/// Per-bin counts straight from the full route-change log (every AS whose
/// best route moved) — the "ground truth" the collector samples.
std::vector<std::uint64_t> route_changes_per_bin(
    const sim::SimulationResult& result, char letter);

}  // namespace rootstress::analysis
