// BGP route-change counting at the collector (Fig 9).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.h"

namespace rootstress::analysis {

/// Per-bin route-change observations at the collector for one service.
std::vector<std::uint64_t> collector_changes_per_bin(
    const sim::SimulationResult& result, char letter);

/// Per-bin counts straight from the full route-change log (every AS whose
/// best route moved) — the "ground truth" the collector samples.
std::vector<std::uint64_t> route_changes_per_bin(
    const sim::SimulationResult& result, char letter);

/// Total route-change log entries for one service across the run (prefix
/// id == service index in this deployment).
std::uint64_t route_change_count(const sim::SimulationResult& result,
                                 int service_index);

}  // namespace rootstress::analysis
