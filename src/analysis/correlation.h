// Sites-vs-worst-reachability correlation (§3.2.1, the paper's R² = 0.87).
#pragma once

#include <vector>

#include "util/stats.h"

namespace rootstress::analysis {

/// One letter's data point: deployment size vs. worst responsiveness.
struct LetterPoint {
  char letter = '?';
  int sites = 0;    ///< Table 2 site count
  int min_vps = 0;  ///< smallest successful-VP count during the events
};

/// The fitted relationship.
struct SitesVsReachability {
  std::vector<LetterPoint> points;
  util::LinearFit fit;  ///< min_vps ~ slope * sites + intercept
};

/// Fits min reachability against site count over `points`.
SitesVsReachability sites_vs_min_reachability(std::vector<LetterPoint> points);

}  // namespace rootstress::analysis
