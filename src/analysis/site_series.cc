#include "analysis/site_series.h"

#include <algorithm>

#include "util/stats.h"

namespace rootstress::analysis {

std::vector<SiteSeries> site_catchment_series(
    const atlas::LetterBins& bins, const sim::SimulationResult& result,
    char letter, double critical_fraction) {
  std::vector<SiteSeries> out;
  for (const int site_id : result.sites_of(letter)) {
    SiteSeries s;
    s.site_id = site_id;
    s.label = result.sites[static_cast<std::size_t>(site_id)].label;
    s.vps_per_bin.reserve(bins.bin_count());
    std::vector<double> as_double;
    as_double.reserve(bins.bin_count());
    for (std::size_t b = 0; b < bins.bin_count(); ++b) {
      const int n = bins.vps_at_site(b, site_id);
      s.vps_per_bin.push_back(n);
      as_double.push_back(static_cast<double>(n));
    }
    s.median = util::median(as_double);
    const double critical = s.median * critical_fraction;
    for (std::size_t b = 0; b < bins.bin_count(); ++b) {
      if (static_cast<double>(s.vps_per_bin[b]) < critical) {
        s.critical_bins.push_back(b);
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const SiteSeries& a, const SiteSeries& b) {
    if (a.median != b.median) return a.median > b.median;
    return a.label < b.label;
  });
  return out;
}

}  // namespace rootstress::analysis
