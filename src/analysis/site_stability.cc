#include "analysis/site_stability.h"

#include <algorithm>

#include "util/stats.h"

namespace rootstress::analysis {

double stability_threshold(int vp_count, int paper_vp_count,
                           double paper_threshold) {
  return paper_threshold * static_cast<double>(vp_count) /
         static_cast<double>(paper_vp_count);
}

std::vector<SiteStability> site_stability(const atlas::LetterBins& bins,
                                          const sim::SimulationResult& result,
                                          char letter, double threshold) {
  std::vector<SiteStability> out;
  for (const int site_id : result.sites_of(letter)) {
    std::vector<double> per_bin;
    per_bin.reserve(bins.bin_count());
    for (std::size_t b = 0; b < bins.bin_count(); ++b) {
      per_bin.push_back(static_cast<double>(bins.vps_at_site(b, site_id)));
    }
    SiteStability s;
    s.site_id = site_id;
    s.label = result.sites[static_cast<std::size_t>(site_id)].label;
    s.median_vps = util::median(per_bin);
    s.min_vps = static_cast<int>(util::min_of(per_bin));
    s.max_vps = static_cast<int>(util::max_of(per_bin));
    if (s.median_vps > 0.0) {
      s.min_norm = s.min_vps / s.median_vps;
      s.max_norm = s.max_vps / s.median_vps;
    }
    s.below_threshold = s.median_vps < threshold;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const SiteStability& a, const SiteStability& b) {
              if (a.median_vps != b.median_vps) {
                return a.median_vps > b.median_vps;
              }
              return a.label < b.label;
            });
  return out;
}

}  // namespace rootstress::analysis
