#include "analysis/route_changes.h"

namespace rootstress::analysis {

std::vector<std::uint64_t> collector_changes_per_bin(
    const sim::SimulationResult& result, char letter) {
  const int s = result.service_index(letter);
  std::vector<std::uint64_t> out;
  if (s < 0 || static_cast<std::size_t>(s) >= result.collector_series.size()) {
    return out;
  }
  const auto& series = result.collector_series[static_cast<std::size_t>(s)];
  out.reserve(series.bin_count());
  for (std::size_t b = 0; b < series.bin_count(); ++b) {
    out.push_back(series.count(b));
  }
  return out;
}

std::vector<std::uint64_t> route_changes_per_bin(
    const sim::SimulationResult& result, char letter) {
  const int s = result.service_index(letter);
  const std::size_t bins = static_cast<std::size_t>(
      (result.end - result.start).ms / result.bin_width.ms);
  std::vector<std::uint64_t> out(bins, 0);
  if (s < 0) return out;
  // Prefixes are registered in service order, so prefix id == service
  // index for this deployment.
  for (const auto& change : result.route_changes) {
    if (change.prefix != s) continue;
    const auto offset = (change.time - result.start).ms;
    if (offset < 0) continue;
    const auto bin = static_cast<std::size_t>(offset / result.bin_width.ms);
    if (bin < bins) ++out[bin];
  }
  return out;
}

std::uint64_t route_change_count(const sim::SimulationResult& result,
                                 int service_index) {
  std::uint64_t count = 0;
  for (const auto& change : result.route_changes) {
    if (change.prefix == service_index) ++count;
  }
  return count;
}

}  // namespace rootstress::analysis
