// RIPE-Atlas-like vantage points (§2.4.1).
#pragma once

#include <cstdint>
#include <string>

#include "net/geo.h"
#include "net/ipv4.h"

namespace rootstress::atlas {

/// The Atlas firmware version data cleaning accepts (released early
/// 2013); probes on older firmware are discarded.
inline constexpr int kMinFirmware = 4570;

/// The Atlas DNS query timeout.
inline constexpr double kTimeoutMs = 5000.0;

/// One vantage point: a measurement device in some edge network.
struct VantagePoint {
  int id = -1;
  int as_index = -1;          ///< dense topology index of its home AS
  net::Ipv4Addr address{};    ///< probe source address
  net::GeoPoint location{};
  std::string region;
  int firmware = 4740;
  /// Some probes sit behind middleboxes that intercept root queries and
  /// answer locally; cleaning detects them by bad CHAOS patterns plus
  /// implausibly low RTT (§2.4.1 found 74 such VPs).
  bool hijacked = false;
  /// Phase offset within the probing interval, milliseconds.
  std::int64_t phase_ms = 0;
};

}  // namespace rootstress::atlas
