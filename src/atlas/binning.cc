#include "atlas/binning.h"

namespace rootstress::atlas {

LetterBins::LetterBins(int vp_count, net::SimTime start,
                       net::SimTime bin_width, std::size_t bins)
    : vp_count_(vp_count), start_(start), bin_width_(bin_width), bins_(bins) {
  cells_.assign(static_cast<std::size_t>(vp_count) * bins, kNoData);
}

std::size_t LetterBins::bin_of(net::SimTime t) const noexcept {
  if (t < start_) return static_cast<std::size_t>(-1);
  const auto bin = static_cast<std::size_t>((t - start_).ms / bin_width_.ms);
  return bin < bins_ ? bin : static_cast<std::size_t>(-1);
}

void LetterBins::add(const ProbeRecord& record) {
  if (record.vp >= static_cast<std::uint32_t>(vp_count_)) return;
  const std::size_t bin = bin_of(record.time());
  if (bin == static_cast<std::size_t>(-1)) return;
  std::int16_t& cell = cells_[index(static_cast<int>(record.vp), bin)];
  switch (record.outcome) {
    case ProbeOutcome::kSite:
      cell = record.site_id;  // sites win; latest site wins among sites
      break;
    case ProbeOutcome::kError:
      if (cell < 0) cell = kError;
      break;
    case ProbeOutcome::kTimeout:
      if (cell == kNoData) cell = kTimeout;
      break;
  }
}

int LetterBins::successful_vps(std::size_t bin) const noexcept {
  int n = 0;
  for (int vp = 0; vp < vp_count_; ++vp) {
    if (cells_[index(vp, bin)] >= 0) ++n;
  }
  return n;
}

int LetterBins::vps_at_site(std::size_t bin, int site_id) const noexcept {
  int n = 0;
  for (int vp = 0; vp < vp_count_; ++vp) {
    if (cells_[index(vp, bin)] == site_id) ++n;
  }
  return n;
}

std::vector<LetterBins> bin_records(const RecordSet& records, int letter_count,
                                    int vp_count, net::SimTime start,
                                    net::SimTime bin_width, std::size_t bins) {
  std::vector<LetterBins> grids;
  grids.reserve(static_cast<std::size_t>(letter_count));
  for (int i = 0; i < letter_count; ++i) {
    grids.emplace_back(vp_count, start, bin_width, bins);
  }
  for (const auto& record : records) {
    if (record.letter_index < letter_count) {
      grids[record.letter_index].add(record);
    }
  }
  return grids;
}

}  // namespace rootstress::atlas
