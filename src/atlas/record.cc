#include "atlas/record.h"
// ProbeRecord is a plain packed aggregate; logic lives in binning.cc.
