#include "atlas/population.h"

namespace rootstress::atlas {

std::vector<VantagePoint> make_population(const bgp::AsTopology& topology,
                                          const PopulationConfig& config) {
  util::Rng rng(config.seed);
  std::vector<int> eu_stubs, other_stubs;
  for (int i = 0; i < topology.as_count(); ++i) {
    if (topology.info(i).tier != bgp::AsTier::kStub) continue;
    (topology.info(i).region == "EU" ? eu_stubs : other_stubs).push_back(i);
  }

  std::vector<VantagePoint> vps;
  vps.reserve(static_cast<std::size_t>(config.vp_count));
  for (int id = 0; id < config.vp_count; ++id) {
    const bool eu = rng.chance(config.europe_share);
    const auto& pool = (eu && !eu_stubs.empty()) || other_stubs.empty()
                           ? eu_stubs
                           : other_stubs;
    if (pool.empty()) break;
    const int as = pool[rng.below(pool.size())];
    const auto& info = topology.info(as);
    VantagePoint vp;
    vp.id = id;
    vp.as_index = as;
    // Probe addresses: unique per probe, outside the spoofed ranges'
    // heavy hitters (10.x is fine for a simulation).
    vp.address = net::Ipv4Addr(0x0a000000u + static_cast<std::uint32_t>(id));
    vp.location = net::GeoPoint{info.location.lat + rng.uniform(-2.0, 2.0),
                                info.location.lon + rng.uniform(-2.0, 2.0)};
    vp.region = info.region;
    vp.firmware = rng.chance(config.old_firmware_share)
                      ? 4500 + static_cast<int>(rng.below(60))
                      : kMinFirmware + static_cast<int>(rng.below(300));
    vp.hijacked = rng.chance(config.hijacked_share);
    vp.phase_ms = static_cast<std::int64_t>(rng.below(240'000));
    vps.push_back(vp);
  }
  return vps;
}

}  // namespace rootstress::atlas
