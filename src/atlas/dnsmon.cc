#include "atlas/dnsmon.h"

#include <algorithm>

#include "util/stats.h"

namespace rootstress::atlas {

DnsmonRow render_dnsmon_row(const LetterBins& bins, char letter,
                            std::size_t bins_per_char, double scale) {
  DnsmonRow row;
  row.letter = letter;
  if (bins_per_char == 0) bins_per_char = 1;

  std::vector<double> per_bin;
  per_bin.reserve(bins.bin_count());
  for (std::size_t b = 0; b < bins.bin_count(); ++b) {
    per_bin.push_back(static_cast<double>(bins.successful_vps(b)) * scale);
  }
  const double typical = std::max(1.0, util::median(per_bin));

  double sum = 0.0;
  row.worst_bin = per_bin.empty() ? 1.0 : 2.0;
  for (std::size_t b = 0; b + bins_per_char <= per_bin.size();
       b += bins_per_char) {
    double group = 0.0;
    for (std::size_t i = 0; i < bins_per_char; ++i) group += per_bin[b + i];
    const double frac = group / (static_cast<double>(bins_per_char) * typical);
    const int level = std::clamp(static_cast<int>(frac * 8.0 + 0.5), 0, 8);
    row.strip += kDnsmonShades[level];
    sum += std::min(1.0, frac);
    row.worst_bin = std::min(row.worst_bin, frac);
  }
  if (!row.strip.empty()) {
    row.uptime = sum / static_cast<double>(row.strip.size());
  }
  if (row.worst_bin > 1.0) row.worst_bin = 1.0;
  return row;
}

std::vector<DnsmonRow> render_dnsmon(const std::vector<LetterBins>& grids,
                                     std::size_t bins_per_char) {
  std::vector<DnsmonRow> rows;
  rows.reserve(grids.size());
  for (std::size_t i = 0; i < grids.size(); ++i) {
    rows.push_back(render_dnsmon_row(grids[i],
                                     static_cast<char>('A' + i),
                                     bins_per_char));
  }
  return rows;
}

}  // namespace rootstress::atlas
