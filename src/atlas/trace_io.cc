#include "atlas/trace_io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

namespace rootstress::atlas {

namespace {

const char* outcome_name(ProbeOutcome outcome) {
  switch (outcome) {
    case ProbeOutcome::kSite: return "site";
    case ProbeOutcome::kError: return "error";
    case ProbeOutcome::kTimeout: return "timeout";
  }
  return "?";
}

std::optional<ProbeOutcome> outcome_from(std::string_view name) {
  if (name == "site") return ProbeOutcome::kSite;
  if (name == "error") return ProbeOutcome::kError;
  if (name == "timeout") return ProbeOutcome::kTimeout;
  return std::nullopt;
}

/// Splits a CSV line (no quoting needed: our fields never contain commas).
std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    fields.push_back(line.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return fields;
}

template <typename T>
bool parse_num(std::string_view text, T& out) {
  const auto* end = text.data() + text.size();
  if constexpr (std::is_floating_point_v<T>) {
    // from_chars for doubles is fine on this toolchain, but keep strtod
    // compatibility via stringstream-free parsing.
    char* parse_end = nullptr;
    const std::string owned(text);
    out = static_cast<T>(std::strtod(owned.c_str(), &parse_end));
    return parse_end == owned.c_str() + owned.size() && !owned.empty();
  } else {
    const auto [next, ec] = std::from_chars(text.data(), end, out);
    return ec == std::errc() && next == end;
  }
}

}  // namespace

void write_records_csv(const RecordSet& records, std::ostream& os) {
  os << "vp,t_s,letter,outcome,site,server,rtt_ms,rcode\n";
  for (const auto& r : records) {
    os << r.vp << ',' << r.t_s << ',' << static_cast<int>(r.letter_index)
       << ',' << outcome_name(r.outcome) << ',' << r.site_id << ','
       << static_cast<int>(r.server) << ',' << r.rtt_ms << ','
       << static_cast<int>(r.rcode) << '\n';
  }
}

std::optional<RecordSet> read_records_csv(std::istream& is,
                                          std::size_t* bad_row) {
  RecordSet records;
  std::string line;
  std::size_t row = 0;
  auto fail = [&](std::size_t at) -> std::optional<RecordSet> {
    if (bad_row != nullptr) *bad_row = at;
    return std::nullopt;
  };
  if (!std::getline(is, line) || !line.starts_with("vp,")) return fail(0);
  while (std::getline(is, line)) {
    ++row;
    if (line.empty()) continue;
    const auto fields = split(line);
    if (fields.size() != 8) return fail(row);
    ProbeRecord r;
    int letter = 0, outcome_site = 0, server = 0, rcode = 0;
    const auto outcome = outcome_from(fields[3]);
    if (!parse_num(fields[0], r.vp) || !parse_num(fields[1], r.t_s) ||
        !parse_num(fields[2], letter) || !outcome ||
        !parse_num(fields[4], outcome_site) || !parse_num(fields[5], server) ||
        !parse_num(fields[6], r.rtt_ms) || !parse_num(fields[7], rcode)) {
      return fail(row);
    }
    r.letter_index = static_cast<std::uint8_t>(letter);
    r.outcome = *outcome;
    r.site_id = static_cast<std::int16_t>(outcome_site);
    r.server = static_cast<std::uint8_t>(server);
    r.rcode = static_cast<std::uint8_t>(rcode);
    records.push_back(r);
  }
  return records;
}

void write_vps_csv(const std::vector<VantagePoint>& vps, std::ostream& os) {
  os << "id,as_index,address,lat,lon,region,firmware,hijacked,phase_ms\n";
  for (const auto& vp : vps) {
    os << vp.id << ',' << vp.as_index << ',' << vp.address.to_string() << ','
       << vp.location.lat << ',' << vp.location.lon << ',' << vp.region << ','
       << vp.firmware << ',' << (vp.hijacked ? 1 : 0) << ',' << vp.phase_ms
       << '\n';
  }
}

std::optional<std::vector<VantagePoint>> read_vps_csv(std::istream& is,
                                                      std::size_t* bad_row) {
  std::vector<VantagePoint> vps;
  std::string line;
  std::size_t row = 0;
  auto fail = [&](std::size_t at) -> std::optional<std::vector<VantagePoint>> {
    if (bad_row != nullptr) *bad_row = at;
    return std::nullopt;
  };
  if (!std::getline(is, line) || !line.starts_with("id,")) return fail(0);
  while (std::getline(is, line)) {
    ++row;
    if (line.empty()) continue;
    const auto fields = split(line);
    if (fields.size() != 9) return fail(row);
    VantagePoint vp;
    int hijacked = 0;
    const auto addr = net::Ipv4Addr::parse(fields[2]);
    if (!parse_num(fields[0], vp.id) || !parse_num(fields[1], vp.as_index) ||
        !addr || !parse_num(fields[3], vp.location.lat) ||
        !parse_num(fields[4], vp.location.lon) ||
        !parse_num(fields[6], vp.firmware) ||
        !parse_num(fields[7], hijacked) ||
        !parse_num(fields[8], vp.phase_ms)) {
      return fail(row);
    }
    vp.address = *addr;
    vp.region = std::string(fields[5]);
    vp.hijacked = hijacked != 0;
    vps.push_back(std::move(vp));
  }
  return vps;
}

}  // namespace rootstress::atlas
