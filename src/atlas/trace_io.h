// Measurement trace I/O.
//
// The paper's processed dataset was published for other researchers
// (§2.4, [41]); in that spirit, probe records and vantage-point metadata
// round-trip through CSV so external tooling (or a later session) can
// re-analyze a run without re-simulating it.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "atlas/probe.h"
#include "atlas/record.h"

namespace rootstress::atlas {

/// Writes records as CSV: vp,t_s,letter,outcome,site,server,rtt_ms,rcode.
/// Outcome is the enum name (site/error/timeout).
void write_records_csv(const RecordSet& records, std::ostream& os);

/// Parses records written by write_records_csv. Returns nullopt on any
/// malformed row (the error row index is stored in `bad_row` if given).
std::optional<RecordSet> read_records_csv(std::istream& is,
                                          std::size_t* bad_row = nullptr);

/// Writes vantage points as CSV:
/// id,as_index,address,lat,lon,region,firmware,hijacked,phase_ms.
void write_vps_csv(const std::vector<VantagePoint>& vps, std::ostream& os);

/// Parses vantage points written by write_vps_csv.
std::optional<std::vector<VantagePoint>> read_vps_csv(
    std::istream& is, std::size_t* bad_row = nullptr);

}  // namespace rootstress::atlas
