// DNSMON-style rendering: per-letter uptime strips (§2.4.1).
//
// RIPE's DNSMON dashboard is the operator's-eye view of the data this
// library simulates; these helpers render the same board from a binned
// grid so examples, reports, and tests share one implementation.
#pragma once

#include <string>
#include <vector>

#include "atlas/binning.h"

namespace rootstress::atlas {

/// One letter's rendered strip plus summary statistics.
struct DnsmonRow {
  char letter = '?';
  std::string strip;        ///< one char per group of bins, dark = bad
  double uptime = 1.0;      ///< mean fraction of typical VPs answered
  double worst_bin = 1.0;   ///< min fraction across bins
};

/// Shade characters from worst (index 0) to best.
inline constexpr const char* kDnsmonShades = "#%*+=-:. ";

/// Renders one letter's strip: bins are averaged in groups of
/// `bins_per_char`, normalized to the letter's median successful-VP
/// count. `scale` corrects for coarse probing cadence (A-Root).
DnsmonRow render_dnsmon_row(const LetterBins& bins, char letter,
                            std::size_t bins_per_char = 3,
                            double scale = 1.0);

/// Renders the whole board (one row per grid, letters 'A' + index).
std::vector<DnsmonRow> render_dnsmon(const std::vector<LetterBins>& grids,
                                     std::size_t bins_per_char = 3);

}  // namespace rootstress::atlas
