#include "atlas/probe.h"
// VantagePoint is a plain aggregate; behaviour lives in population.cc and
// the simulation engine.
