// Atlas data cleaning (§2.4.1).
//
// The paper discards (a) measurements from probes on firmware older than
// 4570 and (b) probes whose root traffic is served by third parties,
// detected by CHAOS replies that match no known letter pattern combined
// with implausibly short RTTs (< 7 ms). Cleaning preserved >9000 of 9363
// probes; we apply the same two rules.
#pragma once

#include <vector>

#include "atlas/probe.h"
#include "atlas/record.h"

namespace rootstress::atlas {

/// Cleaning report.
struct CleaningStats {
  int total_vps = 0;
  int dropped_old_firmware = 0;
  int dropped_hijacked = 0;
  int kept_vps = 0;
  std::size_t total_records = 0;
  std::size_t kept_records = 0;
};

/// The per-VP hijack rule: a VP is flagged when it produced at least one
/// reply that failed CHAOS pattern parsing with RTT below `rtt_floor_ms`.
inline constexpr double kHijackRttFloorMs = 7.0;

/// Returns the set of VP ids to keep, applying both rules. Records with
/// outcome kError and rtt < 7 ms are the hijack evidence (the engine
/// records failed pattern parses as kError).
std::vector<bool> select_vps(const std::vector<VantagePoint>& vps,
                             const RecordSet& records, CleaningStats* stats);

/// Filters `records` down to kept VPs (order preserved).
RecordSet filter_records(const RecordSet& records,
                         const std::vector<bool>& keep_vp,
                         CleaningStats* stats);

}  // namespace rootstress::atlas
