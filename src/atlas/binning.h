// Time binning of probe records (§2.4.1).
//
// The paper maps all observations into 10-minute bins: per VP per letter,
// each bin holds the site seen, or an error code, or "no reply" — with
// sites preferred over errors and errors over missing replies when a bin
// contains several probes. The binned grid is the input to reachability,
// catchment, and flip analyses.
#pragma once

#include <cstdint>
#include <vector>

#include "atlas/record.h"
#include "net/clock.h"

namespace rootstress::atlas {

/// The binned observations of one letter: a [vp][bin] grid of cells.
/// Cell values: >= 0 site id; kError; kTimeout; kNoData.
class LetterBins {
 public:
  static constexpr std::int16_t kNoData = -3;
  static constexpr std::int16_t kTimeout = -2;
  static constexpr std::int16_t kError = -1;

  LetterBins(int vp_count, net::SimTime start, net::SimTime bin_width,
             std::size_t bins);

  /// Folds one record in, applying the site > error > timeout preference.
  /// Among multiple sites in a bin the latest wins.
  void add(const ProbeRecord& record);

  std::int16_t cell(int vp, std::size_t bin) const noexcept {
    return cells_[index(vp, bin)];
  }
  int vp_count() const noexcept { return vp_count_; }
  std::size_t bin_count() const noexcept { return bins_; }
  net::SimTime start() const noexcept { return start_; }
  net::SimTime bin_width() const noexcept { return bin_width_; }

  /// Bin index for a time; SIZE_MAX when out of range.
  std::size_t bin_of(net::SimTime t) const noexcept;

  /// Number of VPs whose cell in `bin` is a site (successful queries,
  /// the Fig 3 metric).
  int successful_vps(std::size_t bin) const noexcept;

  /// Number of VPs mapped to `site_id` in `bin` (the catchment series of
  /// Figs 5/6/14).
  int vps_at_site(std::size_t bin, int site_id) const noexcept;

 private:
  std::size_t index(int vp, std::size_t bin) const noexcept {
    return static_cast<std::size_t>(vp) * bins_ + bin;
  }

  int vp_count_;
  net::SimTime start_;
  net::SimTime bin_width_;
  std::size_t bins_;
  std::vector<std::int16_t> cells_;
};

/// Bins a cleaned record set into one grid per letter.
std::vector<LetterBins> bin_records(const RecordSet& records, int letter_count,
                                    int vp_count, net::SimTime start,
                                    net::SimTime bin_width, std::size_t bins);

}  // namespace rootstress::atlas
