// Raw probe measurement records.
//
// One record per (VP, letter, probe). Packed to 16 bytes: full-scale runs
// produce tens of millions of records.
#pragma once

#include <cstdint>
#include <vector>

#include "net/clock.h"

namespace rootstress::atlas {

/// What a probe observed.
enum class ProbeOutcome : std::uint8_t {
  kSite = 0,     ///< got a reply mapping to a known site
  kError = 1,    ///< got a reply with an error RCODE / unparseable id
  kTimeout = 2,  ///< no reply within the Atlas timeout
};

/// One measurement. `site_id` is the deployment-global site id (-1 when
/// not applicable); `server` the 1-based answering server (0 unknown);
/// `rtt_ms` is meaningful only for kSite/kError.
struct ProbeRecord {
  std::uint32_t vp = 0;
  std::uint32_t t_s = 0;      ///< seconds since scenario epoch
  std::int16_t site_id = -1;
  std::uint16_t rtt_ms = 0;   ///< saturating at 65535
  std::uint8_t letter_index = 0;
  ProbeOutcome outcome = ProbeOutcome::kTimeout;
  std::uint8_t server = 0;
  std::uint8_t rcode = 0;

  net::SimTime time() const noexcept {
    return net::SimTime(static_cast<std::int64_t>(t_s) * 1000);
  }
};
static_assert(sizeof(ProbeRecord) == 16);

/// The record store for one run.
using RecordSet = std::vector<ProbeRecord>;

/// Struct-of-arrays staging block for the hot probe loops: each field
/// lives in its own contiguous lane while a shard emits records, and the
/// block packs back into AoS ProbeRecords — in push order — when the
/// shard's output merges into the run's RecordSet. Keeping the merge in
/// (service, VP, time) shard order means the packed stream is
/// byte-identical to the serial AoS path at any thread count.
class RecordSoA {
 public:
  std::size_t size() const noexcept { return vp_.size(); }
  bool empty() const noexcept { return vp_.empty(); }

  void clear() noexcept {
    vp_.clear();
    t_s_.clear();
    site_id_.clear();
    rtt_ms_.clear();
    letter_index_.clear();
    outcome_.clear();
    server_.clear();
    rcode_.clear();
  }

  void push(const ProbeRecord& rec) {
    vp_.push_back(rec.vp);
    t_s_.push_back(rec.t_s);
    site_id_.push_back(rec.site_id);
    rtt_ms_.push_back(rec.rtt_ms);
    letter_index_.push_back(rec.letter_index);
    outcome_.push_back(rec.outcome);
    server_.push_back(rec.server);
    rcode_.push_back(rec.rcode);
  }

  /// Packs the lanes into `out` in push order.
  void append_to(RecordSet& out) const {
    out.reserve(out.size() + size());
    for (std::size_t i = 0; i < vp_.size(); ++i) {
      ProbeRecord rec;
      rec.vp = vp_[i];
      rec.t_s = t_s_[i];
      rec.site_id = site_id_[i];
      rec.rtt_ms = rtt_ms_[i];
      rec.letter_index = letter_index_[i];
      rec.outcome = outcome_[i];
      rec.server = server_[i];
      rec.rcode = rcode_[i];
      out.push_back(rec);
    }
  }

 private:
  std::vector<std::uint32_t> vp_;
  std::vector<std::uint32_t> t_s_;
  std::vector<std::int16_t> site_id_;
  std::vector<std::uint16_t> rtt_ms_;
  std::vector<std::uint8_t> letter_index_;
  std::vector<ProbeOutcome> outcome_;
  std::vector<std::uint8_t> server_;
  std::vector<std::uint8_t> rcode_;
};

}  // namespace rootstress::atlas
