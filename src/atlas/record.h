// Raw probe measurement records.
//
// One record per (VP, letter, probe). Packed to 16 bytes: full-scale runs
// produce tens of millions of records.
#pragma once

#include <cstdint>
#include <vector>

#include "net/clock.h"

namespace rootstress::atlas {

/// What a probe observed.
enum class ProbeOutcome : std::uint8_t {
  kSite = 0,     ///< got a reply mapping to a known site
  kError = 1,    ///< got a reply with an error RCODE / unparseable id
  kTimeout = 2,  ///< no reply within the Atlas timeout
};

/// One measurement. `site_id` is the deployment-global site id (-1 when
/// not applicable); `server` the 1-based answering server (0 unknown);
/// `rtt_ms` is meaningful only for kSite/kError.
struct ProbeRecord {
  std::uint32_t vp = 0;
  std::uint32_t t_s = 0;      ///< seconds since scenario epoch
  std::int16_t site_id = -1;
  std::uint16_t rtt_ms = 0;   ///< saturating at 65535
  std::uint8_t letter_index = 0;
  ProbeOutcome outcome = ProbeOutcome::kTimeout;
  std::uint8_t server = 0;
  std::uint8_t rcode = 0;

  net::SimTime time() const noexcept {
    return net::SimTime(static_cast<std::int64_t>(t_s) * 1000);
  }
};
static_assert(sizeof(ProbeRecord) == 16);

/// The record store for one run.
using RecordSet = std::vector<ProbeRecord>;

}  // namespace rootstress::atlas
