#include "atlas/cleaning.h"

namespace rootstress::atlas {

std::vector<bool> select_vps(const std::vector<VantagePoint>& vps,
                             const RecordSet& records, CleaningStats* stats) {
  // Evidence pass: which VPs produced pattern-mismatch replies at
  // middlebox-like latencies?
  std::vector<bool> hijack_evidence(vps.size(), false);
  for (const auto& record : records) {
    if (record.outcome == ProbeOutcome::kError && record.site_id < 0 &&
        record.rtt_ms < kHijackRttFloorMs && record.vp < vps.size()) {
      hijack_evidence[record.vp] = true;
    }
  }

  CleaningStats local;
  local.total_vps = static_cast<int>(vps.size());
  std::vector<bool> keep(vps.size(), false);
  for (std::size_t i = 0; i < vps.size(); ++i) {
    if (vps[i].firmware < kMinFirmware) {
      ++local.dropped_old_firmware;
      continue;
    }
    if (hijack_evidence[i]) {
      ++local.dropped_hijacked;
      continue;
    }
    keep[i] = true;
    ++local.kept_vps;
  }
  if (stats != nullptr) {
    stats->total_vps = local.total_vps;
    stats->dropped_old_firmware = local.dropped_old_firmware;
    stats->dropped_hijacked = local.dropped_hijacked;
    stats->kept_vps = local.kept_vps;
  }
  return keep;
}

RecordSet filter_records(const RecordSet& records,
                         const std::vector<bool>& keep_vp,
                         CleaningStats* stats) {
  RecordSet kept;
  kept.reserve(records.size());
  for (const auto& record : records) {
    if (record.vp < keep_vp.size() && keep_vp[record.vp]) {
      kept.push_back(record);
    }
  }
  if (stats != nullptr) {
    stats->total_records = records.size();
    stats->kept_records = kept.size();
  }
  return kept;
}

}  // namespace rootstress::atlas
