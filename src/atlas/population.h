// Vantage-point population synthesis.
//
// RIPE Atlas had ~9363 active probes in May 2016, heavily biased toward
// Europe — a bias the paper explicitly reasons about (over-representation
// in per-letter reachability, stable per-VP analyses). The synthesizer
// reproduces that bias and injects the dirt the cleaning stage must
// handle: a few percent of probes on pre-4570 firmware and ~0.8%
// behind hijacking middleboxes.
#pragma once

#include <vector>

#include "atlas/probe.h"
#include "bgp/topology.h"
#include "util/rng.h"

namespace rootstress::atlas {

/// Population parameters.
struct PopulationConfig {
  int vp_count = 9363;
  double europe_share = 0.55;  ///< fraction of VPs homed in EU stubs
  double old_firmware_share = 0.03;
  double hijacked_share = 0.008;
  std::uint64_t seed = 2015;
};

/// Synthesizes the population over the stub ASes of `topology`.
std::vector<VantagePoint> make_population(const bgp::AsTopology& topology,
                                          const PopulationConfig& config);

}  // namespace rootstress::atlas
