// The closed loop: estimator -> rules -> actuator, once per engine step.
//
// The controller is the per-run instance of a Playbook. Each step it
// folds the operator-view observations into the SignalEstimator,
// evaluates every rule against every site's evidence (in rule order,
// then site-id order), schedules fired actions on the Actuator, and
// drains whatever came due through the engine's ActuationBackend.
//
// Determinism: the whole step is a pure function of (playbook, prior
// controller state, this step's observations). There is no RNG, no wall
// clock, and the engine calls step() from its serial defense-policy
// phase, so decisions are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/clock.h"
#include "playbook/actuator.h"
#include "playbook/rules.h"
#include "playbook/signal.h"

namespace rootstress::obs {
class Counter;
class Runtime;
}  // namespace rootstress::obs

namespace rootstress::playbook {

/// Per-rule lifetime counters.
struct RuleStats {
  std::string name;
  std::uint64_t fired = 0;    ///< trigger matched, action scheduled
  std::uint64_t applied = 0;  ///< actuation changed the world
  std::uint64_t vetoed = 0;   ///< actuation refused by the backend

  bool operator==(const RuleStats&) const = default;
};

/// What the controller did over one run. Carried on SimulationResult and
/// digested into sweep::RunSummary.
struct PlaybookRunStats {
  std::uint64_t detections = 0;   ///< site detection onsets
  std::uint64_t activations = 0;  ///< applied actuations (all rules)
  std::uint64_t vetoes = 0;
  std::int64_t first_signal_ms = -1;      ///< first hot raw observation
  std::int64_t first_detection_ms = -1;   ///< first confirmed detection
  std::int64_t first_activation_ms = -1;  ///< first applied actuation
  std::vector<RuleStats> rules;           ///< one per playbook rule
  /// Sim time of every applied actuation, in order. Resilience analyses
  /// bin these against the attack envelope to count false activations
  /// (actions fired during quiet inter-pulse gaps).
  std::vector<std::int64_t> activation_times_ms;

  /// Confirmed-detection latency behind the first raw evidence; -1 when
  /// either never happened.
  std::int64_t detection_lag_ms() const noexcept {
    if (first_signal_ms < 0 || first_detection_ms < 0) return -1;
    return first_detection_ms - first_signal_ms;
  }

  bool operator==(const PlaybookRunStats&) const = default;
};

/// Runs one playbook against one deployment's observation stream.
class PlaybookController {
 public:
  PlaybookController(Playbook playbook, std::size_t site_count);

  /// Wires metrics + trace (nullable): playbook.activations{rule=...},
  /// playbook.vetoes, playbook.detections counters and per-rule
  /// playbook-action trace events.
  void attach_obs(obs::Runtime* obs);

  /// One control step. `observations` is indexed by site id and must
  /// cover every site; `backend` applies due actions.
  void step(net::SimTime now, std::span<const SiteObservation> observations,
            ActuationBackend& backend);

  /// True while the playbook manages this site's announcement (it applied
  /// a withdrawal not yet restored). The engine's static policy pass
  /// skips held sites: reactive rules outrank static regimes.
  bool holds(int site_id) const noexcept {
    return held_[static_cast<std::size_t>(site_id)] != 0;
  }

  const PlaybookRunStats& stats() const noexcept { return stats_; }
  const Playbook& playbook() const noexcept { return playbook_; }
  const SignalEstimator& estimator() const noexcept { return estimator_; }

 private:
  struct RuleSiteState {
    int streak = 0;       ///< consecutive steps the trigger held
    int activations = 0;  ///< schedules charged against max_activations
    net::SimTime last_fired{-1};  ///< -1 = never
  };

  bool trigger_holds(const Trigger& trigger, const SiteSignal& signal) const;
  bool action_applicable(const Action& action, std::size_t site) const;
  void on_actuated(const PendingActuation& pending, ActuationOutcome outcome,
                   net::SimTime now);

  Playbook playbook_;
  SignalEstimator estimator_;
  Actuator actuator_;
  /// [rule][site] trigger/cooldown state.
  std::vector<std::vector<RuleSiteState>> rule_state_;
  std::vector<char> held_;          ///< sites whose scope the playbook owns
  std::vector<char> was_detected_;  ///< previous-step detection state
  PlaybookRunStats stats_;

  obs::Runtime* obs_ = nullptr;
  obs::Counter* c_vetoes_ = nullptr;
  obs::Counter* c_detections_ = nullptr;
  std::vector<obs::Counter*> c_rule_activations_;  ///< one per rule
};

}  // namespace rootstress::playbook
