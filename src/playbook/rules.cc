#include "playbook/rules.h"

#include <algorithm>

namespace rootstress::playbook {

const char* to_string(TriggerKind kind) noexcept {
  switch (kind) {
    case TriggerKind::kLossAbove: return "loss-above";
    case TriggerKind::kRttInflation: return "rtt-inflation";
    case TriggerKind::kUtilizationAbove: return "utilization-above";
    case TriggerKind::kLossBelow: return "loss-below";
  }
  return "?";
}

const char* to_string(ActionKind kind) noexcept {
  switch (kind) {
    case ActionKind::kWithdrawSite: return "withdraw-site";
    case ActionKind::kPartialWithdraw: return "partial-withdraw";
    case ActionKind::kRestoreSite: return "restore-site";
    case ActionKind::kScaleCapacity: return "scale-capacity";
    case ActionKind::kEnableRrl: return "enable-rrl";
    case ActionKind::kDisableRrl: return "disable-rrl";
    case ActionKind::kPrependPath: return "prepend-path";
  }
  return "?";
}

Trigger Trigger::loss_above(double loss, int for_steps) {
  return Trigger{TriggerKind::kLossAbove, loss, for_steps};
}

Trigger Trigger::rtt_inflation(double factor, int for_steps) {
  return Trigger{TriggerKind::kRttInflation, factor, for_steps};
}

Trigger Trigger::utilization_above(double ratio, int for_steps) {
  return Trigger{TriggerKind::kUtilizationAbove, ratio, for_steps};
}

Trigger Trigger::loss_below(double loss, int for_steps) {
  return Trigger{TriggerKind::kLossBelow, loss, for_steps};
}

Action Action::withdraw_site() { return Action{ActionKind::kWithdrawSite, 0.0}; }
Action Action::partial_withdraw() {
  return Action{ActionKind::kPartialWithdraw, 0.0};
}
Action Action::restore_site() { return Action{ActionKind::kRestoreSite, 0.0}; }
Action Action::scale_capacity(double factor) {
  return Action{ActionKind::kScaleCapacity, factor};
}
Action Action::enable_rrl() { return Action{ActionKind::kEnableRrl, 0.0}; }
Action Action::disable_rrl() { return Action{ActionKind::kDisableRrl, 0.0}; }
Action Action::prepend_path(int hops) {
  return Action{ActionKind::kPrependPath, static_cast<double>(hops)};
}

Playbook Playbook::absorb_only() {
  Playbook p;
  p.name = "absorb-only";
  return p;
}

Playbook Playbook::withdraw_at_threshold(double loss_threshold) {
  Playbook p;
  p.name = "withdraw-at-threshold";
  p.rules.push_back(Rule{
      "withdraw-on-loss",
      Trigger::loss_above(loss_threshold, /*for_steps=*/3),
      Action::withdraw_site(),
      net::SimTime::from_minutes(20),
      /*max_activations=*/0,
  });
  p.rules.push_back(Rule{
      "restore-on-recovery",
      Trigger::loss_below(0.02, /*for_steps=*/30),
      Action::restore_site(),
      net::SimTime::from_minutes(30),
      /*max_activations=*/0,
  });
  return p;
}

Playbook Playbook::layered_defense(double loss_threshold) {
  Playbook p;
  p.name = "layered-rrl-withdraw";
  p.rules.push_back(Rule{
      "rrl-on-detection",
      Trigger::loss_above(p.signals.on_loss, /*for_steps=*/1),
      Action::enable_rrl(),
      net::SimTime::from_minutes(10),
      /*max_activations=*/0,
  });
  p.rules.push_back(Rule{
      "partial-withdraw-on-loss",
      Trigger::loss_above(loss_threshold, /*for_steps=*/3),
      Action::partial_withdraw(),
      net::SimTime::from_minutes(20),
      /*max_activations=*/0,
  });
  p.rules.push_back(Rule{
      "withdraw-as-last-resort",
      Trigger::loss_above(std::min(1.0, loss_threshold + 0.3),
                          /*for_steps=*/5),
      Action::withdraw_site(),
      net::SimTime::from_minutes(30),
      /*max_activations=*/2,
  });
  p.rules.push_back(Rule{
      "restore-on-recovery",
      Trigger::loss_below(0.02, /*for_steps=*/30),
      Action::restore_site(),
      net::SimTime::from_minutes(30),
      /*max_activations=*/0,
  });
  return p;
}

std::string validate(const Playbook& playbook) {
  if (std::string problem = validate(playbook.signals); !problem.empty()) {
    return "signals: " + problem;
  }
  if (playbook.delays.bgp.ms < 0 || playbook.delays.local.ms < 0) {
    return "actuation delays must be non-negative";
  }
  for (std::size_t i = 0; i < playbook.rules.size(); ++i) {
    const Rule& rule = playbook.rules[i];
    const std::string where =
        "rule " + std::to_string(i) +
        (rule.name.empty() ? std::string() : " ('" + rule.name + "')");
    if (rule.trigger.for_steps < 1) {
      return where + ": trigger for_steps must be >= 1";
    }
    if (rule.trigger.threshold < 0.0) {
      return where + ": trigger threshold must be non-negative";
    }
    if ((rule.trigger.kind == TriggerKind::kLossAbove ||
         rule.trigger.kind == TriggerKind::kLossBelow) &&
        rule.trigger.threshold > 1.0) {
      return where + ": loss threshold must be <= 1";
    }
    if (rule.cooldown.ms < 0) return where + ": cooldown must be non-negative";
    if (rule.max_activations < 0) {
      return where + ": max_activations must be >= 0";
    }
    if (rule.action.kind == ActionKind::kScaleCapacity &&
        rule.action.amount <= 0.0) {
      return where + ": scale_capacity amount must be > 0";
    }
    if (rule.action.kind == ActionKind::kPrependPath &&
        (rule.action.amount < 0.0 || rule.action.amount > 16.0)) {
      return where + ": prepend_path hops must be in [0, 16]";
    }
  }
  return {};
}

obs::JsonValue playbook_fingerprint(const Playbook& playbook) {
  obs::JsonValue doc = obs::JsonValue::object();
  obs::JsonValue signals = obs::JsonValue::object();
  signals.set("on_loss", obs::JsonValue(playbook.signals.on_loss));
  signals.set("off_loss", obs::JsonValue(playbook.signals.off_loss));
  signals.set("confirm_steps", obs::JsonValue(playbook.signals.confirm_steps));
  signals.set("clear_steps", obs::JsonValue(playbook.signals.clear_steps));
  signals.set("ema_alpha", obs::JsonValue(playbook.signals.ema_alpha));
  doc.set("signals", std::move(signals));
  obs::JsonValue delays = obs::JsonValue::object();
  delays.set("bgp_ms", obs::JsonValue(playbook.delays.bgp.ms));
  delays.set("local_ms", obs::JsonValue(playbook.delays.local.ms));
  doc.set("delays", std::move(delays));
  obs::JsonValue rules = obs::JsonValue::array();
  for (const Rule& rule : playbook.rules) {
    obs::JsonValue r = obs::JsonValue::object();
    r.set("trigger", obs::JsonValue(to_string(rule.trigger.kind)));
    r.set("threshold", obs::JsonValue(rule.trigger.threshold));
    r.set("for_steps", obs::JsonValue(rule.trigger.for_steps));
    r.set("action", obs::JsonValue(to_string(rule.action.kind)));
    r.set("amount", obs::JsonValue(rule.action.amount));
    r.set("cooldown_ms", obs::JsonValue(rule.cooldown.ms));
    r.set("max_activations", obs::JsonValue(rule.max_activations));
    rules.push_back(std::move(r));
  }
  doc.set("rules", std::move(rules));
  return doc;
}

}  // namespace rootstress::playbook
