#include "playbook/controller.h"

#include <string>

#include "obs/runtime.h"

namespace rootstress::playbook {

namespace {

std::string site_label(int site_id) {
  return "site-" + std::to_string(site_id);
}

bool takes_announcement(ActionKind kind) noexcept {
  return kind == ActionKind::kWithdrawSite ||
         kind == ActionKind::kPartialWithdraw;
}

}  // namespace

PlaybookController::PlaybookController(Playbook playbook,
                                       std::size_t site_count)
    : playbook_(std::move(playbook)),
      estimator_(playbook_.signals, site_count),
      actuator_(playbook_.delays),
      rule_state_(playbook_.rules.size(),
                  std::vector<RuleSiteState>(site_count)),
      held_(site_count, 0),
      was_detected_(site_count, 0) {
  stats_.rules.reserve(playbook_.rules.size());
  for (const Rule& rule : playbook_.rules) {
    RuleStats rs;
    rs.name = rule.name;
    stats_.rules.push_back(std::move(rs));
  }
}

void PlaybookController::attach_obs(obs::Runtime* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  c_detections_ = &obs_->metrics().counter("playbook.detections");
  c_vetoes_ = &obs_->metrics().counter("playbook.vetoes");
  c_rule_activations_.clear();
  c_rule_activations_.reserve(playbook_.rules.size());
  for (const Rule& rule : playbook_.rules) {
    c_rule_activations_.push_back(&obs_->metrics().counter(
        "playbook.activations", obs::Labels{{"rule", rule.name}}));
  }
}

bool PlaybookController::trigger_holds(const Trigger& trigger,
                                       const SiteSignal& signal) const {
  switch (trigger.kind) {
    case TriggerKind::kLossAbove:
      return signal.detected && signal.loss_ema >= trigger.threshold;
    case TriggerKind::kRttInflation:
      return signal.detected &&
             signal.delay_ema_ms >= trigger.threshold * signal.baseline_delay_ms;
    case TriggerKind::kUtilizationAbove:
      return signal.detected && signal.util_ema >= trigger.threshold;
    case TriggerKind::kLossBelow:
      return signal.loss_ema <= trigger.threshold;
  }
  return false;
}

bool PlaybookController::action_applicable(const Action& action,
                                           std::size_t site) const {
  // Announcement-taking actions only make sense while the playbook does
  // not already hold the site; restore only while it does. Everything
  // else (RRL, capacity, prepend) is idempotent at the backend, which
  // reports kNoop — but re-scheduling a withdrawal of a dark site every
  // step would burn the rule's activation budget for nothing.
  if (takes_announcement(action.kind)) return held_[site] == 0;
  if (action.kind == ActionKind::kRestoreSite) return held_[site] != 0;
  return true;
}

void PlaybookController::step(net::SimTime now,
                              std::span<const SiteObservation> observations,
                              ActuationBackend& backend) {
  estimator_.observe(now, observations);

  const double on_loss = playbook_.signals.on_loss;
  for (std::size_t s = 0; s < observations.size(); ++s) {
    if (stats_.first_signal_ms < 0 &&
        1.0 - observations[s].answered_fraction >= on_loss) {
      stats_.first_signal_ms = now.ms;
    }
    const SiteSignal& signal = estimator_.site(s);
    const bool was = was_detected_[s] != 0;
    if (signal.detected && !was) {
      ++stats_.detections;
      if (stats_.first_detection_ms < 0) stats_.first_detection_ms = now.ms;
      if (c_detections_ != nullptr) c_detections_->add();
      obs::emit_event(obs_, obs::TraceEventType::kPlaybookDetection, now, '-',
                      site_label(static_cast<int>(s)), "attack detected",
                      signal.loss_ema);
    }
    was_detected_[s] = signal.detected ? 1 : 0;
  }

  // Decide: rules in declaration order, sites in id order. All state the
  // decisions read was fixed above, so the loop order is only about
  // actuator sequence numbers (and therefore tie-breaks), which must not
  // depend on anything but the playbook itself.
  for (std::size_t r = 0; r < playbook_.rules.size(); ++r) {
    const Rule& rule = playbook_.rules[r];
    std::vector<RuleSiteState>& per_site = rule_state_[r];
    for (std::size_t s = 0; s < per_site.size(); ++s) {
      RuleSiteState& state = per_site[s];
      if (!trigger_holds(rule.trigger, estimator_.site(s))) {
        state.streak = 0;
        continue;
      }
      ++state.streak;
      if (state.streak < rule.trigger.for_steps) continue;
      if (state.last_fired.ms >= 0 &&
          now.ms - state.last_fired.ms < rule.cooldown.ms) {
        continue;
      }
      if (rule.max_activations > 0 &&
          state.activations >= rule.max_activations) {
        continue;
      }
      if (!action_applicable(rule.action, s)) continue;
      if (!actuator_.schedule(static_cast<int>(s), static_cast<int>(r),
                              rule.action, now)) {
        continue;  // identical action already in flight
      }
      state.last_fired = now;
      ++state.activations;
      ++stats_.rules[r].fired;
      obs::emit_event(obs_, obs::TraceEventType::kPlaybookAction, now, '-',
                      site_label(static_cast<int>(s)),
                      rule.name + ": scheduled " +
                          to_string(rule.action.kind),
                      rule.action.amount);
    }
  }

  actuator_.drain(now, backend,
                  [this, now](const PendingActuation& pending,
                              ActuationOutcome outcome) {
                    on_actuated(pending, outcome, now);
                  });
}

void PlaybookController::on_actuated(const PendingActuation& pending,
                                     ActuationOutcome outcome,
                                     net::SimTime now) {
  const std::size_t r = static_cast<std::size_t>(pending.rule_index);
  const std::string& rule_name =
      r < stats_.rules.size() ? stats_.rules[r].name : playbook_.name;
  switch (outcome) {
    case ActuationOutcome::kApplied: {
      ++stats_.activations;
      if (stats_.first_activation_ms < 0) stats_.first_activation_ms = now.ms;
      stats_.activation_times_ms.push_back(now.ms);
      if (r < stats_.rules.size()) ++stats_.rules[r].applied;
      if (r < c_rule_activations_.size()) c_rule_activations_[r]->add();
      obs::emit_event(obs_, obs::TraceEventType::kPlaybookAction, now, '-',
                      site_label(pending.site_id),
                      rule_name + ": applied " +
                          to_string(pending.action.kind),
                      pending.action.amount);
      const std::size_t site = static_cast<std::size_t>(pending.site_id);
      if (site < held_.size()) {
        if (takes_announcement(pending.action.kind)) held_[site] = 1;
        if (pending.action.kind == ActionKind::kRestoreSite) held_[site] = 0;
      }
      break;
    }
    case ActuationOutcome::kVetoed: {
      ++stats_.vetoes;
      if (r < stats_.rules.size()) ++stats_.rules[r].vetoed;
      if (c_vetoes_ != nullptr) c_vetoes_->add();
      obs::emit_event(obs_, obs::TraceEventType::kWithdrawVeto, now, '-',
                      site_label(pending.site_id),
                      rule_name + ": vetoed " +
                          to_string(pending.action.kind),
                      pending.action.amount);
      break;
    }
    case ActuationOutcome::kNoop:
      break;
  }
}

}  // namespace rootstress::playbook
