// Declarative reaction playbooks: ordered trigger -> action rules.
//
// A Playbook is the operator's written-down reaction plan (the "network
// playbooks" of the Anycast Agility line of work): which evidence fires
// which knob, how long to wait before re-deciding, and how often a knob
// may be pulled at all. Rules are data, not code — campaigns sweep whole
// playbooks the way they sweep attack rates, and the cache fingerprints
// them so distinct plans never collide.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/clock.h"
#include "obs/json.h"
#include "playbook/signal.h"

namespace rootstress::playbook {

/// Evidence predicate a rule waits on. Thresholds are evaluated against
/// the estimator's smoothed per-site signals, never raw ground truth.
enum class TriggerKind : std::uint8_t {
  kLossAbove,         ///< loss EMA >= threshold (requires detection)
  kRttInflation,      ///< delay EMA >= threshold x quiet baseline (requires detection)
  kUtilizationAbove,  ///< utilization EMA >= threshold (requires detection)
  kLossBelow,         ///< loss EMA <= threshold (recovery; no detection gate)
};

const char* to_string(TriggerKind kind) noexcept;

struct Trigger {
  TriggerKind kind = TriggerKind::kLossAbove;
  double threshold = 0.0;
  /// Consecutive controller steps the predicate must hold before the rule
  /// fires (on top of the estimator's own confirm latency).
  int for_steps = 1;

  static Trigger loss_above(double loss, int for_steps = 1);
  static Trigger rtt_inflation(double factor, int for_steps = 1);
  static Trigger utilization_above(double ratio, int for_steps = 1);
  static Trigger loss_below(double loss, int for_steps = 1);

  bool operator==(const Trigger&) const = default;
};

/// The knob a rule pulls on the triggering site.
enum class ActionKind : std::uint8_t {
  kWithdrawSite,     ///< full withdrawal (site goes dark)
  kPartialWithdraw,  ///< drop transit, keep direct peers (NO_EXPORT)
  kRestoreSite,      ///< re-announce a site this playbook pulled
  kScaleCapacity,    ///< multiply site capacity by `amount` (surge capacity)
  kEnableRrl,        ///< turn response rate limiting on
  kDisableRrl,       ///< turn response rate limiting off
  kPrependPath,      ///< AS-path prepend the site's announcement by `amount`
};

const char* to_string(ActionKind kind) noexcept;

struct Action {
  ActionKind kind = ActionKind::kWithdrawSite;
  double amount = 0.0;  ///< kScaleCapacity factor / kPrependPath hop count

  static Action withdraw_site();
  static Action partial_withdraw();
  static Action restore_site();
  static Action scale_capacity(double factor);
  static Action enable_rrl();
  static Action disable_rrl();
  static Action prepend_path(int hops);

  bool operator==(const Action&) const = default;
};

/// One line of the playbook. Evaluated per site, in declaration order.
struct Rule {
  std::string name;  ///< label for stats / trace events
  Trigger trigger{};
  Action action{};
  /// Minimum time between this rule's activations on the same site.
  net::SimTime cooldown = net::SimTime::from_minutes(20);
  /// Per-site activation budget; 0 = unlimited.
  int max_activations = 0;

  bool operator==(const Rule&) const = default;
};

/// How long actuations take to become effective. Routing changes wait for
/// BGP convergence; local configuration (RRL, capacity) is near-instant.
struct ActuationDelays {
  net::SimTime bgp = net::SimTime::from_minutes(2);
  net::SimTime local = net::SimTime::from_seconds(30);

  bool operator==(const ActuationDelays&) const = default;
};

/// A full reaction plan.
struct Playbook {
  std::string name = "absorb-only";
  SignalConfig signals{};
  ActuationDelays delays{};
  std::vector<Rule> rules;  ///< evaluated in order

  /// Monitor-only: detection runs, nothing actuates (the paper's 2015
  /// absorber baseline).
  static Playbook absorb_only();
  /// Withdraw a site once its confirmed loss passes `loss_threshold`,
  /// restore after sustained recovery.
  static Playbook withdraw_at_threshold(double loss_threshold = 0.35);
  /// Layered defense: RRL first on detection, partial withdrawal under
  /// sustained loss, full withdrawal as the last resort, staged recovery.
  static Playbook layered_defense(double loss_threshold = 0.35);

  bool operator==(const Playbook&) const = default;
};

/// Empty when the playbook is usable, else the first problem.
std::string validate(const Playbook& playbook);

/// Canonical JSON fingerprint of everything that affects results. The
/// name is deliberately excluded: it is a display label, and two plans
/// with identical rules simulate identically.
obs::JsonValue playbook_fingerprint(const Playbook& playbook);

}  // namespace rootstress::playbook
