// Attack-evidence estimation from the operator's view.
//
// The estimator consumes only observables a real operator has: the
// answered fraction of arriving queries, ingress queue delay, and
// utilization per site — never the simulator's ground truth (it cannot
// see the botnet, the schedule, or the attack/legit split). Evidence is
// smoothed (EMA), must persist for a configurable number of steps before
// a site counts as "under attack" (detection latency), and clears through
// a lower threshold held for several steps (hysteresis), mirroring how
// operational detectors avoid flapping on bursty load.
//
// Everything here is a pure function of the observation stream: no RNG,
// no wall clock, no shared state — the determinism of the playbook
// controller rests on this.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "net/clock.h"

namespace rootstress::playbook {

/// What the operator can see about one site in one step. For withdrawn
/// sites every field reads idle — a dark site produces no evidence.
struct SiteObservation {
  double offered_qps = 0.0;
  /// Fraction of arriving queries answered this step (1 - arrival loss):
  /// the per-bin answered fraction of the paper's reachability metric,
  /// as the site itself measures it.
  double answered_fraction = 1.0;
  double queue_delay_ms = 0.0;
  double utilization = 0.0;  ///< offered / capacity
};

/// Detector tuning.
struct SignalConfig {
  /// Loss (1 - answered fraction) at or above which a step counts as
  /// "hot"; evidence accumulates toward detection.
  double on_loss = 0.10;
  /// Loss below which a step counts as "cool"; must be < on_loss
  /// (hysteresis band — between the two, state holds).
  double off_loss = 0.03;
  /// Consecutive hot steps before a site is detected (detection latency).
  int confirm_steps = 3;
  /// Consecutive cool steps before a detection clears.
  int clear_steps = 5;
  /// EMA smoothing factor for loss / delay / utilization, in (0, 1].
  double ema_alpha = 0.3;
};

/// Empty when valid, else the first problem.
std::string validate(const SignalConfig& config);

/// Per-site evidence state.
struct SiteSignal {
  double loss_ema = 0.0;
  double delay_ema_ms = 0.0;
  double util_ema = 0.0;
  /// Quiet-time queue delay (slow EMA, updated only while undetected and
  /// cool; floored at 1 ms) — the baseline rtt_inflation triggers
  /// compare against.
  double baseline_delay_ms = 1.0;
  int hot_streak = 0;
  int cool_streak = 0;
  bool detected = false;
  net::SimTime detected_since{-1};
};

/// Streams observations into per-site evidence.
class SignalEstimator {
 public:
  SignalEstimator(SignalConfig config, std::size_t site_count);

  /// Folds one step of observations in (indexed by site id; the span size
  /// must equal site_count).
  void observe(net::SimTime now, std::span<const SiteObservation> obs);

  const SiteSignal& site(std::size_t id) const { return signals_[id]; }
  std::size_t site_count() const noexcept { return signals_.size(); }
  const SignalConfig& config() const noexcept { return config_; }

  /// Sites currently in the detected state.
  int detected_count() const noexcept;

 private:
  SignalConfig config_;
  std::vector<SiteSignal> signals_;
  bool primed_ = false;  ///< first observation seeds the EMAs
};

}  // namespace rootstress::playbook
