#include "playbook/signal.h"

#include <algorithm>
#include <cassert>

namespace rootstress::playbook {

namespace {
/// Baseline delay adapts much slower than the step EMAs: it should track
/// the quiet-time level across hours, not chase the onset of an event.
constexpr double kBaselineAlpha = 0.05;
constexpr double kBaselineFloorMs = 1.0;
}  // namespace

std::string validate(const SignalConfig& config) {
  if (!(config.on_loss > 0.0 && config.on_loss <= 1.0)) {
    return "on_loss must be in (0, 1]";
  }
  if (!(config.off_loss >= 0.0 && config.off_loss < config.on_loss)) {
    return "off_loss must be in [0, on_loss)";
  }
  if (config.confirm_steps < 1) return "confirm_steps must be >= 1";
  if (config.clear_steps < 1) return "clear_steps must be >= 1";
  if (!(config.ema_alpha > 0.0 && config.ema_alpha <= 1.0)) {
    return "ema_alpha must be in (0, 1]";
  }
  return {};
}

SignalEstimator::SignalEstimator(SignalConfig config, std::size_t site_count)
    : config_(config), signals_(site_count) {}

void SignalEstimator::observe(net::SimTime now,
                              std::span<const SiteObservation> obs) {
  assert(obs.size() == signals_.size());
  const double a = config_.ema_alpha;
  for (std::size_t id = 0; id < signals_.size(); ++id) {
    SiteSignal& sig = signals_[id];
    const SiteObservation& o = obs[id];
    const double loss = std::clamp(1.0 - o.answered_fraction, 0.0, 1.0);
    if (!primed_) {
      sig.loss_ema = loss;
      sig.delay_ema_ms = o.queue_delay_ms;
      sig.util_ema = o.utilization;
      sig.baseline_delay_ms = std::max(o.queue_delay_ms, kBaselineFloorMs);
    } else {
      sig.loss_ema += a * (loss - sig.loss_ema);
      sig.delay_ema_ms += a * (o.queue_delay_ms - sig.delay_ema_ms);
      sig.util_ema += a * (o.utilization - sig.util_ema);
    }

    const bool hot = sig.loss_ema >= config_.on_loss;
    const bool cool = sig.loss_ema <= config_.off_loss;
    sig.hot_streak = hot ? sig.hot_streak + 1 : 0;
    sig.cool_streak = cool ? sig.cool_streak + 1 : 0;
    if (!sig.detected && sig.hot_streak >= config_.confirm_steps) {
      sig.detected = true;
      sig.detected_since = now;
    } else if (sig.detected && sig.cool_streak >= config_.clear_steps) {
      sig.detected = false;
      sig.detected_since = net::SimTime(-1);
    }
    if (!sig.detected && cool) {
      sig.baseline_delay_ms = std::max(
          sig.baseline_delay_ms +
              kBaselineAlpha * (o.queue_delay_ms - sig.baseline_delay_ms),
          kBaselineFloorMs);
    }
  }
  primed_ = true;
}

int SignalEstimator::detected_count() const noexcept {
  int count = 0;
  for (const SiteSignal& sig : signals_) count += sig.detected ? 1 : 0;
  return count;
}

}  // namespace rootstress::playbook
