#include "playbook/actuator.h"

#include <algorithm>

namespace rootstress::playbook {

net::SimTime Actuator::delay_for(const Action& action) const noexcept {
  switch (action.kind) {
    case ActionKind::kWithdrawSite:
    case ActionKind::kPartialWithdraw:
    case ActionKind::kRestoreSite:
    case ActionKind::kPrependPath:
      return delays_.bgp;
    case ActionKind::kScaleCapacity:
    case ActionKind::kEnableRrl:
    case ActionKind::kDisableRrl:
      return delays_.local;
  }
  return delays_.local;
}

bool Actuator::schedule(int site_id, int rule_index, const Action& action,
                        net::SimTime now) {
  for (const PendingActuation& pending : queue_) {
    if (pending.site_id == site_id && pending.action == action) return false;
  }
  PendingActuation entry;
  entry.due = now + delay_for(action);
  entry.sequence = next_sequence_++;
  entry.site_id = site_id;
  entry.rule_index = rule_index;
  entry.action = action;
  queue_.push_back(entry);
  return true;
}

void Actuator::drain(net::SimTime now, ActuationBackend& backend,
                     const std::function<void(const PendingActuation&,
                                              ActuationOutcome)>& done) {
  if (queue_.empty()) return;
  // Due entries, oldest decision first. The queue is small (pending
  // actions per site per rule are deduplicated), so a sort per drain is
  // cheap and keeps the application order obviously deterministic.
  std::vector<PendingActuation> due;
  for (const PendingActuation& pending : queue_) {
    if (pending.due <= now) due.push_back(pending);
  }
  if (due.empty()) return;
  std::sort(due.begin(), due.end(),
            [](const PendingActuation& a, const PendingActuation& b) {
              if (a.due.ms != b.due.ms) return a.due.ms < b.due.ms;
              return a.sequence < b.sequence;
            });
  std::erase_if(queue_,
                [now](const PendingActuation& p) { return p.due <= now; });
  for (const PendingActuation& pending : due) {
    const ActuationOutcome outcome =
        backend.actuate(pending.site_id, pending.action, now);
    if (done) done(pending, outcome);
  }
}

}  // namespace rootstress::playbook
