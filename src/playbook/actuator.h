// The actuation layer between playbook decisions and the world.
//
// Decisions do not take effect when made: routing changes propagate at
// BGP-convergence speed, local configuration at operator speed. The
// Actuator queues decided actions with their per-kind delay and applies
// the due ones each step through an ActuationBackend, which may veto
// (mirroring SitePolicyState::veto_withdrawal — a letter's last global
// site stays up as a degraded absorber no matter what the plan says).
//
// Determinism: the queue is drained in (due time, decision sequence)
// order, both of which derive from simulation state only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/clock.h"
#include "playbook/rules.h"

namespace rootstress::playbook {

/// What applying one action did.
enum class ActuationOutcome : std::uint8_t {
  kApplied,  ///< the world changed
  kNoop,     ///< already in the target state
  kVetoed,   ///< refused (e.g. last-global-site guard)
};

/// Applies actions to the simulated world; the engine implements this
/// over its deployment. Implementations must be deterministic.
class ActuationBackend {
 public:
  virtual ~ActuationBackend() = default;
  virtual ActuationOutcome actuate(int site_id, const Action& action,
                                   net::SimTime now) = 0;
};

/// One decided-but-not-yet-effective action.
struct PendingActuation {
  net::SimTime due{};
  std::uint64_t sequence = 0;  ///< decision order; ties on `due` break by this
  int site_id = -1;
  int rule_index = -1;
  Action action{};
};

/// Delay queue for decided actions.
class Actuator {
 public:
  explicit Actuator(ActuationDelays delays) : delays_(delays) {}

  /// Propagation delay for an action kind: routing knobs (withdraw,
  /// restore, prepend) pay the BGP delay, everything else the local one.
  net::SimTime delay_for(const Action& action) const noexcept;

  /// Queues `action` against `site_id`, due after its delay. Returns
  /// false (and queues nothing) when an identical action for the site is
  /// already pending — rules re-firing every step must not pile up.
  bool schedule(int site_id, int rule_index, const Action& action,
                net::SimTime now);

  /// Applies every action due at `now` in (due, sequence) order and
  /// reports each outcome through `done` (nullable).
  void drain(net::SimTime now, ActuationBackend& backend,
             const std::function<void(const PendingActuation&,
                                      ActuationOutcome)>& done);

  std::size_t pending() const noexcept { return queue_.size(); }
  const ActuationDelays& delays() const noexcept { return delays_; }

 private:
  ActuationDelays delays_;
  std::vector<PendingActuation> queue_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace rootstress::playbook
