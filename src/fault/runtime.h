// Engine-side evaluation of a FaultSchedule.
//
// FaultRuntime resolves a declarative schedule against a concrete
// deployment (letter/ordinal -> site id + prefix) and answers, per step,
// what to inject. All stateful decisions (site down/restore, session
// flaps) happen in begin_step(), which the engine calls from its serial
// defense-injection phase; the remaining queries are pure reads of the
// step state — or, for vp_dropped(), a pure hash — and are safe from the
// parallel probe shards. That split is what keeps fault-laden runs
// bit-identical at any thread count.
#pragma once

#include <vector>

#include "anycast/deployment.h"
#include "attack/schedule.h"
#include "fault/schedule.h"
#include "net/clock.h"

namespace rootstress::fault {

/// One injection the engine must apply this step, in declaration order.
struct DueAction {
  enum class Kind : std::uint8_t {
    kSiteDown,        ///< hardware failure begins: fully withdraw
    kSiteRestore,     ///< hardware recovered: re-announce (unless vetoed)
    kSessionDown,     ///< BGP session reset: tear down the announcement
    kSessionRestore,  ///< session back: reassert the scope's announcement
  };

  Kind kind = Kind::kSiteDown;
  int site_id = -1;
  int prefix = -1;
};

const char* to_string(DueAction::Kind kind) noexcept;

class FaultRuntime {
 public:
  /// Resolves ordinals against `deployment` (borrowed; must outlive the
  /// runtime). Injectors naming letters or ordinals the deployment does
  /// not have are dropped — small test topologies stay usable.
  FaultRuntime(const FaultSchedule& schedule,
               const anycast::RootDeployment& deployment);

  /// Advances all injector state machines to `t` and returns the actions
  /// now due, in schedule declaration order. Serial phase only.
  std::vector<DueAction> begin_step(net::SimTime t);

  /// The attack event in force at `t`: inside a pulse window a
  /// synthesized event scaled by the envelope (nullptr when the envelope
  /// is zero — true inter-pulse silence), otherwise whatever `base` says.
  /// The returned pointer is valid until the next begin_step()/shape().
  const attack::AttackEvent* shape(net::SimTime t,
                                   const attack::AttackSchedule& base);

  /// Whether `letter` counts as attacked this step. During a pulse with
  /// per-pulse targets the target set decides; during a pulse without
  /// targets (and outside pulses) the caller's static flag stands.
  bool letter_attacked(char letter, bool static_attacked) const noexcept;

  /// Legit-rate multiplier this step (product of active surges; 1.0 when
  /// none).
  double legit_scale() const noexcept { return legit_scale_; }

  /// Whether operator telemetry is frozen this step.
  bool telemetry_gap() const noexcept { return telemetry_gap_; }

  /// The pulse wave whose window covers the current step (nullptr when
  /// none). Valid until the next begin_step().
  const PulseWave* active_pulse() const noexcept { return active_pulse_; }

  /// Whether a hardware fault currently pins `site_id` down (defense
  /// layers must not re-announce it).
  bool holds_site(int site_id) const noexcept;

  /// Whether VP `vp_id` is silent at `when`. Pure (hash of vp and the
  /// dropout salt) — safe to call concurrently from probe shards.
  bool vp_dropped(int vp_id, net::SimTime when) const noexcept;

  const FaultSchedule& schedule() const noexcept { return schedule_; }

 private:
  struct ResolvedSiteFault {
    std::size_t index = 0;  ///< into schedule_.site_faults
    int site_id = -1;
    int prefix = -1;
    bool applied = false;
  };
  struct ResolvedBgpReset {
    std::size_t index = 0;  ///< into schedule_.bgp_resets
    int site_id = -1;
    int prefix = -1;
    bool down = false;
    bool done = false;
  };

  FaultSchedule schedule_;
  std::vector<ResolvedSiteFault> site_faults_;
  std::vector<ResolvedBgpReset> bgp_resets_;

  // Step state, written only by begin_step()/shape() (serial phase).
  net::SimTime now_{};
  const PulseWave* active_pulse_ = nullptr;
  std::int64_t active_pulse_index_ = -1;
  double legit_scale_ = 1.0;
  bool telemetry_gap_ = false;
  std::vector<int> held_sites_;
  attack::AttackEvent scratch_event_{};
};

}  // namespace rootstress::fault
