#include "fault/schedule.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "attack/events2015.h"

namespace rootstress::fault {

const char* to_string(PulseShape shape) noexcept {
  switch (shape) {
    case PulseShape::kSquare: return "square";
    case PulseShape::kSawtooth: return "sawtooth";
  }
  return "unknown";
}

const PulseWave* FaultSchedule::pulse_at(net::SimTime t) const noexcept {
  for (const PulseWave& pulse : pulses) {
    if (pulse.window.contains(t)) return &pulse;
  }
  return nullptr;
}

std::int64_t FaultSchedule::pulse_index(const PulseWave& pulse,
                                        net::SimTime t) noexcept {
  if (!pulse.window.contains(t) || pulse.period.ms <= 0) return -1;
  return (t.ms - pulse.window.begin.ms) / pulse.period.ms;
}

double FaultSchedule::envelope(const PulseWave& pulse,
                               net::SimTime t) noexcept {
  if (!pulse.window.contains(t) || pulse.period.ms <= 0) return 0.0;
  const std::int64_t phase_ms = (t.ms - pulse.window.begin.ms) % pulse.period.ms;
  const double on_ms = pulse.duty * static_cast<double>(pulse.period.ms);
  if (static_cast<double>(phase_ms) >= on_ms) return pulse.floor_scale;
  switch (pulse.shape) {
    case PulseShape::kSquare: return 1.0;
    case PulseShape::kSawtooth:
      // Ramp from just above the floor to full rate across the on-window;
      // on_ms > 0 is guaranteed by the duty > 0 validation.
      return (static_cast<double>(phase_ms) + 1.0) / on_ms;
  }
  return 1.0;
}

bool FaultSchedule::attack_hot(net::SimTime t,
                               const attack::AttackSchedule& base) const noexcept {
  if (const PulseWave* pulse = pulse_at(t)) {
    const std::int64_t phase_ms =
        pulse->period.ms > 0 ? (t.ms - pulse->window.begin.ms) % pulse->period.ms
                             : 0;
    return static_cast<double>(phase_ms) <
           pulse->duty * static_cast<double>(pulse->period.ms);
  }
  return base.active(t) != nullptr;
}

net::SimTime FaultSchedule::last_hot_end(
    const attack::AttackSchedule& base) const noexcept {
  std::int64_t last = std::numeric_limits<std::int64_t>::min();
  for (const attack::AttackEvent& event : base.events()) {
    // A base event shadowed by a pulse window still contributes nothing
    // beyond the pulse's own hot end, and pulse windows are handled below,
    // so only count the part of the event outside every pulse window. The
    // common case (no overlap) keeps the plain end.
    std::int64_t end = event.when.end.ms;
    for (const PulseWave& pulse : pulses) {
      if (pulse.window.begin.ms <= event.when.begin.ms &&
          event.when.end.ms <= pulse.window.end.ms) {
        end = std::numeric_limits<std::int64_t>::min();  // fully shadowed
      }
    }
    last = std::max(last, end);
  }
  for (const PulseWave& pulse : pulses) {
    if (pulse.period.ms <= 0 || pulse.window.duration().ms <= 0) continue;
    const std::int64_t on_ms = static_cast<std::int64_t>(
        pulse.duty * static_cast<double>(pulse.period.ms));
    // Walk back from the window end to the start of the last period that
    // begins inside the window, then take the end of its on-portion,
    // clamped to the window.
    const std::int64_t span = pulse.window.duration().ms;
    const std::int64_t periods = (span + pulse.period.ms - 1) / pulse.period.ms;
    const std::int64_t last_begin =
        pulse.window.begin.ms + (periods - 1) * pulse.period.ms;
    const std::int64_t hot_end =
        std::min(last_begin + std::max<std::int64_t>(on_ms, 1),
                 pulse.window.end.ms);
    last = std::max(last, hot_end);
  }
  return net::SimTime(last);
}

net::SimTime FaultSchedule::first_hot_begin(
    const attack::AttackSchedule& base) const noexcept {
  std::int64_t first = std::numeric_limits<std::int64_t>::max();
  for (const attack::AttackEvent& event : base.events()) {
    first = std::min(first, event.when.begin.ms);
  }
  for (const PulseWave& pulse : pulses) {
    if (pulse.window.duration().ms <= 0) continue;
    first = std::min(first, pulse.window.begin.ms);
  }
  return net::SimTime(first);
}

FaultSchedule FaultSchedule::pulse_wave_2015(double peak_qps) {
  PulseWave pulse;
  pulse.window = attack::kEvent1;
  pulse.period = net::SimTime::from_minutes(20);
  pulse.duty = 0.5;
  pulse.shape = PulseShape::kSquare;
  pulse.peak_qps = peak_qps;
  pulse.floor_scale = 0.0;
  return FaultScheduleBuilder()
      .name("pulse_wave_2015")
      .pulse_wave(pulse)
      .build();
}

FaultSchedule FaultSchedule::rolling_site_outage(char letter) {
  FaultScheduleBuilder b;
  b.name("rolling_site_outage");
  for (int i = 0; i < 3; ++i) {
    const net::SimTime begin = net::SimTime::from_hours(7.0 + i);
    b.site_fault(letter, i,
                 {begin, begin + net::SimTime::from_minutes(45)});
  }
  BgpReset reset;
  reset.letter = letter;
  reset.site_ordinal = 3;
  reset.at = net::SimTime::from_hours(8.5);
  reset.hold = net::SimTime::from_minutes(2);
  b.bgp_reset(reset);
  return b.build();
}

FaultSchedule FaultSchedule::flash_crowd_plus_fault() {
  const net::SimInterval surge{net::SimTime::from_hours(6.0),
                               net::SimTime::from_hours(10.0)};
  VpDropout dropout;
  dropout.window = {net::SimTime::from_hours(7.0),
                    net::SimTime::from_hours(9.0)};
  dropout.fraction = 0.20;
  dropout.salt = 0x2015'11'30;
  return FaultScheduleBuilder()
      .name("flash_crowd_plus_fault")
      .legit_surge(surge, 3.0)
      .site_fault('K', 0,
                  {net::SimTime::from_hours(7.5),
                   net::SimTime::from_hours(8.5)})
      .vp_dropout(dropout)
      .build();
}

FaultScheduleBuilder& FaultScheduleBuilder::name(std::string name) {
  schedule_.name = std::move(name);
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::pulse_wave(PulseWave pulse) {
  schedule_.pulses.push_back(std::move(pulse));
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::site_fault(SiteFault fault) {
  schedule_.site_faults.push_back(fault);
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::site_fault(char letter,
                                                       int site_ordinal,
                                                       net::SimInterval window) {
  return site_fault(SiteFault{letter, site_ordinal, window});
}

FaultScheduleBuilder& FaultScheduleBuilder::bgp_reset(BgpReset reset) {
  schedule_.bgp_resets.push_back(reset);
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::vp_dropout(VpDropout dropout) {
  schedule_.vp_dropouts.push_back(dropout);
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::telemetry_gap(
    net::SimInterval window) {
  schedule_.telemetry_gaps.push_back(TelemetryGap{window});
  return *this;
}

FaultScheduleBuilder& FaultScheduleBuilder::legit_surge(net::SimInterval window,
                                                        double scale) {
  schedule_.legit_surges.push_back(LegitSurge{window, scale});
  return *this;
}

std::string FaultScheduleBuilder::validate() const {
  return fault::validate(schedule_);
}

FaultSchedule FaultScheduleBuilder::build() const {
  if (std::string problem = validate(); !problem.empty()) {
    throw std::invalid_argument("FaultSchedule: " + problem);
  }
  return schedule_;
}

namespace {

bool valid_window(net::SimInterval window) noexcept {
  return window.begin < window.end;
}

bool valid_letter(char letter) noexcept {
  return letter >= 'A' && letter <= 'M';
}

bool finite_in(double x, double lo, double hi) noexcept {
  return std::isfinite(x) && x >= lo && x <= hi;
}

}  // namespace

std::string validate(const FaultSchedule& schedule) {
  for (std::size_t i = 0; i < schedule.pulses.size(); ++i) {
    const PulseWave& pulse = schedule.pulses[i];
    const std::string where = "pulse " + std::to_string(i);
    if (!valid_window(pulse.window)) return where + ": window must be non-empty";
    if (pulse.period.ms <= 0) return where + ": period must be positive";
    if (!finite_in(pulse.duty, 0.0, 1.0) || pulse.duty == 0.0) {
      return where + ": duty must be in (0, 1]";
    }
    if (!std::isfinite(pulse.peak_qps) || pulse.peak_qps <= 0.0) {
      return where + ": peak_qps must be positive";
    }
    if (!finite_in(pulse.floor_scale, 0.0, 1.0)) {
      return where + ": floor_scale must be in [0, 1]";
    }
    if (!finite_in(pulse.duplicate_fraction, 0.0, 1.0)) {
      return where + ": duplicate_fraction must be in [0, 1]";
    }
    if (!finite_in(pulse.spillover_fraction, 0.0, 1.0)) {
      return where + ": spillover_fraction must be in [0, 1]";
    }
    if (pulse.query_payload_bytes <= 0.0 || pulse.response_payload_bytes <= 0.0) {
      return where + ": payload bytes must be positive";
    }
    for (const auto& targets : pulse.pulse_targets) {
      if (targets.empty()) return where + ": a pulse target set is empty";
      for (char letter : targets) {
        if (!valid_letter(letter)) {
          return where + ": target letters must be 'A'..'M'";
        }
      }
    }
  }
  for (std::size_t i = 0; i < schedule.site_faults.size(); ++i) {
    const SiteFault& fault = schedule.site_faults[i];
    const std::string where = "site_fault " + std::to_string(i);
    if (!valid_letter(fault.letter)) return where + ": letter must be 'A'..'M'";
    if (fault.site_ordinal < 0) return where + ": site_ordinal must be >= 0";
    if (!valid_window(fault.window)) return where + ": window must be non-empty";
  }
  for (std::size_t i = 0; i < schedule.bgp_resets.size(); ++i) {
    const BgpReset& reset = schedule.bgp_resets[i];
    const std::string where = "bgp_reset " + std::to_string(i);
    if (!valid_letter(reset.letter)) return where + ": letter must be 'A'..'M'";
    if (reset.site_ordinal < 0) return where + ": site_ordinal must be >= 0";
    if (reset.hold.ms <= 0) return where + ": hold must be positive";
  }
  for (std::size_t i = 0; i < schedule.vp_dropouts.size(); ++i) {
    const VpDropout& dropout = schedule.vp_dropouts[i];
    const std::string where = "vp_dropout " + std::to_string(i);
    if (!valid_window(dropout.window)) return where + ": window must be non-empty";
    if (!finite_in(dropout.fraction, 0.0, 1.0)) {
      return where + ": fraction must be in [0, 1]";
    }
  }
  for (std::size_t i = 0; i < schedule.telemetry_gaps.size(); ++i) {
    if (!valid_window(schedule.telemetry_gaps[i].window)) {
      return "telemetry_gap " + std::to_string(i) + ": window must be non-empty";
    }
  }
  for (std::size_t i = 0; i < schedule.legit_surges.size(); ++i) {
    const LegitSurge& surge = schedule.legit_surges[i];
    const std::string where = "legit_surge " + std::to_string(i);
    if (!valid_window(surge.window)) return where + ": window must be non-empty";
    if (!std::isfinite(surge.scale) || surge.scale <= 0.0) {
      return where + ": scale must be positive";
    }
  }
  return {};
}

namespace {

// Same tagging convention as sweep/cache.cc's fp(): non-finite doubles
// become distinguishable strings, never JSON null, so two schedules that
// differ only in a NaN cannot share a fingerprint.
obs::JsonValue fp(double x) {
  if (std::isnan(x)) return obs::JsonValue("nan");
  if (std::isinf(x)) return obs::JsonValue(x > 0 ? "inf" : "-inf");
  return obs::JsonValue(x);
}

obs::JsonValue interval_json(net::SimInterval window) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("begin_ms", obs::JsonValue(window.begin.ms));
  doc.set("end_ms", obs::JsonValue(window.end.ms));
  return doc;
}

}  // namespace

obs::JsonValue fault_fingerprint(const FaultSchedule& schedule) {
  obs::JsonValue doc = obs::JsonValue::object();
  obs::JsonValue pulses = obs::JsonValue::array();
  for (const PulseWave& pulse : schedule.pulses) {
    obs::JsonValue p = obs::JsonValue::object();
    p.set("window", interval_json(pulse.window));
    p.set("period_ms", obs::JsonValue(pulse.period.ms));
    p.set("duty", fp(pulse.duty));
    p.set("shape", obs::JsonValue(to_string(pulse.shape)));
    p.set("peak_qps", fp(pulse.peak_qps));
    p.set("floor_scale", fp(pulse.floor_scale));
    obs::JsonValue targets = obs::JsonValue::array();
    for (const auto& set : pulse.pulse_targets) {
      std::string letters(set.begin(), set.end());
      targets.push_back(obs::JsonValue(std::move(letters)));
    }
    p.set("pulse_targets", std::move(targets));
    p.set("query_payload_bytes", fp(pulse.query_payload_bytes));
    p.set("response_payload_bytes", fp(pulse.response_payload_bytes));
    p.set("duplicate_fraction", fp(pulse.duplicate_fraction));
    p.set("spillover_fraction", fp(pulse.spillover_fraction));
    pulses.push_back(std::move(p));
  }
  doc.set("pulses", std::move(pulses));
  obs::JsonValue faults = obs::JsonValue::array();
  for (const SiteFault& fault : schedule.site_faults) {
    obs::JsonValue f = obs::JsonValue::object();
    f.set("letter", obs::JsonValue(std::string(1, fault.letter)));
    f.set("site_ordinal", obs::JsonValue(fault.site_ordinal));
    f.set("window", interval_json(fault.window));
    faults.push_back(std::move(f));
  }
  doc.set("site_faults", std::move(faults));
  obs::JsonValue resets = obs::JsonValue::array();
  for (const BgpReset& reset : schedule.bgp_resets) {
    obs::JsonValue r = obs::JsonValue::object();
    r.set("letter", obs::JsonValue(std::string(1, reset.letter)));
    r.set("site_ordinal", obs::JsonValue(reset.site_ordinal));
    r.set("at_ms", obs::JsonValue(reset.at.ms));
    r.set("hold_ms", obs::JsonValue(reset.hold.ms));
    resets.push_back(std::move(r));
  }
  doc.set("bgp_resets", std::move(resets));
  obs::JsonValue dropouts = obs::JsonValue::array();
  for (const VpDropout& dropout : schedule.vp_dropouts) {
    obs::JsonValue d = obs::JsonValue::object();
    d.set("window", interval_json(dropout.window));
    d.set("fraction", fp(dropout.fraction));
    d.set("salt", obs::JsonValue(static_cast<std::uint64_t>(dropout.salt)));
    dropouts.push_back(std::move(d));
  }
  doc.set("vp_dropouts", std::move(dropouts));
  obs::JsonValue gaps = obs::JsonValue::array();
  for (const TelemetryGap& gap : schedule.telemetry_gaps) {
    gaps.push_back(interval_json(gap.window));
  }
  doc.set("telemetry_gaps", std::move(gaps));
  obs::JsonValue surges = obs::JsonValue::array();
  for (const LegitSurge& surge : schedule.legit_surges) {
    obs::JsonValue s = obs::JsonValue::object();
    s.set("window", interval_json(surge.window));
    s.set("scale", fp(surge.scale));
    surges.push_back(std::move(s));
  }
  doc.set("legit_surges", std::move(surges));
  return doc;
}

namespace {

std::string site_scope(char letter, int ordinal) {
  return std::string(1, letter) + "#" + std::to_string(ordinal);
}

obs::TimelineSpan make_span(const char* category, const char* name,
                            std::string scope, net::SimTime begin,
                            net::SimTime end) {
  obs::TimelineSpan span;
  span.category = category;
  span.name = name;
  span.scope = std::move(scope);
  span.begin = begin;
  span.end = end;
  return span;
}

}  // namespace

std::vector<obs::TimelineSpan> timeline_spans(const FaultSchedule& schedule) {
  std::vector<obs::TimelineSpan> spans;
  for (const PulseWave& pulse : schedule.pulses) {
    spans.push_back(make_span("fault", "pulse-window", schedule.name,
                              pulse.window.begin, pulse.window.end));
    // Each pulse's hot on-portion, capped: a degenerate period could
    // otherwise explode the span list, and labels past a few hundred
    // pulses carry no extra information.
    constexpr int kMaxPulses = 512;
    if (pulse.period.ms <= 0) continue;
    const auto hot =
        net::SimTime{static_cast<std::int64_t>(
            static_cast<double>(pulse.period.ms) * pulse.duty)};
    net::SimTime begin = pulse.window.begin;
    for (int k = 0; k < kMaxPulses && begin < pulse.window.end;
         ++k, begin = begin + pulse.period) {
      net::SimTime end = begin + hot;
      if (end > pulse.window.end) end = pulse.window.end;
      spans.push_back(
          make_span("attack", "pulse-hot", schedule.name, begin, end));
    }
  }
  for (const SiteFault& fault : schedule.site_faults) {
    spans.push_back(make_span("fault", "site-fault",
                              site_scope(fault.letter, fault.site_ordinal),
                              fault.window.begin, fault.window.end));
  }
  for (const BgpReset& reset : schedule.bgp_resets) {
    spans.push_back(make_span("fault", "bgp-reset",
                              site_scope(reset.letter, reset.site_ordinal),
                              reset.at, reset.at + reset.hold));
  }
  for (const VpDropout& dropout : schedule.vp_dropouts) {
    spans.push_back(make_span("fault", "vp-dropout", {},
                              dropout.window.begin, dropout.window.end));
  }
  for (const TelemetryGap& gap : schedule.telemetry_gaps) {
    spans.push_back(make_span("fault", "telemetry-gap", {}, gap.window.begin,
                              gap.window.end));
  }
  for (const LegitSurge& surge : schedule.legit_surges) {
    spans.push_back(make_span("fault", "legit-surge", {}, surge.window.begin,
                              surge.window.end));
  }
  return spans;
}

}  // namespace rootstress::fault
