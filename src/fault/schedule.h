// Deterministic fault-and-attack chaos schedules.
//
// The paper's steady floods answer only half of §2.2's withdraw-vs-absorb
// question: real events mix time-varying attacks with infrastructure
// faults, and pulse-wave + fault-coincident timing is exactly where
// reactive defenses break (Rizvi et al.; Khamaisi et al.). A
// FaultSchedule is a declarative timeline of typed injectors:
//
//  - PulseWave: a square or sawtooth attack envelope with period, duty
//    cycle, and optional per-pulse target letters. Inside its window the
//    pulse OVERRIDES the scenario's base attack schedule (the engine
//    synthesizes the step's AttackEvent from the envelope); between
//    pulses the offered rate drops to `floor_scale` of the peak.
//  - SiteFault: hardware failure — one site fully withdrawn for a window,
//    restored afterwards, immune to the defense layers' re-announce paths.
//  - BgpReset: a session flap — the announcement is torn down at `at` and
//    reasserted after `hold`, without touching the site's scope.
//  - VpDropout: a fraction of Atlas VPs go silent inside a window
//    (deterministically chosen by hashing (vp, salt)).
//  - TelemetryGap: the operator's dashboards freeze — the playbook
//    controller keeps seeing the last pre-gap observations.
//  - LegitSurge: a flash crowd — the legitimate per-letter rate scales.
//
// Everything is pure data, seed-free, and evaluated in the engine's
// serial defense-injection phase, so runs are bit-identical at any thread
// count (the same discipline as the playbook controller). The schedule is
// part of the campaign cache fingerprint (fault_fingerprint below).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/schedule.h"
#include "net/clock.h"
#include "obs/json.h"
#include "obs/timeline.h"

namespace rootstress::fault {

/// Envelope shape of a pulse-wave attack.
enum class PulseShape : std::uint8_t {
  kSquare,    ///< full rate for duty*period, then floor
  kSawtooth,  ///< linear ramp 0 -> 1 across the on-window, then floor
};

const char* to_string(PulseShape shape) noexcept;

/// A periodic burst envelope. Inside `window`, pulses repeat every
/// `period`: the first `duty` fraction of each period is "on" (hot), the
/// rest idles at `floor_scale` of the peak (0 = true silence between
/// pulses, the classic pulse-wave gap that baits reactive controllers).
struct PulseWave {
  net::SimInterval window{};
  net::SimTime period = net::SimTime::from_minutes(20);
  double duty = 0.5;  ///< on-fraction of each period, in (0, 1]
  PulseShape shape = PulseShape::kSquare;
  double peak_qps = 5e6;     ///< per targeted letter at full envelope
  double floor_scale = 0.0;  ///< envelope between pulses, in [0, 1]
  /// Target letters per pulse, cycled by pulse index (pulse k targets
  /// pulse_targets[k % size]). Empty = the letter table's static attacked
  /// set (the 2015 event's targeting). Rotating targets is the
  /// "carpet-bombing" variant: every pulse hits a different letter set.
  std::vector<std::vector<char>> pulse_targets;
  /// Synthesized-event stream shape (same meaning as attack::AttackEvent).
  double query_payload_bytes = 32.0;
  double response_payload_bytes = 490.0;
  double duplicate_fraction = 0.60;
  double spillover_fraction = 0.003;

  bool operator==(const PulseWave&) const = default;
};

/// Hardware failure: site `site_ordinal` of `letter` (an index into the
/// service's site list — stable across synthesized topologies) is fully
/// withdrawn for `window`. Ordinals beyond the letter's site count are
/// ignored at runtime (small test topologies).
struct SiteFault {
  char letter = 'K';
  int site_ordinal = 0;
  net::SimInterval window{};

  bool operator==(const SiteFault&) const = default;
};

/// BGP session reset: the site's announcement is torn down at `at` and
/// comes back after `hold`. Unlike SiteFault the site's scope is
/// untouched — the announcement is reasserted to whatever the scope then
/// implies (the routing layer emits session failure/restore trace events).
struct BgpReset {
  char letter = 'K';
  int site_ordinal = 0;
  net::SimTime at{};
  net::SimTime hold = net::SimTime::from_minutes(2);

  bool operator==(const BgpReset&) const = default;
};

/// Atlas VP dropout: inside `window`, each VP is silent with probability
/// `fraction`, chosen deterministically from (vp id, salt) — no RNG
/// state, so probing stays a pure function of the schedule.
struct VpDropout {
  net::SimInterval window{};
  double fraction = 0.1;  ///< in [0, 1]
  std::uint64_t salt = 0;

  bool operator==(const VpDropout&) const = default;
};

/// Operator telemetry gap: while active, the playbook controller sees
/// only the last pre-gap observations (frozen dashboards).
struct TelemetryGap {
  net::SimInterval window{};

  bool operator==(const TelemetryGap&) const = default;
};

/// Flash crowd: the legitimate per-letter query rate is multiplied by
/// `scale` inside `window`.
struct LegitSurge {
  net::SimInterval window{};
  double scale = 2.0;  ///< > 0

  bool operator==(const LegitSurge&) const = default;
};

/// The declarative timeline. Pure data (Playbook idiom): build by hand,
/// through FaultScheduleBuilder, or from a preset; validate() checks it;
/// fault_fingerprint() keys the campaign cache on its content.
struct FaultSchedule {
  /// Display label (campaign axis labels, logs). Not fingerprinted.
  std::string name = "none";
  std::vector<PulseWave> pulses;
  std::vector<SiteFault> site_faults;
  std::vector<BgpReset> bgp_resets;
  std::vector<VpDropout> vp_dropouts;
  std::vector<TelemetryGap> telemetry_gaps;
  std::vector<LegitSurge> legit_surges;

  /// True when the schedule injects nothing (the no-fault baseline).
  bool empty() const noexcept {
    return pulses.empty() && site_faults.empty() && bgp_resets.empty() &&
           vp_dropouts.empty() && telemetry_gaps.empty() &&
           legit_surges.empty();
  }

  /// The pulse whose window contains `t` (first declared wins; windows
  /// are expected disjoint), or nullptr.
  const PulseWave* pulse_at(net::SimTime t) const noexcept;

  /// Envelope multiplier of `pulse` at `t` in [0, 1]: 1 (square) or the
  /// ramp position (sawtooth) while on, `floor_scale` while off. 0 when
  /// `t` is outside the pulse window.
  static double envelope(const PulseWave& pulse, net::SimTime t) noexcept;

  /// 0-based pulse ordinal at `t` (floor((t - window.begin) / period));
  /// -1 outside the window.
  static std::int64_t pulse_index(const PulseWave& pulse,
                                  net::SimTime t) noexcept;

  /// Whether the attack is "hot" at `t`: inside a pulse window, the
  /// envelope's on-portion; elsewhere, whether `base` has an active
  /// event. The quiet inter-pulse gaps (floor included) are NOT hot —
  /// that is exactly when a flapping controller registers false
  /// activations.
  bool attack_hot(net::SimTime t,
                  const attack::AttackSchedule& base) const noexcept;

  /// End of the last hot instant, considering both pulses and base
  /// events; SimTime(0)-valued nullopt semantics via `has_hot`: returns
  /// the scenario's last hot end, or net::SimTime(INT64_MIN) when nothing
  /// is ever hot.
  net::SimTime last_hot_end(const attack::AttackSchedule& base) const noexcept;

  /// First hot instant (pulses + base); net::SimTime(INT64_MAX) when
  /// nothing is ever hot.
  net::SimTime first_hot_begin(
      const attack::AttackSchedule& base) const noexcept;

  // -- Presets -----------------------------------------------------------

  /// The Nov 30 morning re-imagined as a pulse wave: the 06:50-09:30
  /// event window carved into 20-minute periods at 50% duty, full 2015
  /// rate on-pulse, silence between pulses.
  static FaultSchedule pulse_wave_2015(double peak_qps = 5e6);

  /// Rolling hardware outage: three sites of one letter fail back to
  /// back (45-minute windows, staggered hourly from 07:00), with a BGP
  /// session reset on a fourth site mid-sequence.
  static FaultSchedule rolling_site_outage(char letter = 'K');

  /// Flash crowd colliding with faults: a 3x legit surge over 06:00-10:00
  /// plus a site failure and a 20% VP dropout window inside it — load
  /// rises exactly while the measurement mesh thins and capacity drops.
  static FaultSchedule flash_crowd_plus_fault();
};

/// Fluent construction (mirrors ScenarioBuilder): setters append
/// injectors, build() validates and throws std::invalid_argument on the
/// first problem.
class FaultScheduleBuilder {
 public:
  FaultScheduleBuilder& name(std::string name);
  FaultScheduleBuilder& pulse_wave(PulseWave pulse);
  FaultScheduleBuilder& site_fault(SiteFault fault);
  FaultScheduleBuilder& site_fault(char letter, int site_ordinal,
                                   net::SimInterval window);
  FaultScheduleBuilder& bgp_reset(BgpReset reset);
  FaultScheduleBuilder& vp_dropout(VpDropout dropout);
  FaultScheduleBuilder& telemetry_gap(net::SimInterval window);
  FaultScheduleBuilder& legit_surge(net::SimInterval window, double scale);

  /// Empty when the staged schedule is valid, else the first problem.
  std::string validate() const;
  /// The validated schedule; throws std::invalid_argument when broken.
  FaultSchedule build() const;

 private:
  FaultSchedule schedule_;
};

/// Empty when `schedule` is usable, else a description of the first
/// problem (window/period/duty/fraction/scale range checks; target
/// letters must be 'A'..'M').
std::string validate(const FaultSchedule& schedule);

/// Canonical JSON fingerprint of everything that shapes results (the
/// display name excluded, like playbook_fingerprint). Doubles follow the
/// fp() tagging convention of sweep/cache.cc so non-finite values cannot
/// collapse distinct schedules.
obs::JsonValue fault_fingerprint(const FaultSchedule& schedule);

/// The schedule's active windows as labeled timeline spans — the label
/// source the flight recorder (and later dataset export) attaches to a
/// run. Pulse windows contribute both the whole envelope ("fault" /
/// "pulse-window") and each pulse's hot on-portion ("attack" /
/// "pulse-hot", capped at 512 per wave); site-scoped injectors encode
/// the target as "K#2" (letter + site ordinal).
std::vector<obs::TimelineSpan> timeline_spans(const FaultSchedule& schedule);

}  // namespace rootstress::fault
