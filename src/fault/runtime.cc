#include "fault/runtime.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/rng.h"

namespace rootstress::fault {

const char* to_string(DueAction::Kind kind) noexcept {
  switch (kind) {
    case DueAction::Kind::kSiteDown: return "site-down";
    case DueAction::Kind::kSiteRestore: return "site-restore";
    case DueAction::Kind::kSessionDown: return "session-down";
    case DueAction::Kind::kSessionRestore: return "session-restore";
  }
  return "unknown";
}

namespace {

// (site id, prefix) of `letter`'s `ordinal`-th site, or nullopt when the
// deployment has no such letter or too few sites.
std::optional<std::pair<int, int>> resolve(
    const anycast::RootDeployment& deployment, char letter, int ordinal) {
  for (const anycast::ServiceInfo& svc : deployment.services()) {
    if (svc.letter != letter) continue;
    if (ordinal < 0 || ordinal >= static_cast<int>(svc.site_ids.size())) {
      return std::nullopt;
    }
    return std::make_pair(svc.site_ids[static_cast<std::size_t>(ordinal)],
                          svc.prefix);
  }
  return std::nullopt;
}

}  // namespace

FaultRuntime::FaultRuntime(const FaultSchedule& schedule,
                           const anycast::RootDeployment& deployment)
    : schedule_(schedule) {
  site_faults_.reserve(schedule_.site_faults.size());
  for (std::size_t i = 0; i < schedule_.site_faults.size(); ++i) {
    const SiteFault& fault = schedule_.site_faults[i];
    if (auto hit = resolve(deployment, fault.letter, fault.site_ordinal)) {
      site_faults_.push_back({i, hit->first, hit->second, false});
    }
  }
  bgp_resets_.reserve(schedule_.bgp_resets.size());
  for (std::size_t i = 0; i < schedule_.bgp_resets.size(); ++i) {
    const BgpReset& reset = schedule_.bgp_resets[i];
    if (auto hit = resolve(deployment, reset.letter, reset.site_ordinal)) {
      bgp_resets_.push_back({i, hit->first, hit->second, false, false});
    }
  }
}

std::vector<DueAction> FaultRuntime::begin_step(net::SimTime t) {
  now_ = t;
  std::vector<DueAction> due;
  for (ResolvedSiteFault& fault : site_faults_) {
    const net::SimInterval window = schedule_.site_faults[fault.index].window;
    if (!fault.applied && window.contains(t)) {
      fault.applied = true;
      due.push_back({DueAction::Kind::kSiteDown, fault.site_id, fault.prefix});
    } else if (fault.applied && t >= window.end) {
      fault.applied = false;
      due.push_back(
          {DueAction::Kind::kSiteRestore, fault.site_id, fault.prefix});
    }
  }
  for (ResolvedBgpReset& reset : bgp_resets_) {
    const BgpReset& spec = schedule_.bgp_resets[reset.index];
    const net::SimTime up_at = spec.at + spec.hold;
    if (!reset.done && !reset.down && t >= spec.at && t < up_at) {
      reset.down = true;
      due.push_back(
          {DueAction::Kind::kSessionDown, reset.site_id, reset.prefix});
    } else if (reset.down && t >= up_at) {
      reset.down = false;
      reset.done = true;
      due.push_back(
          {DueAction::Kind::kSessionRestore, reset.site_id, reset.prefix});
    }
  }

  active_pulse_ = schedule_.pulse_at(t);
  active_pulse_index_ =
      active_pulse_ ? FaultSchedule::pulse_index(*active_pulse_, t) : -1;

  legit_scale_ = 1.0;
  for (const LegitSurge& surge : schedule_.legit_surges) {
    if (surge.window.contains(t)) legit_scale_ *= surge.scale;
  }

  telemetry_gap_ = false;
  for (const TelemetryGap& gap : schedule_.telemetry_gaps) {
    if (gap.window.contains(t)) {
      telemetry_gap_ = true;
      break;
    }
  }

  held_sites_.clear();
  for (const ResolvedSiteFault& fault : site_faults_) {
    if (schedule_.site_faults[fault.index].window.contains(t)) {
      held_sites_.push_back(fault.site_id);
    }
  }
  return due;
}

const attack::AttackEvent* FaultRuntime::shape(
    net::SimTime t, const attack::AttackSchedule& base) {
  const PulseWave* pulse = schedule_.pulse_at(t);
  if (pulse == nullptr) return base.active(t);
  const double envelope = FaultSchedule::envelope(*pulse, t);
  if (envelope <= 0.0) return nullptr;  // true silence between pulses
  scratch_event_.when = pulse->window;
  scratch_event_.per_letter_qps = pulse->peak_qps * envelope;
  scratch_event_.qname = "www.pulse-wave.example";
  scratch_event_.query_payload_bytes = pulse->query_payload_bytes;
  scratch_event_.response_payload_bytes = pulse->response_payload_bytes;
  scratch_event_.duplicate_fraction = pulse->duplicate_fraction;
  scratch_event_.spillover_fraction = pulse->spillover_fraction;
  return &scratch_event_;
}

bool FaultRuntime::letter_attacked(char letter,
                                   bool static_attacked) const noexcept {
  if (active_pulse_ == nullptr || active_pulse_->pulse_targets.empty()) {
    return static_attacked;
  }
  const auto& sets = active_pulse_->pulse_targets;
  const std::size_t which = static_cast<std::size_t>(
      active_pulse_index_ < 0 ? 0 : active_pulse_index_) % sets.size();
  const std::vector<char>& targets = sets[which];
  return std::find(targets.begin(), targets.end(), letter) != targets.end();
}

bool FaultRuntime::holds_site(int site_id) const noexcept {
  return std::find(held_sites_.begin(), held_sites_.end(), site_id) !=
         held_sites_.end();
}

bool FaultRuntime::vp_dropped(int vp_id, net::SimTime when) const noexcept {
  for (const VpDropout& dropout : schedule_.vp_dropouts) {
    if (!dropout.window.contains(when) || dropout.fraction <= 0.0) continue;
    // Stateless per-VP coin: the same VP is silent for the whole window,
    // mirroring a real probe going dark rather than per-sample flicker.
    const std::uint64_t h =
        util::mix64(static_cast<std::uint64_t>(vp_id) * 0x9e3779b97f4a7c15ull ^
                    dropout.salt);
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
    if (u < dropout.fraction) return true;
  }
  return false;
}

}  // namespace rootstress::fault
